#ifndef APCM_TESTS_MATCHER_TEST_UTIL_H_
#define APCM_TESTS_MATCHER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "src/be/parser.h"
#include "src/index/matcher.h"
#include "src/index/scan.h"
#include "src/workload/generator.h"

namespace apcm {

/// Matches every workload event through `matcher` (single-event API).
inline std::vector<std::vector<SubscriptionId>> RunMatcher(
    Matcher& matcher, const workload::Workload& workload) {
  matcher.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> results;
  results.reserve(workload.events.size());
  std::vector<SubscriptionId> matches;
  for (const Event& event : workload.events) {
    matcher.Match(event, &matches);
    results.push_back(matches);
  }
  return results;
}

/// Asserts that `matcher` returns exactly the same match sets as the SCAN
/// ground truth on every event of `workload`.
inline void ExpectAgreesWithScan(Matcher& matcher,
                                 const workload::Workload& workload) {
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);
  const auto actual = RunMatcher(matcher, workload);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << matcher.Name() << " disagrees with scan on event " << i << ": "
        << workload.events[i].ToString();
  }
}

/// A small-but-gnarly spec exercising every operator and skew.
inline workload::WorkloadSpec GnarlySpec(uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 400;
  spec.num_events = 150;
  spec.num_attributes = 30;
  spec.domain_min = -100;
  spec.domain_max = 900;
  spec.min_predicates = 1;
  spec.max_predicates = 7;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 12;
  spec.attribute_zipf = 1.0;
  spec.equality_fraction = 0.25;
  spec.in_fraction = 0.15;
  spec.ne_fraction = 0.10;
  spec.inequality_fraction = 0.20;
  spec.seeded_event_fraction = 0.6;
  return spec;
}

/// Builds a tiny hand-written workload through the parser; returns it with
/// the catalog embedded.
inline workload::Workload HandWorkload() {
  workload::Workload workload;
  Parser parser(&workload.catalog);
  const char* subs[] = {
      "price <= 100 and category = 2",
      "price > 100",
      "category in {1, 2, 3} and stock >= 1",
      "price between [50, 150] and brand != 7",
      "",  // match-all
  };
  SubscriptionId id = 0;
  for (const char* text : subs) {
    workload.subscriptions.push_back(
        parser.ParseExpression(id++, text).value());
  }
  const char* events[] = {
      "price = 80, category = 2, stock = 5, brand = 1",
      "price = 200, category = 2",
      "price = 100, category = 9, stock = 0, brand = 7",
      "stock = 3, category = 1",
      "",
  };
  for (const char* text : events) {
    workload.events.push_back(parser.ParseEvent(text).value());
  }
  return workload;
}

}  // namespace apcm

#endif  // APCM_TESTS_MATCHER_TEST_UTIL_H_
