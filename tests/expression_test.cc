#include "src/be/expression.h"

#include <gtest/gtest.h>

namespace apcm {
namespace {

Event MakeEvent(std::vector<Event::Entry> entries) {
  return Event::Create(std::move(entries)).value();
}

TEST(ExpressionTest, CreateSortsByAttribute) {
  auto expr = BooleanExpression::Create(
      1, {Predicate(5, Op::kEq, 1), Predicate(2, Op::kEq, 1)});
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->predicates()[0].attribute(), 2u);
  EXPECT_EQ(expr->predicates()[1].attribute(), 5u);
  EXPECT_EQ(expr->id(), 1u);
}

TEST(ExpressionTest, CreateRejectsDuplicateAttributes) {
  auto expr = BooleanExpression::Create(
      1, {Predicate(2, Op::kGt, 1), Predicate(2, Op::kLt, 9)});
  EXPECT_EQ(expr.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExpressionTest, MatchesConjunction) {
  const auto expr = BooleanExpression::Create(
      7, {Predicate(1, Op::kGe, 10), Predicate(3, 0, 5)}).value();
  EXPECT_TRUE(expr.Matches(MakeEvent({{1, 10}, {3, 5}})));
  EXPECT_TRUE(expr.Matches(MakeEvent({{1, 99}, {2, 0}, {3, 0}})));
  EXPECT_FALSE(expr.Matches(MakeEvent({{1, 9}, {3, 5}})));   // pred fails
  EXPECT_FALSE(expr.Matches(MakeEvent({{1, 10}, {3, 6}})));  // pred fails
}

TEST(ExpressionTest, AbsentAttributeFailsTheConjunction) {
  const auto expr = BooleanExpression::Create(
      7, {Predicate(1, Op::kGe, 10), Predicate(3, 0, 5)}).value();
  EXPECT_FALSE(expr.Matches(MakeEvent({{1, 10}})));        // attr 3 missing
  EXPECT_FALSE(expr.Matches(MakeEvent({{3, 3}})));         // attr 1 missing
  EXPECT_FALSE(expr.Matches(MakeEvent({})));               // both missing
  EXPECT_FALSE(expr.Matches(MakeEvent({{0, 1}, {2, 2}})));  // disjoint attrs
}

TEST(ExpressionTest, EmptyExpressionMatchesEverything) {
  const auto expr = BooleanExpression::Create(0, {}).value();
  EXPECT_TRUE(expr.Matches(MakeEvent({})));
  EXPECT_TRUE(expr.Matches(MakeEvent({{1, 1}, {2, 2}})));
}

TEST(ExpressionTest, MatchesCountingCountsShortCircuit) {
  const auto expr = BooleanExpression::Create(
      0, {Predicate(1, Op::kEq, 1), Predicate(2, Op::kEq, 2),
          Predicate(3, Op::kEq, 3)}).value();
  uint64_t evals = 0;
  // First predicate fails: exactly 1 evaluation.
  EXPECT_FALSE(expr.MatchesCounting(MakeEvent({{1, 9}, {2, 2}, {3, 3}}),
                                    &evals));
  EXPECT_EQ(evals, 1u);
  // All pass: 3 evaluations.
  evals = 0;
  EXPECT_TRUE(expr.MatchesCounting(MakeEvent({{1, 1}, {2, 2}, {3, 3}}),
                                   &evals));
  EXPECT_EQ(evals, 3u);
}

TEST(ExpressionTest, MatchesAgreesWithNaivePerPredicateCheck) {
  const auto expr = BooleanExpression::Create(
      0, {Predicate(2, Op::kNe, 4), Predicate(5, 10, 20),
          Predicate(9, std::vector<Value>{1, 3})}).value();
  const std::vector<Event> events = {
      MakeEvent({{2, 5}, {5, 15}, {9, 3}}),
      MakeEvent({{2, 4}, {5, 15}, {9, 3}}),
      MakeEvent({{2, 5}, {5, 15}}),
      MakeEvent({{0, 1}, {2, 5}, {5, 10}, {7, 7}, {9, 1}}),
  };
  for (const Event& event : events) {
    bool expected = true;
    for (const Predicate& pred : expr.predicates()) {
      const Value* v = event.Find(pred.attribute());
      if (v == nullptr || !pred.Eval(*v)) expected = false;
    }
    EXPECT_EQ(expr.Matches(event), expected) << event.ToString();
  }
}

TEST(ExpressionTest, ToString) {
  const auto expr = BooleanExpression::Create(
      3, {Predicate(1, Op::kLe, 9), Predicate(0, Op::kGt, 2)}).value();
  EXPECT_EQ(expr.ToString(), "id=3: attr0 > 2 and attr1 <= 9");
  const auto empty = BooleanExpression::Create(9, {}).value();
  EXPECT_EQ(empty.ToString(), "id=9: <true>");
}

}  // namespace
}  // namespace apcm
