// Metrics core: counters, gauges, sharded histograms, and the registry —
// including the record-while-scrape stress that the TSan build replays.

#include "src/base/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace apcm {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Set(-3);
  EXPECT_EQ(g.Value(), -3);
}

TEST(ShardedHistogramTest, SnapshotMergesAllShards) {
  ShardedHistogram h;
  // Record from several threads so samples land in different shards.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 100; ++i) h.Record(1000 * (t + 1));
    });
  }
  for (auto& t : threads) t.join();
  const Histogram merged = h.Snapshot();
  EXPECT_EQ(merged.count(), 800u);
  EXPECT_EQ(h.count(), 800u);
  EXPECT_GE(merged.max(), 8000);
  EXPECT_LE(merged.min(), 1024);  // bucket upper bound of 1000
}

TEST(ShardedHistogramTest, ResetClearsEveryShard) {
  ShardedHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] { h.Record(5); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ShardedHistogramTest, SummaryMentionsCount) {
  ShardedHistogram h;
  h.Record(100);
  EXPECT_NE(h.Summary().find("count="), std::string::npos);
}

TEST(MetricsRegistryTest, OwnedInstrumentsRoundTrip) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("test_total", "a counter");
  Gauge* g = registry.AddGauge("test_depth", "a gauge");
  ShardedHistogram* h = registry.AddHistogram("test_latency", "a histogram");
  c->Increment(3);
  g->Set(-7);
  h->Record(1000);
  const std::vector<MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(samples[0].name, "test_total");
  EXPECT_EQ(samples[0].help, "a counter");
  EXPECT_EQ(samples[0].type, MetricSample::Type::kCounter);
  EXPECT_EQ(samples[0].counter_value, 3u);
  EXPECT_EQ(samples[1].type, MetricSample::Type::kGauge);
  EXPECT_EQ(samples[1].gauge_value, -7);
  EXPECT_EQ(samples[2].type, MetricSample::Type::kHistogram);
  EXPECT_EQ(samples[2].histogram.count(), 1u);
}

TEST(MetricsRegistryTest, CallbackMetricsSampleAtCollectTime) {
  MetricsRegistry registry;
  uint64_t counter_source = 0;
  int64_t gauge_source = 0;
  registry.AddCounterFn("cb_total", "bridge", [&] { return counter_source; });
  registry.AddGaugeFn("cb_depth", "bridge", [&] { return gauge_source; });
  registry.AddHistogramFn("cb_latency", "bridge", [] {
    Histogram h;
    h.Record(42);
    return h;
  });
  counter_source = 9;
  gauge_source = -2;
  const auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].counter_value, 9u);
  EXPECT_EQ(samples[1].gauge_value, -2);
  EXPECT_EQ(samples[2].histogram.count(), 1u);
  // A later Collect observes new source values — callbacks are live.
  counter_source = 10;
  EXPECT_EQ(registry.Collect()[0].counter_value, 10u);
}

TEST(MetricsRegistryTest, CollectPreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.AddCounter("zzz_total", "last name, first registered");
  registry.AddGauge("aaa_depth", "first name, last registered");
  const auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "zzz_total");
  EXPECT_EQ(samples[1].name, "aaa_depth");
}

TEST(MetricsRegistryTest, DuplicateNameDies) {
  MetricsRegistry registry;
  registry.AddCounter("dup_total", "first");
  EXPECT_DEATH(registry.AddCounter("dup_total", "second"),
               "APCM_CHECK failed");
}

TEST(MetricsRegistryTest, InvalidNameDies) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.AddCounter("9starts_with_digit", "bad"),
               "ValidMetricName");
  EXPECT_DEATH(registry.AddCounter("has-dash", "bad"), "ValidMetricName");
  EXPECT_DEATH(registry.AddCounter("", "bad"), "ValidMetricName");
}

// The acceptance stress: many threads hammer owned instruments while other
// threads continuously Collect. Run under scripts/check.sh --tsan this must
// be race-free; in the plain build we check sample monotonicity instead.
TEST(MetricsRegistryTest, RecordWhileScrapeStress) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("stress_total", "stress counter");
  Gauge* g = registry.AddGauge("stress_depth", "stress gauge");
  ShardedHistogram* h = registry.AddHistogram("stress_ns", "stress histogram");
  std::atomic<uint64_t> side{0};
  registry.AddCounterFn("stress_cb_total", "stress bridge",
                        [&] { return side.load(std::memory_order_relaxed); });

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        c->Increment();
        g->Add(1);
        h->Record(i);
        side.fetch_add(1, std::memory_order_relaxed);
        g->Sub(1);
      }
    });
  }
  std::thread scraper([&] {
    uint64_t last_total = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto samples = registry.Collect();
      ASSERT_EQ(samples.size(), 4u);
      // Counters never move backwards even mid-stress.
      EXPECT_GE(samples[0].counter_value, last_total);
      last_total = samples[0].counter_value;
      // Every histogram snapshot is internally consistent.
      const Histogram& hist = samples[2].histogram;
      if (hist.count() > 0) {
        EXPECT_GE(hist.max(), hist.min());
        EXPECT_GE(hist.ValueAtQuantile(0.99), hist.ValueAtQuantile(0.5));
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  const auto samples = registry.Collect();
  EXPECT_EQ(samples[0].counter_value,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(samples[1].gauge_value, 0);
  EXPECT_EQ(samples[2].histogram.count(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(samples[3].counter_value,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

}  // namespace
}  // namespace apcm
