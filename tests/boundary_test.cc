// Adversarial boundary values: predicates and events at the int64 extremes
// must evaluate correctly through every matcher (no signed-overflow UB in
// interval decomposition, segment addressing, or tree midpoints).

#include <gtest/gtest.h>

#include <limits>

#include "src/engine/matcher_factory.h"
#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

constexpr Value kMin = std::numeric_limits<Value>::min();
constexpr Value kMax = std::numeric_limits<Value>::max();

workload::Workload ExtremeWorkload() {
  workload::Workload workload;
  SubscriptionId id = 0;
  auto add = [&](std::vector<Predicate> preds) {
    workload.subscriptions.push_back(
        BooleanExpression::Create(id++, std::move(preds)).value());
  };
  add({Predicate(0, Op::kEq, kMin)});
  add({Predicate(0, Op::kEq, kMax)});
  add({Predicate(0, Op::kNe, kMin)});
  add({Predicate(0, Op::kNe, kMax)});
  add({Predicate(0, Op::kLt, kMin)});  // unsatisfiable
  add({Predicate(0, Op::kLe, kMin)});
  add({Predicate(0, Op::kGt, kMax)});  // unsatisfiable
  add({Predicate(0, Op::kGe, kMax)});
  add({Predicate(0, kMin, kMax)});  // between: full span
  add({Predicate(0, kMin, kMin)});
  add({Predicate(0, kMax, kMax)});
  add({Predicate(0, std::vector<Value>{kMin, kMax, 0})});
  add({Predicate(0, std::vector<Value>{kMax - 1, kMax})});  // adjacent run
  add({Predicate(0, Op::kGe, kMax - 1), Predicate(1, Op::kLe, kMin + 1)});

  for (Value v : {kMin, kMin + 1, Value{-1}, Value{0}, Value{1}, kMax - 1,
                  kMax}) {
    workload.events.push_back(Event::Create({{0, v}}).value());
    workload.events.push_back(Event::Create({{0, v}, {1, kMin}}).value());
    workload.events.push_back(Event::Create({{0, v}, {1, kMax}}).value());
  }
  return workload;
}

TEST(BoundaryTest, IntervalDecompositionAtExtremes) {
  const ValueInterval full{kMin, kMax};
  std::vector<ValueInterval> out;
  Predicate(0, Op::kNe, kMin).AppendIntervals(full, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{kMin + 1, kMax}}));
  out.clear();
  Predicate(0, Op::kNe, kMax).AppendIntervals(full, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{kMin, kMax - 1}}));
  out.clear();
  Predicate(0, Op::kLt, kMin).AppendIntervals(full, &out);
  EXPECT_TRUE(out.empty());  // nothing is < INT64_MIN
  out.clear();
  Predicate(0, Op::kGt, kMax).AppendIntervals(full, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  Predicate(0, std::vector<Value>{kMax - 1, kMax}).AppendIntervals(full, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{kMax - 1, kMax}}));
}

TEST(BoundaryTest, FullSpanWidthWrapsToZeroButStaysUsable) {
  const ValueInterval full{kMin, kMax};
  EXPECT_FALSE(full.Empty());
  EXPECT_EQ(full.Width(), 0u);  // 2^64 wraps; documented sentinel
  EXPECT_TRUE(full.Contains(kMin));
  EXPECT_TRUE(full.Contains(0));
  EXPECT_TRUE(full.Contains(kMax));
  EXPECT_NEAR(Predicate(0, kMin, kMax).Selectivity(full), 1.0, 1e-9);
}

TEST(BoundaryTest, AllMatchersAgreeOnExtremeValues) {
  const workload::Workload workload = ExtremeWorkload();
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  engine::MatcherConfig config;
  config.domain = {kMin, kMax};  // full 64-bit domain
  config.pcm.clustering.cluster_size = 4;
  for (engine::MatcherKind kind :
       {engine::MatcherKind::kCounting, engine::MatcherKind::kKIndex,
        engine::MatcherKind::kBETree, engine::MatcherKind::kPcm,
        engine::MatcherKind::kPcmLazy, engine::MatcherKind::kAPcm}) {
    auto matcher = engine::CreateMatcher(kind, config);
    const auto actual = RunMatcher(*matcher, workload);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << engine::MatcherKindName(kind) << " event " << i << ": "
          << workload.events[i].ToString();
    }
  }
}

TEST(BoundaryTest, NarrowDomainMatchersStillExact) {
  // Matchers configured with a narrow domain must still answer correctly
  // for events *outside* it (clamping/verification, not wrong results).
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(0, {Predicate(0, Op::kLe, 10)}).value());
  workload.subscriptions.push_back(
      BooleanExpression::Create(1, {Predicate(0, Op::kGe, -10)}).value());
  for (Value v : {kMin, Value{-11}, Value{0}, Value{11}, kMax}) {
    workload.events.push_back(Event::Create({{0, v}}).value());
  }
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);
  engine::MatcherConfig config;
  config.domain = {-100, 100};
  for (engine::MatcherKind kind :
       {engine::MatcherKind::kCounting, engine::MatcherKind::kKIndex,
        engine::MatcherKind::kBETree, engine::MatcherKind::kAPcm}) {
    auto matcher = engine::CreateMatcher(kind, config);
    const auto actual = RunMatcher(*matcher, workload);
    // counting/k-index only guarantee correctness for in-domain values; the
    // compressed family and be-tree evaluate exactly. All must at least not
    // crash; exact agreement is asserted for the exact evaluators.
    if (kind == engine::MatcherKind::kBETree ||
        kind == engine::MatcherKind::kAPcm) {
      EXPECT_EQ(actual, expected) << engine::MatcherKindName(kind);
    }
  }
}

TEST(BoundaryTest, GeneratorRejectsFullSpanDomain) {
  workload::WorkloadSpec spec;
  spec.domain_min = kMin;
  spec.domain_max = kMax;
  EXPECT_FALSE(workload::Generate(spec).ok());
}

}  // namespace
}  // namespace apcm
