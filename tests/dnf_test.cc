// Disjunction support: the parser's `or` connective and the engine's
// DNF subscriptions (internal disjunct ids aliased to one external id).

#include <gtest/gtest.h>

#include <map>

#include "src/be/parser.h"
#include "src/engine/engine.h"

namespace apcm {
namespace {

TEST(ParserDnfTest, SplitsOnOr) {
  Catalog catalog;
  Parser parser(&catalog);
  auto dnf = parser.ParseDisjunction("a = 1 and b = 2 or c = 3 or d < 4");
  ASSERT_TRUE(dnf.ok()) << dnf.status().ToString();
  ASSERT_EQ(dnf->size(), 3u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
  EXPECT_EQ((*dnf)[1].size(), 1u);
  EXPECT_EQ((*dnf)[2].size(), 1u);
}

TEST(ParserDnfTest, SingleConjunctionIsOneDisjunct) {
  Catalog catalog;
  Parser parser(&catalog);
  auto dnf = parser.ParseDisjunction("a = 1 and b = 2");
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 1u);
}

TEST(ParserDnfTest, AttributeNamesContainingOrAreSafe) {
  Catalog catalog;
  Parser parser(&catalog);
  auto dnf = parser.ParseDisjunction("score = 1 and orientation = 2");
  ASSERT_TRUE(dnf.ok()) << dnf.status().ToString();
  EXPECT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
}

TEST(ParserDnfTest, InvalidDisjunctRejected) {
  Catalog catalog;
  Parser parser(&catalog);
  EXPECT_FALSE(parser.ParseDisjunction("a = 1 or b ~ 2").ok());
  EXPECT_FALSE(parser.ParseDisjunction("a = 1 and a = 2 or b = 1").ok());
}

class EngineDnfTest : public ::testing::Test {
 protected:
  EngineDnfTest()
      : engine_(
            [] {
              engine::EngineOptions options;
              options.kind = engine::MatcherKind::kAPcm;
              return options;
            }(),
            [this](uint64_t id, const std::vector<SubscriptionId>& matches) {
              deliveries_[id] = matches;
            }) {}

  std::vector<SubscriptionId> MatchOne(const Event& event) {
    const uint64_t id = engine_.Publish(event);
    engine_.Flush();
    return deliveries_.at(id);
  }

  Catalog catalog_;
  Parser parser_{&catalog_};
  std::map<uint64_t, std::vector<SubscriptionId>> deliveries_;
  engine::StreamEngine engine_;
};

TEST_F(EngineDnfTest, AnyDisjunctMatches) {
  auto dnf = parser_.ParseDisjunction("price < 10 or price > 100").value();
  const SubscriptionId id =
      engine_.AddDisjunctiveSubscription(std::move(dnf)).value();
  EXPECT_EQ(MatchOne(parser_.ParseEvent("price = 5").value()),
            (std::vector<SubscriptionId>{id}));
  EXPECT_EQ(MatchOne(parser_.ParseEvent("price = 500").value()),
            (std::vector<SubscriptionId>{id}));
  EXPECT_TRUE(MatchOne(parser_.ParseEvent("price = 50").value()).empty());
}

TEST_F(EngineDnfTest, OverlappingDisjunctsDeliverOnce) {
  auto dnf = parser_.ParseDisjunction("price < 100 or price > 10").value();
  const SubscriptionId id =
      engine_.AddDisjunctiveSubscription(std::move(dnf)).value();
  // price = 50 satisfies BOTH disjuncts; the id must appear exactly once.
  EXPECT_EQ(MatchOne(parser_.ParseEvent("price = 50").value()),
            (std::vector<SubscriptionId>{id}));
}

TEST_F(EngineDnfTest, MixesWithPlainSubscriptions) {
  const SubscriptionId plain =
      engine_
          .AddSubscription(
              parser_.ParseExpression(0, "price >= 0").value().predicates())
          .value();
  const SubscriptionId dnf =
      engine_
          .AddDisjunctiveSubscription(
              parser_.ParseDisjunction("price < 10 or category = 7").value())
          .value();
  const auto matches = MatchOne(
      parser_.ParseEvent("price = 5, category = 7").value());
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{plain, dnf}));
}

TEST_F(EngineDnfTest, RemoveRemovesAllDisjuncts) {
  const SubscriptionId id =
      engine_
          .AddDisjunctiveSubscription(
              parser_.ParseDisjunction("price < 10 or price > 100").value())
          .value();
  ASSERT_TRUE(engine_.RemoveSubscription(id).ok());
  EXPECT_TRUE(MatchOne(parser_.ParseEvent("price = 5").value()).empty());
  EXPECT_TRUE(MatchOne(parser_.ParseEvent("price = 500").value()).empty());
  EXPECT_EQ(engine_.RemoveSubscription(id).code(), StatusCode::kNotFound);
}

TEST_F(EngineDnfTest, InternalDisjunctIdCannotBeRemovedDirectly) {
  const SubscriptionId id =
      engine_
          .AddDisjunctiveSubscription(
              parser_.ParseDisjunction("price < 10 or price > 100").value())
          .value();
  // Internal ids are allocated sequentially after the external one.
  const Status status = engine_.RemoveSubscription(id + 1);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // The subscription still works.
  EXPECT_EQ(MatchOne(parser_.ParseEvent("price = 500").value()),
            (std::vector<SubscriptionId>{id}));
}

TEST_F(EngineDnfTest, EmptyDisjunctListRejected) {
  EXPECT_EQ(engine_.AddDisjunctiveSubscription({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineDnfTest, InvalidDisjunctIsAtomicFailure) {
  // Second disjunct repeats an attribute: nothing must be registered.
  std::vector<std::vector<Predicate>> disjuncts;
  disjuncts.push_back({Predicate(0, Op::kLt, 10)});
  disjuncts.push_back({Predicate(1, Op::kGt, 1), Predicate(1, Op::kLt, 9)});
  EXPECT_FALSE(engine_.AddDisjunctiveSubscription(disjuncts).ok());
  EXPECT_EQ(engine_.num_subscriptions(), 0u);
  EXPECT_TRUE(MatchOne(Event::Create({{0, 5}}).value()).empty());
}

}  // namespace
}  // namespace apcm
