#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/be/parser.h"
#include "src/workload/generator.h"
#include "tests/matcher_test_util.h"

namespace apcm::engine {
namespace {

struct Delivery {
  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  std::vector<uint64_t> order;

  StreamEngine::MatchCallback Callback() {
    return [this](uint64_t event_id,
                  const std::vector<SubscriptionId>& matches) {
      by_event[event_id] = matches;
      order.push_back(event_id);
    };
  }
};

EngineOptions SmallOptions() {
  EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 16;
  options.osr.window_size = 0;
  options.buffer_capacity = 64;
  return options;
}

TEST(EngineTest, DeliversMatchesForEveryEvent) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  ASSERT_TRUE(engine
                  .AddSubscription({Predicate(0, Op::kLe, 10),
                                    Predicate(1, Op::kEq, 1)})
                  .ok());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGt, 10)}).ok());

  const uint64_t e0 =
      engine.Publish(Event::Create({{0, 5}, {1, 1}}).value());
  const uint64_t e1 = engine.Publish(Event::Create({{0, 50}}).value());
  const uint64_t e2 = engine.Publish(Event::Create({{1, 1}}).value());
  engine.Flush();

  EXPECT_EQ(delivery.by_event.at(e0), (std::vector<SubscriptionId>{0}));
  EXPECT_EQ(delivery.by_event.at(e1), (std::vector<SubscriptionId>{1}));
  EXPECT_TRUE(delivery.by_event.at(e2).empty());
  EXPECT_EQ(engine.stats().events_processed, 3u);
}

TEST(EngineTest, CallbackOrderIsEventIdOrderEvenWithOsr) {
  EngineOptions options = SmallOptions();
  options.osr.window_size = 32;
  Delivery delivery;
  StreamEngine engine(options, delivery.Callback());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  workload::WorkloadSpec spec;
  spec.num_subscriptions = 0;
  spec.num_events = 50;
  spec.num_attributes = 10;
  spec.min_event_attrs = 1;
  spec.max_event_attrs = 5;
  spec.min_predicates = 0;
  spec.max_predicates = 0;
  const auto workload = workload::Generate(spec).value();
  for (const Event& event : workload.events) engine.Publish(event);
  engine.Flush();
  ASSERT_EQ(delivery.order.size(), 50u);
  for (size_t i = 0; i < delivery.order.size(); ++i) {
    EXPECT_EQ(delivery.order[i], i);
  }
}

TEST(EngineTest, OsrOnAndOffDeliverIdenticalResults) {
  const auto workload = workload::Generate(GnarlySpec(101)).value();
  auto run = [&](uint32_t window) {
    EngineOptions options = SmallOptions();
    options.osr.window_size = window;
    options.buffer_capacity = 128;
    Delivery delivery;
    StreamEngine engine(options, delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      auto added = engine.AddSubscription(sub.predicates());
      EXPECT_TRUE(added.ok());
    }
    for (const Event& event : workload.events) engine.Publish(event);
    engine.Flush();
    return delivery.by_event;
  };
  EXPECT_EQ(run(0), run(64));
}

TEST(EngineTest, EngineAgreesWithScan) {
  const auto workload = workload::Generate(GnarlySpec(102)).value();
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  EngineOptions options = SmallOptions();
  options.osr.window_size = 32;
  Delivery delivery;
  StreamEngine engine(options, delivery.Callback());
  for (const auto& sub : workload.subscriptions) {
    ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
  }
  std::vector<uint64_t> event_ids;
  for (const Event& event : workload.events) {
    event_ids.push_back(engine.Publish(event));
  }
  engine.Flush();
  for (size_t i = 0; i < workload.events.size(); ++i) {
    EXPECT_EQ(delivery.by_event.at(event_ids[i]), expected[i])
        << "event " << i;
  }
}

TEST(EngineTest, AutoFlushOnBufferCapacity) {
  EngineOptions options = SmallOptions();
  options.batch_size = 8;
  options.buffer_capacity = 8;
  Delivery delivery;
  StreamEngine engine(options, delivery.Callback());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  for (int i = 0; i < 8; ++i) {
    engine.Publish(Event::Create({{0, i}}).value());
  }
  // Publishing the 8th event hit capacity: everything delivered already.
  EXPECT_EQ(delivery.order.size(), 8u);
}

TEST(EngineTest, RemoveSubscriptionStopsMatching) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  const SubscriptionId keep =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  const SubscriptionId removed =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  const uint64_t e0 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e0),
            (std::vector<SubscriptionId>{keep, removed}));

  ASSERT_TRUE(engine.RemoveSubscription(removed).ok());
  const uint64_t e1 = engine.Publish(Event::Create({{0, 2}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e1), (std::vector<SubscriptionId>{keep}));
  EXPECT_EQ(engine.num_subscriptions(), 1u);
}

TEST(EngineTest, RemoveErrors) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  EXPECT_EQ(engine.RemoveSubscription(0).code(), StatusCode::kNotFound);
  const SubscriptionId id =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  ASSERT_TRUE(engine.RemoveSubscription(id).ok());
  EXPECT_EQ(engine.RemoveSubscription(id).code(), StatusCode::kNotFound);
}

TEST(EngineTest, AddAfterStartIsAppliedBeforeNextBatch) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kEq, 1)}).ok());
  const uint64_t e0 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e0).size(), 1u);

  const SubscriptionId late =
      engine.AddSubscription({Predicate(0, Op::kEq, 1)}).value();
  const uint64_t e1 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e1),
            (std::vector<SubscriptionId>{0, late}));
  // PCM-family engines absorb the change without a rebuild.
  EXPECT_EQ(engine.stats().rebuilds, 1u);
  EXPECT_GT(engine.stats().incremental_updates, 0u);
}

TEST(EngineTest, HeavyChurnTriggersCompactionNotRebuild) {
  EngineOptions options = SmallOptions();
  options.incremental_rebuild_threshold = 0.10;
  Delivery delivery;
  StreamEngine engine(options, delivery.Callback());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .AddSubscription({Predicate(0, Op::kEq,
                                                static_cast<Value>(i))})
                    .ok());
  }
  engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(engine.stats().rebuilds, 1u);

  // Churn far past the 10% threshold.
  std::vector<SubscriptionId> added;
  for (int i = 0; i < 20; ++i) {
    added.push_back(engine
                        .AddSubscription({Predicate(0, Op::kEq,
                                                    static_cast<Value>(i))})
                        .value());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.RemoveSubscription(static_cast<SubscriptionId>(i))
                    .ok());
  }
  const uint64_t e1 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(engine.stats().rebuilds, 1u);  // still no rebuild
  EXPECT_GT(engine.stats().compactions, 0u);
  // Correctness through the churn: original id 1 was removed; the new copy
  // of "0 = 1" (added[1]) matches.
  const auto& matches = delivery.by_event.at(e1);
  EXPECT_TRUE(std::find(matches.begin(), matches.end(), 1u) ==
              matches.end());
  EXPECT_TRUE(std::find(matches.begin(), matches.end(), added[1]) !=
              matches.end());
}

TEST(EngineTest, InvalidSubscriptionRejected) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  auto bad = engine.AddSubscription(
      {Predicate(0, Op::kGt, 1), Predicate(0, Op::kLt, 9)});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The failed id is not burned visibly: the next add still works.
  EXPECT_TRUE(engine.AddSubscription({Predicate(1, Op::kEq, 1)}).ok());
}

TEST(EngineTest, WorksWithEveryMatcherKind) {
  const auto workload = workload::Generate(GnarlySpec(103)).value();
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);
  for (MatcherKind kind :
       {MatcherKind::kScan, MatcherKind::kCounting, MatcherKind::kKIndex,
        MatcherKind::kBETree, MatcherKind::kPcm, MatcherKind::kAPcm}) {
    EngineOptions options = SmallOptions();
    options.kind = kind;
    options.matcher.domain = {workload.spec.domain_min,
                              workload.spec.domain_max};
    Delivery delivery;
    StreamEngine engine(options, delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    std::vector<uint64_t> ids;
    for (const Event& event : workload.events) {
      ids.push_back(engine.Publish(event));
    }
    engine.Flush();
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(delivery.by_event.at(ids[i]), expected[i])
          << MatcherKindName(kind) << " event " << i;
    }
  }
}

TEST(EngineTest, SaveAndLoadSubscriptions) {
  const std::string path = "/tmp/apcm_engine_snapshot.bin";
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  ASSERT_TRUE(engine
                  .AddSubscription({Predicate(0, Op::kLe, 10),
                                    Predicate(2, 5, 15)})
                  .ok());
  const SubscriptionId removed =
      engine.AddSubscription({Predicate(1, Op::kEq, 3)}).value();
  ASSERT_TRUE(engine.AddSubscription({Predicate(1, Op::kGt, 100)}).ok());
  ASSERT_TRUE(engine.RemoveSubscription(removed).ok());
  ASSERT_TRUE(engine.SaveSubscriptions(path).ok());

  // Restore into a fresh engine; only the two live subscriptions return.
  Delivery delivery2;
  StreamEngine restored(SmallOptions(), delivery2.Callback());
  auto count = restored.LoadSubscriptions(path);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 2u);
  const uint64_t e0 =
      restored.Publish(Event::Create({{0, 5}, {2, 10}}).value());
  const uint64_t e1 = restored.Publish(Event::Create({{1, 3}}).value());
  restored.Flush();
  EXPECT_EQ(delivery2.by_event.at(e0).size(), 1u);
  EXPECT_TRUE(delivery2.by_event.at(e1).empty());  // removed one not saved
  std::remove(path.c_str());
}

TEST(EngineTest, LoadSubscriptionsMissingFile) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  EXPECT_FALSE(engine.LoadSubscriptions("/tmp/no_such_apcm_file.bin").ok());
}

TEST(EngineTest, ValidateEngineOptionsAcceptsDefaults) {
  EXPECT_TRUE(ValidateEngineOptions(EngineOptions{}).ok());
  EXPECT_TRUE(ValidateEngineOptions(SmallOptions()).ok());
}

TEST(EngineTest, ValidateEngineOptionsRejectsZeroBatch) {
  EngineOptions options;
  options.batch_size = 0;
  const Status status = ValidateEngineOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("batch_size"), std::string::npos);
}

TEST(EngineTest, ValidateEngineOptionsRejectsShardingOverZeroShards) {
  EngineOptions options;
  options.num_shards = 0;
  options.shard_threads = 4;
  EXPECT_EQ(ValidateEngineOptions(options).code(),
            StatusCode::kInvalidArgument);
  // num_shards == 0 alone is merely shorthand for unsharded (normalized to
  // 1), and sharding with automatic workers is fine.
  options.shard_threads = 0;
  EXPECT_TRUE(ValidateEngineOptions(options).ok());
  options.num_shards = 8;
  EXPECT_TRUE(ValidateEngineOptions(options).ok());
}

TEST(EngineTest, ValidateEngineOptionsRejectsNegativeShardThreads) {
  EngineOptions options;
  options.shard_threads = -1;
  EXPECT_EQ(ValidateEngineOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, ValidateEngineOptionsRejectsQueueBelowBuffer) {
  EngineOptions options;
  options.osr.window_size = 0;
  options.buffer_capacity = 64;
  options.queue_capacity = 32;
  const Status status = ValidateEngineOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("queue_capacity"), std::string::npos);
  // Equal to the buffer, or 0 (auto-sized to 2x), is valid.
  options.queue_capacity = 64;
  // The effective buffer also covers batch_size and the OSR window.
  options.batch_size = 64;
  EXPECT_TRUE(ValidateEngineOptions(options).ok());
  options.queue_capacity = 0;
  EXPECT_TRUE(ValidateEngineOptions(options).ok());
  // batch_size raises the effective buffer above the configured queue.
  options.queue_capacity = 64;
  options.batch_size = 128;
  EXPECT_EQ(ValidateEngineOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, SubscriptionShardCountsCoverLiveSet) {
  EngineOptions options = SmallOptions();
  options.num_shards = 4;
  Delivery delivery;
  StreamEngine engine(options, delivery.Callback());
  std::vector<SubscriptionId> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = engine.AddSubscription({Predicate(0, Op::kGe, i)});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(engine.RemoveSubscription(ids[0]).ok());
  const std::vector<size_t> counts = engine.SubscriptionShardCounts();
  ASSERT_EQ(counts.size(), 4u);
  size_t total = 0;
  for (size_t count : counts) total += count;
  EXPECT_EQ(total, 31u);
  EXPECT_EQ(total, engine.num_subscriptions());
}

TEST(EngineTest, StatsPopulated) {
  Delivery delivery;
  StreamEngine engine(SmallOptions(), delivery.Callback());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  for (int i = 0; i < 20; ++i) {
    engine.Publish(Event::Create({{0, i}}).value());
  }
  engine.Flush();
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.events_published, 20u);
  EXPECT_EQ(stats.events_processed, 20u);
  EXPECT_EQ(stats.matches_delivered, 20u);
  EXPECT_GT(stats.batches_processed, 0u);
  EXPECT_GT(stats.batch_latency_ns.count(), 0u);
  ASSERT_NE(engine.matcher_stats(), nullptr);
  EXPECT_EQ(engine.matcher_stats()->events_matched, 20u);
}

}  // namespace
}  // namespace apcm::engine
