#include "src/engine/matcher_factory.h"

#include <gtest/gtest.h>

namespace apcm::engine {
namespace {

constexpr MatcherKind kAllKinds[] = {
    MatcherKind::kScan,   MatcherKind::kCounting, MatcherKind::kKIndex,
    MatcherKind::kBETree, MatcherKind::kPcm,      MatcherKind::kPcmLazy,
    MatcherKind::kAPcm,
};

TEST(FactoryTest, NamesRoundTrip) {
  for (MatcherKind kind : kAllKinds) {
    const auto name = MatcherKindName(kind);
    auto parsed = ParseMatcherKind(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), kind) << name;
  }
}

TEST(FactoryTest, UnknownNameRejected) {
  EXPECT_EQ(ParseMatcherKind("quantum").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseMatcherKind("").ok());
  EXPECT_FALSE(ParseMatcherKind("PCM").ok());  // case-sensitive
}

TEST(FactoryTest, CreatedMatchersReportTheirKindName) {
  MatcherConfig config;
  for (MatcherKind kind : kAllKinds) {
    auto matcher = CreateMatcher(kind, config);
    ASSERT_NE(matcher, nullptr);
    EXPECT_EQ(matcher->Name(), MatcherKindName(kind));
  }
}

TEST(FactoryTest, PcmModeOverriddenByKind) {
  MatcherConfig config;
  config.pcm.mode = core::PcmMode::kLazy;  // should be overridden
  auto pcm = CreateMatcher(MatcherKind::kPcm, config);
  EXPECT_EQ(pcm->Name(), "pcm");
  auto apcm = CreateMatcher(MatcherKind::kAPcm, config);
  EXPECT_EQ(apcm->Name(), "a-pcm");
}

TEST(FactoryTest, CreatedMatchersAreFunctional) {
  MatcherConfig config;
  config.domain = {0, 100};
  std::vector<BooleanExpression> subs;
  subs.push_back(
      BooleanExpression::Create(0, {Predicate(0, Op::kLe, 50)}).value());
  const Event hit = Event::Create({{0, 10}}).value();
  const Event miss = Event::Create({{0, 90}}).value();
  for (MatcherKind kind : kAllKinds) {
    auto matcher = CreateMatcher(kind, config);
    matcher->Build(subs);
    std::vector<SubscriptionId> matches;
    matcher->Match(hit, &matches);
    EXPECT_EQ(matches, (std::vector<SubscriptionId>{0}))
        << MatcherKindName(kind);
    matcher->Match(miss, &matches);
    EXPECT_TRUE(matches.empty()) << MatcherKindName(kind);
  }
}

}  // namespace
}  // namespace apcm::engine
