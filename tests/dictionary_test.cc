#include "src/core/dictionary.h"

#include <gtest/gtest.h>

namespace apcm::core {
namespace {

TEST(DictionaryTest, InternAssignsDenseIdsInFirstSeenOrder) {
  PredicateDictionary dict;
  EXPECT_EQ(dict.Intern(Predicate(0, Op::kEq, 1)), 0u);
  EXPECT_EQ(dict.Intern(Predicate(0, Op::kEq, 2)), 1u);
  EXPECT_EQ(dict.Intern(Predicate(1, Op::kEq, 1)), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, DuplicatesReturnSameId) {
  PredicateDictionary dict;
  const uint32_t a = dict.Intern(Predicate(3, 10, 20));
  const uint32_t b = dict.Intern(Predicate(3, 10, 20));
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, DistinguishesOperandsAndOps) {
  PredicateDictionary dict;
  dict.Intern(Predicate(0, Op::kLt, 5));
  dict.Intern(Predicate(0, Op::kLe, 5));
  dict.Intern(Predicate(0, Op::kLt, 6));
  dict.Intern(Predicate(1, Op::kLt, 5));
  EXPECT_EQ(dict.size(), 4u);
}

TEST(DictionaryTest, InSetsCanonicalized) {
  PredicateDictionary dict;
  const uint32_t a = dict.Intern(Predicate(0, std::vector<Value>{3, 1, 2}));
  const uint32_t b = dict.Intern(Predicate(0, std::vector<Value>{2, 3, 1}));
  EXPECT_EQ(a, b);
}

TEST(DictionaryTest, GetReturnsInternedPredicate) {
  PredicateDictionary dict;
  const Predicate pred(7, Op::kGe, 42);
  const uint32_t id = dict.Intern(pred);
  EXPECT_EQ(dict.Get(id), pred);
  EXPECT_EQ(dict.predicates().size(), 1u);
}

TEST(DictionaryTest, ShrinkToReadKeepsPredicates) {
  PredicateDictionary dict;
  const uint32_t id = dict.Intern(Predicate(1, Op::kEq, 9));
  const uint64_t before = dict.MemoryBytes();
  dict.ShrinkToRead();
  EXPECT_EQ(dict.Get(id), Predicate(1, Op::kEq, 9));
  EXPECT_LE(dict.MemoryBytes(), before);
}

TEST(DictionaryTest, CompressionAccounting) {
  // 100 expressions sharing 5 distinct predicates: dictionary holds 5.
  PredicateDictionary dict;
  for (int i = 0; i < 100; ++i) {
    for (Value v = 0; v < 5; ++v) {
      dict.Intern(Predicate(0, Op::kEq, v));
    }
  }
  EXPECT_EQ(dict.size(), 5u);
}

}  // namespace
}  // namespace apcm::core
