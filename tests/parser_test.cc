#include "src/be/parser.h"

#include <gtest/gtest.h>

namespace apcm {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Catalog catalog_;
  Parser parser_{&catalog_};
};

TEST_F(ParserTest, ParsesComparisonPredicates) {
  struct Case {
    const char* text;
    Op op;
    Value v;
  };
  const Case cases[] = {
      {"price = 10", Op::kEq, 10},  {"price != 10", Op::kNe, 10},
      {"price < 10", Op::kLt, 10},  {"price <= 10", Op::kLe, 10},
      {"price > 10", Op::kGt, 10},  {"price >= 10", Op::kGe, 10},
      {"price=-5", Op::kEq, -5},
  };
  for (const Case& c : cases) {
    auto pred = parser_.ParsePredicate(c.text);
    ASSERT_TRUE(pred.ok()) << c.text << ": " << pred.status().ToString();
    EXPECT_EQ(pred->op(), c.op) << c.text;
    EXPECT_EQ(pred->v1(), c.v) << c.text;
    EXPECT_EQ(pred->attribute(), catalog_.FindAttribute("price").value());
  }
}

TEST_F(ParserTest, ParsesBetween) {
  auto pred = parser_.ParsePredicate("age between [20, 30]");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->op(), Op::kBetween);
  EXPECT_EQ(pred->v1(), 20);
  EXPECT_EQ(pred->v2(), 30);
}

TEST_F(ParserTest, ParsesInSet) {
  auto pred = parser_.ParsePredicate("category in {9, 1, 5}");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->op(), Op::kIn);
  EXPECT_EQ(pred->values(), (std::vector<Value>{1, 5, 9}));
}

TEST_F(ParserTest, PredicateErrors) {
  EXPECT_FALSE(parser_.ParsePredicate("").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price ~ 5").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price = abc").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price between [30, 20]").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price between [1]").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price in {}").ok());
  EXPECT_FALSE(parser_.ParsePredicate("9price = 5").ok());
}

TEST_F(ParserTest, ParsesConjunction) {
  auto expr = parser_.ParseExpression(
      4, "price <= 100 and category in {1, 2} and age between [20, 30]");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->id(), 4u);
  EXPECT_EQ(expr->size(), 3u);
}

TEST_F(ParserTest, AttributeNamesContainingAndAreSafe) {
  auto expr = parser_.ParseExpression(0, "brand = 5 and android >= 2");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->size(), 2u);
  EXPECT_TRUE(catalog_.FindAttribute("brand").ok());
  EXPECT_TRUE(catalog_.FindAttribute("android").ok());
}

TEST_F(ParserTest, EmptyExpressionIsMatchAll) {
  auto expr = parser_.ParseExpression(1, "");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->size(), 0u);
  auto expr2 = parser_.ParseExpression(2, " <true> ");
  ASSERT_TRUE(expr2.ok());
  EXPECT_EQ(expr2->size(), 0u);
}

TEST_F(ParserTest, DuplicateAttributeInConjunctionRejected) {
  auto expr = parser_.ParseExpression(0, "x > 1 and x < 9");
  EXPECT_EQ(expr.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, ParsesEvent) {
  auto event = parser_.ParseEvent("price = 50, category = 2");
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->size(), 2u);
  const AttributeId price = catalog_.FindAttribute("price").value();
  EXPECT_EQ(*event->Find(price), 50);
}

TEST_F(ParserTest, EventErrors) {
  EXPECT_FALSE(parser_.ParseEvent("price 50").ok());
  EXPECT_FALSE(parser_.ParseEvent("price = x").ok());
  EXPECT_FALSE(parser_.ParseEvent("price = 1, price = 2").ok());
}

TEST_F(ParserTest, EmptyEventIsValid) {
  auto event = parser_.ParseEvent("");
  ASSERT_TRUE(event.ok());
  EXPECT_TRUE(event->empty());
}

TEST_F(ParserTest, RoundTripThroughToString) {
  const char* texts[] = {
      "price <= 100 and category in {1, 2} and age between [20, 30]",
      "x != 5",
      "a = 1 and b > 2 and c < 3 and d >= 4 and e <= 5",
  };
  for (const char* text : texts) {
    auto expr = parser_.ParseExpression(0, text);
    ASSERT_TRUE(expr.ok()) << text;
    std::string printed;
    for (size_t i = 0; i < expr->predicates().size(); ++i) {
      if (i > 0) printed += " and ";
      printed += expr->predicates()[i].ToString(&catalog_);
    }
    auto reparsed = parser_.ParseExpression(0, printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    ASSERT_EQ(reparsed->size(), expr->size());
    for (size_t i = 0; i < expr->predicates().size(); ++i) {
      EXPECT_EQ(reparsed->predicates()[i], expr->predicates()[i]) << printed;
    }
  }
}

}  // namespace
}  // namespace apcm
