#include "src/be/parser.h"

#include <gtest/gtest.h>

#include <string>

#include "src/workload/generator.h"

namespace apcm {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Catalog catalog_;
  Parser parser_{&catalog_};
};

TEST_F(ParserTest, ParsesComparisonPredicates) {
  struct Case {
    const char* text;
    Op op;
    Value v;
  };
  const Case cases[] = {
      {"price = 10", Op::kEq, 10},  {"price != 10", Op::kNe, 10},
      {"price < 10", Op::kLt, 10},  {"price <= 10", Op::kLe, 10},
      {"price > 10", Op::kGt, 10},  {"price >= 10", Op::kGe, 10},
      {"price=-5", Op::kEq, -5},
  };
  for (const Case& c : cases) {
    auto pred = parser_.ParsePredicate(c.text);
    ASSERT_TRUE(pred.ok()) << c.text << ": " << pred.status().ToString();
    EXPECT_EQ(pred->op(), c.op) << c.text;
    EXPECT_EQ(pred->v1(), c.v) << c.text;
    EXPECT_EQ(pred->attribute(), catalog_.FindAttribute("price").value());
  }
}

TEST_F(ParserTest, ParsesBetween) {
  auto pred = parser_.ParsePredicate("age between [20, 30]");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->op(), Op::kBetween);
  EXPECT_EQ(pred->v1(), 20);
  EXPECT_EQ(pred->v2(), 30);
}

TEST_F(ParserTest, ParsesInSet) {
  auto pred = parser_.ParsePredicate("category in {9, 1, 5}");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->op(), Op::kIn);
  EXPECT_EQ(pred->values(), (std::vector<Value>{1, 5, 9}));
}

TEST_F(ParserTest, PredicateErrors) {
  EXPECT_FALSE(parser_.ParsePredicate("").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price ~ 5").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price = abc").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price between [30, 20]").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price between [1]").ok());
  EXPECT_FALSE(parser_.ParsePredicate("price in {}").ok());
  EXPECT_FALSE(parser_.ParsePredicate("9price = 5").ok());
}

TEST_F(ParserTest, ParsesConjunction) {
  auto expr = parser_.ParseExpression(
      4, "price <= 100 and category in {1, 2} and age between [20, 30]");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->id(), 4u);
  EXPECT_EQ(expr->size(), 3u);
}

TEST_F(ParserTest, AttributeNamesContainingAndAreSafe) {
  auto expr = parser_.ParseExpression(0, "brand = 5 and android >= 2");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->size(), 2u);
  EXPECT_TRUE(catalog_.FindAttribute("brand").ok());
  EXPECT_TRUE(catalog_.FindAttribute("android").ok());
}

TEST_F(ParserTest, EmptyExpressionIsMatchAll) {
  auto expr = parser_.ParseExpression(1, "");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->size(), 0u);
  auto expr2 = parser_.ParseExpression(2, " <true> ");
  ASSERT_TRUE(expr2.ok());
  EXPECT_EQ(expr2->size(), 0u);
}

TEST_F(ParserTest, DuplicateAttributeInConjunctionRejected) {
  auto expr = parser_.ParseExpression(0, "x > 1 and x < 9");
  EXPECT_EQ(expr.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, ParsesEvent) {
  auto event = parser_.ParseEvent("price = 50, category = 2");
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->size(), 2u);
  const AttributeId price = catalog_.FindAttribute("price").value();
  EXPECT_EQ(*event->Find(price), 50);
}

TEST_F(ParserTest, EventErrors) {
  EXPECT_FALSE(parser_.ParseEvent("price 50").ok());
  EXPECT_FALSE(parser_.ParseEvent("price = x").ok());
  EXPECT_FALSE(parser_.ParseEvent("price = 1, price = 2").ok());
}

TEST_F(ParserTest, EmptyEventIsValid) {
  auto event = parser_.ParseEvent("");
  ASSERT_TRUE(event.ok());
  EXPECT_TRUE(event->empty());
}

TEST_F(ParserTest, RoundTripThroughToString) {
  const char* texts[] = {
      "price <= 100 and category in {1, 2} and age between [20, 30]",
      "x != 5",
      "a = 1 and b > 2 and c < 3 and d >= 4 and e <= 5",
  };
  for (const char* text : texts) {
    auto expr = parser_.ParseExpression(0, text);
    ASSERT_TRUE(expr.ok()) << text;
    std::string printed;
    for (size_t i = 0; i < expr->predicates().size(); ++i) {
      if (i > 0) printed += " and ";
      printed += expr->predicates()[i].ToString(&catalog_);
    }
    auto reparsed = parser_.ParseExpression(0, printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    ASSERT_EQ(reparsed->size(), expr->size());
    for (size_t i = 0; i < expr->predicates().size(); ++i) {
      EXPECT_EQ(reparsed->predicates()[i], expr->predicates()[i]) << printed;
    }
  }
}

// ---------------------------------------------------------------------------
// Generator-driven round-trip properties: parse(print(x)) must equal x for
// every operator the generator can produce (including negative operands, "in"
// sets, "between" ranges, and !=), for events, and for disjunctions — not
// just the hand-written cases above.

// A catalog pre-registered with the default ToString names ("attr<i>"), so
// reparsed attribute ids coincide with the generator's raw ids.
class ParserRoundTripTest : public ::testing::Test {
 protected:
  void RegisterAttributes(const workload::WorkloadSpec& spec) {
    for (uint32_t a = 0; a < spec.num_attributes; ++a) {
      ASSERT_TRUE(catalog_
                      .AddAttribute("attr" + std::to_string(a),
                                    spec.domain_min, spec.domain_max)
                      .ok());
    }
  }

  static std::string Print(const BooleanExpression& expr) {
    std::string text;
    for (size_t i = 0; i < expr.predicates().size(); ++i) {
      if (i > 0) text += " and ";
      text += expr.predicates()[i].ToString(nullptr);  // "attr<i> <op> ..."
    }
    return text;
  }

  workload::WorkloadSpec RoundTripSpec(uint64_t seed) {
    workload::WorkloadSpec spec;
    spec.seed = seed;
    spec.num_subscriptions = 200;
    spec.num_events = 100;
    spec.num_attributes = 12;
    spec.domain_min = -300;  // negative operands must survive the trip
    spec.domain_max = 700;
    spec.min_predicates = 1;
    spec.max_predicates = 6;
    spec.min_event_attrs = 1;
    spec.max_event_attrs = 8;
    // Every operator family well represented.
    spec.equality_fraction = 0.2;
    spec.in_fraction = 0.2;
    spec.ne_fraction = 0.2;
    spec.inequality_fraction = 0.2;  // remainder: between
    return spec;
  }

  Catalog catalog_;
  Parser parser_{&catalog_};
};

TEST_F(ParserRoundTripTest, GeneratedExpressionsRoundTrip) {
  const auto spec = RoundTripSpec(31);
  RegisterAttributes(spec);
  const auto workload = workload::Generate(spec).value();
  for (const BooleanExpression& expr : workload.subscriptions) {
    const std::string printed = Print(expr);
    auto reparsed = parser_.ParseExpression(expr.id(), printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": "
                               << reparsed.status().ToString();
    ASSERT_EQ(reparsed->size(), expr.size()) << printed;
    for (size_t i = 0; i < expr.predicates().size(); ++i) {
      ASSERT_EQ(reparsed->predicates()[i], expr.predicates()[i]) << printed;
    }
    // print(parse(print(x))) == print(x): printing is a fixpoint.
    EXPECT_EQ(Print(*reparsed), printed);
  }
}

TEST_F(ParserRoundTripTest, GeneratedEventsRoundTrip) {
  const auto spec = RoundTripSpec(32);
  RegisterAttributes(spec);
  const auto workload = workload::Generate(spec).value();
  for (const Event& event : workload.events) {
    const std::string printed = event.ToString(nullptr);
    auto reparsed = parser_.ParseEvent(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": "
                               << reparsed.status().ToString();
    ASSERT_EQ(reparsed->entries().size(), event.entries().size()) << printed;
    for (size_t i = 0; i < event.entries().size(); ++i) {
      EXPECT_EQ(reparsed->entries()[i].attr, event.entries()[i].attr)
          << printed;
      EXPECT_EQ(reparsed->entries()[i].value, event.entries()[i].value)
          << printed;
    }
    EXPECT_EQ(reparsed->ToString(nullptr), printed);
  }
}

TEST_F(ParserRoundTripTest, GeneratedDisjunctionsRoundTrip) {
  const auto spec = RoundTripSpec(33);
  RegisterAttributes(spec);
  const auto workload = workload::Generate(spec).value();
  // Stitch consecutive generated conjunctions into DNF texts of 1-3
  // disjuncts and round-trip through ParseDisjunction.
  for (size_t i = 0; i + 3 <= workload.subscriptions.size(); i += 3) {
    const size_t disjuncts = 1 + i % 3;
    std::string text;
    std::vector<const BooleanExpression*> sources;
    for (size_t d = 0; d < disjuncts; ++d) {
      if (d > 0) text += " or ";
      text += Print(workload.subscriptions[i + d]);
      sources.push_back(&workload.subscriptions[i + d]);
    }
    auto parsed = parser_.ParseDisjunction(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), sources.size()) << text;
    for (size_t d = 0; d < sources.size(); ++d) {
      ASSERT_EQ((*parsed)[d].size(), sources[d]->size()) << text;
      for (size_t p = 0; p < sources[d]->predicates().size(); ++p) {
        EXPECT_EQ((*parsed)[d][p], sources[d]->predicates()[p]) << text;
      }
    }
  }
}

TEST_F(ParserRoundTripTest, MatchAllExpressionRoundTrips) {
  // The empty conjunction (match-all) prints as "" and reparses as
  // match-all — the degenerate case the hand-written cases skip.
  auto expr = parser_.ParseExpression(7, "");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(Print(*expr), "");
  auto reparsed = parser_.ParseExpression(7, Print(*expr));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), 0u);
}

}  // namespace
}  // namespace apcm
