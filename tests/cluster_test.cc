#include "src/core/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/bitmap/bitmap.h"
#include "tests/matcher_test_util.h"

namespace apcm::core {
namespace {

std::vector<const BooleanExpression*> Pointers(
    const std::vector<BooleanExpression>& subs) {
  std::vector<const BooleanExpression*> ptrs;
  for (const auto& sub : subs) ptrs.push_back(&sub);
  return ptrs;
}

std::vector<SubscriptionId> CompressedMatches(const CompressedCluster& cluster,
                                              const Event& event) {
  std::vector<uint64_t> result(cluster.words(), 0);
  MatcherStats stats;
  std::vector<SubscriptionId> matches;
  if (cluster.MatchCompressed(event, result.data(), &stats)) {
    cluster.CollectMatches(result.data(), &matches);
  }
  return matches;
}

std::vector<SubscriptionId> LazyMatches(const CompressedCluster& cluster,
                                        const Event& event) {
  std::vector<uint64_t> result(cluster.words(), 0);
  MatcherStats stats;
  std::vector<SubscriptionId> matches;
  if (cluster.MatchLazy(event, result.data(), &stats)) {
    cluster.CollectMatches(result.data(), &matches);
  }
  return matches;
}

std::vector<SubscriptionId> ScanMatches(
    const std::vector<BooleanExpression>& subs, const Event& event) {
  std::vector<SubscriptionId> matches;
  for (const auto& sub : subs) {
    if (sub.Matches(event)) matches.push_back(sub.id());
  }
  return matches;
}

TEST(ClusterTest, BasicCompressedMatching) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(
      10, {Predicate(0, Op::kLe, 50), Predicate(1, Op::kEq, 1)}).value());
  subs.push_back(BooleanExpression::Create(
      11, {Predicate(0, Op::kLe, 50), Predicate(1, Op::kEq, 2)}).value());
  subs.push_back(BooleanExpression::Create(
      12, {Predicate(0, Op::kGt, 50)}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));

  EXPECT_EQ(CompressedMatches(cluster,
                              Event::Create({{0, 40}, {1, 1}}).value()),
            (std::vector<SubscriptionId>{10}));
  EXPECT_EQ(CompressedMatches(cluster,
                              Event::Create({{0, 40}, {1, 2}}).value()),
            (std::vector<SubscriptionId>{11}));
  EXPECT_EQ(CompressedMatches(cluster, Event::Create({{0, 60}}).value()),
            (std::vector<SubscriptionId>{12}));
  // attr 1 absent: subs 10, 11 fail via the absence mask.
  EXPECT_EQ(CompressedMatches(cluster, Event::Create({{0, 40}}).value()),
            (std::vector<SubscriptionId>{}));
}

TEST(ClusterTest, SharedPredicateEvaluatedOnce) {
  // 64 subscriptions all sharing one predicate on attr 0, each with a unique
  // predicate on attr 1.
  std::vector<BooleanExpression> subs;
  for (SubscriptionId i = 0; i < 64; ++i) {
    subs.push_back(BooleanExpression::Create(
        i, {Predicate(0, 10, 20), Predicate(1, Op::kEq, i)}).value());
  }
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.total_predicates(), 128u);
  EXPECT_EQ(cluster.distinct_predicates(), 65u);  // 1 shared + 64 unique

  std::vector<uint64_t> result(cluster.words());
  MatcherStats stats;
  const Event event = Event::Create({{0, 15}, {1, 7}}).value();
  ASSERT_TRUE(cluster.MatchCompressed(event, result.data(), &stats));
  // Compressed evaluation touches each distinct predicate at most once.
  EXPECT_LE(stats.predicate_evals, 65u);
  std::vector<SubscriptionId> matches;
  cluster.CollectMatches(result.data(), &matches);
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{7}));
}

TEST(ClusterTest, CompressedLazyAndScanAgree) {
  for (uint64_t seed : {71, 72, 73, 74}) {
    const auto spec = GnarlySpec(seed);
    const auto workload = workload::Generate(spec).value();
    const auto cluster =
        CompressedCluster::Build(Pointers(workload.subscriptions));
    for (const Event& event : workload.events) {
      const auto expected = ScanMatches(workload.subscriptions, event);
      EXPECT_EQ(CompressedMatches(cluster, event), expected)
          << event.ToString();
      EXPECT_EQ(LazyMatches(cluster, event), expected) << event.ToString();
    }
  }
}

TEST(ClusterTest, SparseThresholdDoesNotChangeResults) {
  const auto spec = GnarlySpec(75);
  const auto workload = workload::Generate(spec).value();
  const auto ptrs = Pointers(workload.subscriptions);
  CompressedCluster::Options all_dense;
  all_dense.sparse_threshold = 0;
  CompressedCluster::Options all_sparse;
  all_sparse.sparse_threshold = 1'000'000;
  const auto dense = CompressedCluster::Build(ptrs, all_dense);
  const auto sparse = CompressedCluster::Build(ptrs, all_sparse);
  const auto defaults = CompressedCluster::Build(ptrs);
  for (const Event& event : workload.events) {
    const auto expected = ScanMatches(workload.subscriptions, event);
    EXPECT_EQ(CompressedMatches(dense, event), expected);
    EXPECT_EQ(CompressedMatches(sparse, event), expected);
    EXPECT_EQ(CompressedMatches(defaults, event), expected);
  }
  // Sparse slot lists use far less memory than width-sized masks here.
  EXPECT_LT(sparse.MemoryBytes(), dense.MemoryBytes());
}

TEST(ClusterTest, AbsencePhaseSplitMatchesOneShot) {
  const auto spec = GnarlySpec(76);
  const auto workload = workload::Generate(spec).value();
  const auto cluster =
      CompressedCluster::Build(Pointers(workload.subscriptions));
  std::vector<uint64_t> split(cluster.words());
  std::vector<uint64_t> oneshot(cluster.words());
  for (const Event& event : workload.events) {
    MatcherStats s1;
    MatcherStats s2;
    const bool alive_split =
        cluster.ComputeAbsence(event, split.data(), &s1) &&
        cluster.MatchPresent(event, split.data(), &s1);
    const bool alive_oneshot =
        cluster.MatchCompressed(event, oneshot.data(), &s2);
    EXPECT_EQ(alive_split, alive_oneshot);
    if (alive_split) {
      std::vector<SubscriptionId> m1;
      std::vector<SubscriptionId> m2;
      cluster.CollectMatches(split.data(), &m1);
      cluster.CollectMatches(oneshot.data(), &m2);
      EXPECT_EQ(m1, m2);
    }
  }
}

TEST(ClusterTest, EmptyExpressionMatchesEverything) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(5, {}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(CompressedMatches(cluster, Event()),
            (std::vector<SubscriptionId>{5}));
  EXPECT_EQ(CompressedMatches(cluster, Event::Create({{9, 9}}).value()),
            (std::vector<SubscriptionId>{5}));
}

TEST(ClusterTest, SingleSubscriptionCluster) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(
      0, {Predicate(2, Op::kEq, 3)}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.size(), 1u);
  // Result width is padded to the kernel block (8 words) even for one slot.
  EXPECT_EQ(cluster.words(), bitmap::kWordBlock);
  EXPECT_EQ(CompressedMatches(cluster, Event::Create({{2, 3}}).value()),
            (std::vector<SubscriptionId>{0}));
  EXPECT_TRUE(CompressedMatches(cluster, Event::Create({{2, 4}}).value())
                  .empty());
}

TEST(ClusterTest, NonContiguousSubscriptionIds) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(
      1000, {Predicate(0, Op::kGe, 5)}).value());
  subs.push_back(BooleanExpression::Create(
      5, {Predicate(0, Op::kLt, 5)}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.SubIdAt(0), 1000u);
  EXPECT_EQ(cluster.SubIdAt(1), 5u);
  EXPECT_EQ(CompressedMatches(cluster, Event::Create({{0, 9}}).value()),
            (std::vector<SubscriptionId>{1000}));
}

TEST(ClusterTest, WideClusterCrossesWordBoundaries) {
  // 200 subscriptions -> 4 words, padded to one kernel block; matches on
  // both sides of word boundaries.
  std::vector<BooleanExpression> subs;
  for (SubscriptionId i = 0; i < 200; ++i) {
    subs.push_back(BooleanExpression::Create(
        i, {Predicate(0, Op::kEq, static_cast<Value>(i % 2))}).value());
  }
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.words(), PaddedWords(200));
  const auto even = CompressedMatches(cluster, Event::Create({{0, 0}}).value());
  EXPECT_EQ(even.size(), 100u);
  for (SubscriptionId id : even) EXPECT_EQ(id % 2, 0u);
}

TEST(ClusterTest, RequiredAttributesComputed) {
  std::vector<BooleanExpression> subs;
  // attr 3 constrained by all, attr 5 by only one, attr 7 by both.
  subs.push_back(BooleanExpression::Create(
      0, {Predicate(3, Op::kGe, 1), Predicate(7, Op::kLe, 9)}).value());
  subs.push_back(BooleanExpression::Create(
      1, {Predicate(3, Op::kLt, 5), Predicate(5, Op::kEq, 2),
          Predicate(7, Op::kGt, 0)}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.required_attributes(), (std::vector<AttributeId>{3, 7}));
  // An event missing attr 3 is rejected by the fast path, with zeroed
  // output, in both modes.
  std::vector<uint64_t> result(cluster.words(), ~0ULL);
  MatcherStats stats;
  EXPECT_FALSE(cluster.ComputeAbsence(Event::Create({{5, 2}, {7, 1}}).value(),
                                      result.data(), &stats));
  EXPECT_TRUE(IsZeroWords(result.data(), cluster.words()));
  EXPECT_FALSE(cluster.MatchLazy(Event::Create({{5, 2}, {7, 1}}).value(),
                                 result.data(), &stats));
}

TEST(ClusterTest, MatchAllSubscriptionDisablesRequiredAttrs) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(
      0, {Predicate(3, Op::kGe, 1)}).value());
  subs.push_back(BooleanExpression::Create(1, {}).value());  // matches all
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_TRUE(cluster.required_attributes().empty());
  EXPECT_EQ(CompressedMatches(cluster, Event()),
            (std::vector<SubscriptionId>{1}));
}

// Word-boundary sweep: cluster widths straddling 64-bit word edges must not
// leak tail bits or drop slots in any evaluation path.
class ClusterWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClusterWidthTest, AllPathsAgreeAtBoundaryWidths) {
  const uint32_t width = GetParam();
  workload::WorkloadSpec spec = GnarlySpec(width * 7 + 1);
  spec.num_subscriptions = width;
  spec.num_events = 60;
  const auto workload = workload::Generate(spec).value();
  const auto cluster =
      CompressedCluster::Build(Pointers(workload.subscriptions));
  ASSERT_EQ(cluster.size(), width);
  for (const Event& event : workload.events) {
    const auto expected = ScanMatches(workload.subscriptions, event);
    EXPECT_EQ(CompressedMatches(cluster, event), expected)
        << "width " << width << " " << event.ToString();
    EXPECT_EQ(LazyMatches(cluster, event), expected)
        << "width " << width << " " << event.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, ClusterWidthTest,
                         ::testing::Values(1u, 2u, 63u, 64u, 65u, 127u, 128u,
                                           129u, 192u, 255u, 256u));

TEST(ClusterTest, AttributesAccessorSorted) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(
      0, {Predicate(9, Op::kEq, 1), Predicate(2, Op::kEq, 1)}).value());
  subs.push_back(BooleanExpression::Create(
      1, {Predicate(5, Op::kEq, 1)}).value());
  const auto cluster = CompressedCluster::Build(Pointers(subs));
  EXPECT_EQ(cluster.Attributes(), (std::vector<AttributeId>{2, 5, 9}));
}

}  // namespace
}  // namespace apcm::core
