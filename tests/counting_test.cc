#include "src/index/counting.h"

#include <gtest/gtest.h>

#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

ValueInterval SpecDomain(const workload::WorkloadSpec& spec) {
  return {spec.domain_min, spec.domain_max};
}

TEST(CountingTest, HandWorkload) {
  const workload::Workload workload = HandWorkload();
  index::CountingMatcher counting({0, 1'000'000});
  ExpectAgreesWithScan(counting, workload);
}

class CountingRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountingRandomTest, AgreesWithScan) {
  const auto spec = GnarlySpec(GetParam());
  const workload::Workload workload = workload::Generate(spec).value();
  index::CountingMatcher counting(SpecDomain(spec));
  ExpectAgreesWithScan(counting, workload);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingRandomTest,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(CountingTest, EmptySubscriptionSet) {
  workload::Workload workload;
  workload.events.push_back(Event::Create({{0, 1}}).value());
  index::CountingMatcher counting({0, 100});
  const auto results = RunMatcher(counting, workload);
  EXPECT_TRUE(results[0].empty());
}

TEST(CountingTest, MatchAllSubscription) {
  workload::Workload workload;
  workload.subscriptions.push_back(BooleanExpression::Create(0, {}).value());
  workload.events.push_back(Event());
  workload.events.push_back(Event::Create({{5, 5}}).value());
  index::CountingMatcher counting({0, 100});
  const auto results = RunMatcher(counting, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
  EXPECT_EQ(results[1], (std::vector<SubscriptionId>{0}));
}

TEST(CountingTest, EpochCountersSurviveManyEvents) {
  // More events than any small counter interval; exercises epoch wrap logic
  // (epoch is 32-bit, but stale-counter reuse across events is the bug this
  // guards against).
  workload::WorkloadSpec spec = GnarlySpec(20);
  spec.num_events = 2000;
  spec.num_subscriptions = 50;
  const workload::Workload workload = workload::Generate(spec).value();
  index::CountingMatcher counting(SpecDomain(spec));
  ExpectAgreesWithScan(counting, workload);
}

TEST(CountingTest, StatsAndMemory) {
  const auto spec = GnarlySpec(21);
  const workload::Workload workload = workload::Generate(spec).value();
  index::CountingMatcher counting(SpecDomain(spec));
  RunMatcher(counting, workload);
  EXPECT_EQ(counting.stats().events_matched, workload.events.size());
  EXPECT_GT(counting.MemoryBytes(), 0u);
}

TEST(CountingTest, EventAttributesOutsideIndexedRange) {
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(0, {Predicate(1, Op::kEq, 5)}).value());
  // Attribute 999 was never indexed; must not crash or affect results.
  workload.events.push_back(Event::Create({{1, 5}, {999, 1}}).value());
  index::CountingMatcher counting({0, 100});
  const auto results = RunMatcher(counting, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
}

}  // namespace
}  // namespace apcm
