#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace apcm::workload {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.num_subscriptions = 500;
  spec.num_events = 200;
  spec.num_attributes = 50;
  spec.domain_min = 0;
  spec.domain_max = 1000;
  spec.min_predicates = 2;
  spec.max_predicates = 6;
  spec.min_event_attrs = 5;
  spec.max_event_attrs = 15;
  return spec;
}

TEST(GeneratorTest, RespectsCounts) {
  const Workload workload = Generate(SmallSpec()).value();
  EXPECT_EQ(workload.subscriptions.size(), 500u);
  EXPECT_EQ(workload.events.size(), 200u);
  EXPECT_EQ(workload.catalog.size(), 50u);
}

TEST(GeneratorTest, DeterministicForSameSpec) {
  const Workload a = Generate(SmallSpec()).value();
  const Workload b = Generate(SmallSpec()).value();
  ASSERT_EQ(a.subscriptions.size(), b.subscriptions.size());
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    EXPECT_EQ(a.subscriptions[i].ToString(), b.subscriptions[i].ToString());
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadSpec spec_b = SmallSpec();
  spec_b.seed = 8;
  const Workload a = Generate(SmallSpec()).value();
  const Workload b = Generate(spec_b).value();
  int differing = 0;
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    if (a.subscriptions[i].ToString() != b.subscriptions[i].ToString()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 400);
}

TEST(GeneratorTest, SubscriptionsIndependentOfEventCount) {
  WorkloadSpec spec_b = SmallSpec();
  spec_b.num_events = 999;
  const Workload a = Generate(SmallSpec()).value();
  const Workload b = Generate(spec_b).value();
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    EXPECT_EQ(a.subscriptions[i].ToString(), b.subscriptions[i].ToString());
  }
  const auto subs_only = GenerateSubscriptions(SmallSpec()).value();
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    EXPECT_EQ(a.subscriptions[i].ToString(), subs_only[i].ToString());
  }
}

TEST(GeneratorTest, PredicateAndEventSizesInBounds) {
  const WorkloadSpec spec = SmallSpec();
  const Workload workload = Generate(spec).value();
  for (const auto& sub : workload.subscriptions) {
    EXPECT_GE(sub.size(), spec.min_predicates);
    EXPECT_LE(sub.size(), spec.max_predicates);
    for (const auto& pred : sub.predicates()) {
      EXPECT_LT(pred.attribute(), spec.num_attributes);
    }
  }
  // Unseeded events respect [min, max] event attrs; seeded events can exceed
  // only up to the seeding subscription's predicate count.
  for (const auto& event : workload.events) {
    EXPECT_LE(event.size(),
              size_t{std::max(spec.max_event_attrs, spec.max_predicates)});
    for (const auto& entry : event.entries()) {
      EXPECT_LT(entry.attr, spec.num_attributes);
      EXPECT_GE(entry.value, spec.domain_min);
      EXPECT_LE(entry.value, spec.domain_max);
    }
  }
}

TEST(GeneratorTest, SubscriptionIdsAreDense) {
  const Workload workload = Generate(SmallSpec()).value();
  for (size_t i = 0; i < workload.subscriptions.size(); ++i) {
    EXPECT_EQ(workload.subscriptions[i].id(), i);
  }
}

TEST(GeneratorTest, SeededEventsProduceMatches) {
  WorkloadSpec spec = SmallSpec();
  spec.seeded_event_fraction = 1.0;
  const Workload workload = Generate(spec).value();
  // Every event was constructed to satisfy at least one subscription.
  size_t events_with_match = 0;
  for (const auto& event : workload.events) {
    for (const auto& sub : workload.subscriptions) {
      if (sub.Matches(event)) {
        ++events_with_match;
        break;
      }
    }
  }
  // A tiny number can fail when a predicate is unsatisfiable (kNe on a
  // 1-point domain); with this spec that cannot happen, so all must match.
  EXPECT_EQ(events_with_match, workload.events.size());
}

TEST(GeneratorTest, UnseededEventsRarelyMatch) {
  WorkloadSpec spec = SmallSpec();
  spec.seeded_event_fraction = 0.0;
  const Workload workload = Generate(spec).value();
  uint64_t matches = 0;
  for (const auto& event : workload.events) {
    for (const auto& sub : workload.subscriptions) {
      if (sub.Matches(event)) ++matches;
    }
  }
  // Conjunctions with >= 2 predicates over 50 attributes almost never match
  // random events: the expected rate is far below one per event.
  EXPECT_LT(matches, workload.events.size());
}

TEST(GeneratorTest, ZipfSkewConcentratesAttributes) {
  WorkloadSpec skewed = SmallSpec();
  skewed.attribute_zipf = 2.0;
  WorkloadSpec uniform = SmallSpec();
  uniform.attribute_zipf = 0.0;
  auto count_attr0 = [](const Workload& w) {
    uint64_t count = 0;
    for (const auto& sub : w.subscriptions) {
      for (const auto& pred : sub.predicates()) {
        if (pred.attribute() == 0) ++count;
      }
    }
    return count;
  };
  EXPECT_GT(count_attr0(Generate(skewed).value()),
            2 * count_attr0(Generate(uniform).value()));
}

TEST(GeneratorTest, EventLocalityRepeatsAttributeSets) {
  WorkloadSpec spec = SmallSpec();
  spec.event_locality = 0.9;
  spec.seeded_event_fraction = 0.0;
  const Workload workload = Generate(spec).value();
  uint64_t repeats = 0;
  for (size_t i = 1; i < workload.events.size(); ++i) {
    const auto& prev = workload.events[i - 1].entries();
    const auto& cur = workload.events[i].entries();
    if (prev.size() != cur.size()) continue;
    bool same = true;
    for (size_t j = 0; j < cur.size(); ++j) {
      same &= prev[j].attr == cur[j].attr;
    }
    repeats += same;
  }
  // ~90% of events reuse the previous attribute set.
  EXPECT_GT(repeats, workload.events.size() / 2);
}

TEST(GeneratorTest, OperandGridQuantizesOperands) {
  WorkloadSpec spec = SmallSpec();
  spec.operand_grid = 0.1;  // grid step = 100 over a [0, 1000] domain
  const Workload workload = Generate(spec).value();
  const Value step = 100;
  uint64_t checked = 0;
  for (const auto& sub : workload.subscriptions) {
    for (const auto& pred : sub.predicates()) {
      switch (pred.op()) {
        case Op::kEq:
        case Op::kNe:
          EXPECT_EQ((pred.v1() - spec.domain_min) % step, 0)
              << pred.ToString();
          ++checked;
          break;
        case Op::kBetween:
          EXPECT_EQ((pred.v1() - spec.domain_min) % step, 0)
              << pred.ToString();
          ++checked;
          break;
        case Op::kIn:
          for (Value v : pred.values()) {
            EXPECT_EQ((v - spec.domain_min) % step, 0) << pred.ToString();
          }
          ++checked;
          break;
        default:
          break;  // inequality thresholds derive from quantized widths
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(GeneratorTest, OperandGridIncreasesDuplication) {
  auto distinct_fraction = [](const Workload& w) {
    std::set<std::string> distinct;
    uint64_t total = 0;
    for (const auto& sub : w.subscriptions) {
      for (const auto& pred : sub.predicates()) {
        distinct.insert(pred.ToString());
        ++total;
      }
    }
    return static_cast<double>(distinct.size()) /
           static_cast<double>(total);
  };
  WorkloadSpec plain = SmallSpec();
  WorkloadSpec gridded = SmallSpec();
  gridded.operand_grid = 0.05;
  EXPECT_LT(distinct_fraction(Generate(gridded).value()),
            distinct_fraction(Generate(plain).value()));
}

TEST(GeneratorTest, InvalidSpecsRejected) {
  WorkloadSpec spec = SmallSpec();
  spec.min_predicates = 10;
  spec.max_predicates = 5;
  EXPECT_FALSE(Generate(spec).ok());

  spec = SmallSpec();
  spec.max_predicates = 100;  // exceeds 50 attributes
  EXPECT_FALSE(Generate(spec).ok());

  spec = SmallSpec();
  spec.domain_min = 10;
  spec.domain_max = 5;
  EXPECT_FALSE(Generate(spec).ok());

  spec = SmallSpec();
  spec.equality_fraction = 0.9;
  spec.in_fraction = 0.3;  // fractions sum > 1
  EXPECT_FALSE(Generate(spec).ok());

  spec = SmallSpec();
  spec.predicate_width = 0;
  EXPECT_FALSE(Generate(spec).ok());

  spec = SmallSpec();
  spec.seeded_event_fraction = 1.5;
  EXPECT_FALSE(Generate(spec).ok());
}

TEST(GeneratorTest, ShuffleEventsIsDeterministicPermutation) {
  const Workload workload = Generate(SmallSpec()).value();
  std::vector<Event> shuffled = workload.events;
  ShuffleEvents(&shuffled, 99);
  ASSERT_EQ(shuffled.size(), workload.events.size());
  // Same multiset of events.
  auto key = [](const Event& e) { return e.ToString(); };
  std::multiset<std::string> original;
  std::multiset<std::string> after;
  for (const auto& e : workload.events) original.insert(key(e));
  for (const auto& e : shuffled) after.insert(key(e));
  EXPECT_EQ(original, after);
  // Deterministic.
  std::vector<Event> shuffled2 = workload.events;
  ShuffleEvents(&shuffled2, 99);
  EXPECT_EQ(shuffled, shuffled2);
  // Actually permutes.
  EXPECT_FALSE(shuffled == workload.events);
}

}  // namespace
}  // namespace apcm::workload
