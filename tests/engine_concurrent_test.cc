// Concurrency suite for the snapshot-swapped StreamEngine: N publisher
// threads plus a mutator thread doing add/remove/SetPriority churn, with the
// delivery contract (exactly-once, no lost events) asserted under load and
// post-quiesce results checked against a single-threaded reference run.
// These tests are the ones scripts/check.sh --tsan replays under
// ThreadSanitizer, so they are sized to stay fast under ~20x slowdown.

#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/exposition.h"
#include "src/engine/report.h"
#include "src/workload/generator.h"
#include "tests/matcher_test_util.h"

namespace apcm::engine {
namespace {

/// Thread-safe delivery recorder asserting exactly-once per event id.
struct ConcurrentDelivery {
  std::mutex mu;
  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  uint64_t duplicates = 0;

  StreamEngine::MatchCallback Callback() {
    return [this](uint64_t event_id,
                  const std::vector<SubscriptionId>& matches) {
      std::lock_guard<std::mutex> lock(mu);
      if (!by_event.emplace(event_id, matches).second) duplicates++;
    };
  }
};

EngineOptions ConcurrentOptions() {
  EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 16;
  options.osr.window_size = 0;
  options.buffer_capacity = 32;
  return options;
}

workload::WorkloadSpec ConcurrentSpec(uint64_t seed, uint32_t num_events) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 120;
  spec.num_events = num_events;
  spec.num_attributes = 20;
  spec.domain_min = 0;
  spec.domain_max = 500;
  spec.min_predicates = 1;
  spec.max_predicates = 4;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 8;
  spec.seeded_event_fraction = 0.5;
  return spec;
}

/// Publishes events[begin, end) and records the engine-assigned id of each,
/// so per-event results can be compared by trace position.
void PublishSlice(StreamEngine* engine, const std::vector<Event>& events,
                  size_t begin, size_t end, std::vector<uint64_t>* ids) {
  for (size_t i = begin; i < end; ++i) {
    (*ids)[i] = engine->Publish(events[i]);
  }
}

TEST(EngineConcurrentTest, PublishersAgreeWithSequentialReference) {
  const auto workload = workload::Generate(ConcurrentSpec(1, 400)).value();
  constexpr size_t kPublishers = 4;

  // Sequential reference: one thread, same subscriptions, same events.
  std::map<uint64_t, std::vector<SubscriptionId>> reference;
  {
    ConcurrentDelivery delivery;
    StreamEngine engine(ConcurrentOptions(), delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    std::vector<uint64_t> ids(workload.events.size());
    PublishSlice(&engine, workload.events, 0, workload.events.size(), &ids);
    engine.Flush();
    for (size_t i = 0; i < workload.events.size(); ++i) {
      reference[i] = delivery.by_event.at(ids[i]);
    }
  }

  ConcurrentDelivery delivery;
  StreamEngine engine(ConcurrentOptions(), delivery.Callback());
  for (const auto& sub : workload.subscriptions) {
    ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
  }
  std::vector<uint64_t> ids(workload.events.size());
  std::vector<std::thread> publishers;
  const size_t slice = workload.events.size() / kPublishers;
  for (size_t p = 0; p < kPublishers; ++p) {
    const size_t begin = p * slice;
    const size_t end =
        p + 1 == kPublishers ? workload.events.size() : begin + slice;
    publishers.emplace_back(PublishSlice, &engine, std::cref(workload.events),
                            begin, end, &ids);
  }
  for (auto& t : publishers) t.join();
  engine.Flush();

  EXPECT_EQ(delivery.duplicates, 0u);
  ASSERT_EQ(delivery.by_event.size(), workload.events.size());
  EXPECT_EQ(engine.stats().events_published, workload.events.size());
  EXPECT_EQ(engine.stats().events_processed, workload.events.size());
  // Matching is per-event deterministic, so every event's match set must
  // equal the sequential run's regardless of round boundaries.
  for (size_t i = 0; i < workload.events.size(); ++i) {
    ASSERT_EQ(delivery.by_event.at(ids[i]), reference.at(i))
        << "event " << i;
  }
}

/// Deterministic mutator script: only the mutator thread adds/removes, so
/// engine-assigned subscription ids are identical across runs and the final
/// live set can be reproduced single-threaded.
void RunMutatorScript(StreamEngine* engine, const workload::Workload& extra) {
  std::vector<SubscriptionId> added;
  for (size_t i = 0; i < extra.subscriptions.size(); ++i) {
    auto id = engine->AddSubscription(extra.subscriptions[i].predicates());
    ASSERT_TRUE(id.ok());
    added.push_back(*id);
    if (i % 2 == 1) {
      ASSERT_TRUE(engine->RemoveSubscription(added[i - 1]).ok());
    }
    // Priority churn on a subscription that is never removed.
    ASSERT_TRUE(
        engine->SetPriority(added[i], static_cast<double>(i % 7)).ok());
  }
}

TEST(EngineConcurrentTest, MutatorChurnKeepsDeliveryExactlyOnce) {
  const auto workload = workload::Generate(ConcurrentSpec(2, 300)).value();
  // Subscriptions the mutator feeds in while publishers run.
  auto churn_spec = ConcurrentSpec(3, 1);
  churn_spec.num_subscriptions = 60;
  const auto churn = workload::Generate(churn_spec).value();
  // A second trace published after quiesce, compared exactly.
  const auto probe = workload::Generate(ConcurrentSpec(4, 100)).value();
  constexpr size_t kPublishers = 3;

  auto run = [&](bool concurrent, std::map<uint64_t, std::vector<SubscriptionId>>*
                                      probe_results) {
    ConcurrentDelivery delivery;
    StreamEngine engine(ConcurrentOptions(), delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    std::vector<uint64_t> ids(workload.events.size());
    if (concurrent) {
      std::vector<std::thread> threads;
      const size_t slice = workload.events.size() / kPublishers;
      for (size_t p = 0; p < kPublishers; ++p) {
        const size_t begin = p * slice;
        const size_t end =
            p + 1 == kPublishers ? workload.events.size() : begin + slice;
        threads.emplace_back(PublishSlice, &engine,
                             std::cref(workload.events), begin, end, &ids);
      }
      threads.emplace_back(RunMutatorScript, &engine, std::cref(churn));
      for (auto& t : threads) t.join();
    } else {
      RunMutatorScript(&engine, churn);
      PublishSlice(&engine, workload.events, 0, workload.events.size(), &ids);
    }
    engine.Flush();
    ASSERT_EQ(delivery.duplicates, 0u);
    ASSERT_EQ(delivery.by_event.size(), workload.events.size());

    // Quiesced: the probe trace must now match deterministically.
    std::vector<uint64_t> probe_ids(probe.events.size());
    PublishSlice(&engine, probe.events, 0, probe.events.size(), &probe_ids);
    engine.Flush();
    for (size_t i = 0; i < probe.events.size(); ++i) {
      (*probe_results)[i] = delivery.by_event.at(probe_ids[i]);
    }
  };

  std::map<uint64_t, std::vector<SubscriptionId>> concurrent_probe;
  std::map<uint64_t, std::vector<SubscriptionId>> reference_probe;
  run(/*concurrent=*/true, &concurrent_probe);
  run(/*concurrent=*/false, &reference_probe);
  // Post-quiesce, the concurrent run's live set equals the reference run's
  // (same mutator script, deterministic ids), so probe results must agree.
  EXPECT_EQ(concurrent_probe, reference_probe);
}

TEST(EngineConcurrentTest, BlockingBackpressureDeliversEverything) {
  const auto workload = workload::Generate(ConcurrentSpec(5, 600)).value();
  EngineOptions options = ConcurrentOptions();
  options.buffer_capacity = 16;
  options.queue_capacity = 16;  // tiny: publishers constantly hit the bound
  options.backpressure = BackpressurePolicy::kBlock;
  ConcurrentDelivery delivery;
  StreamEngine engine(options, delivery.Callback());
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        engine.AddSubscription(workload.subscriptions[i].predicates()).ok());
  }
  std::vector<uint64_t> ids(workload.events.size());
  std::vector<std::thread> publishers;
  constexpr size_t kPublishers = 4;
  const size_t slice = workload.events.size() / kPublishers;
  for (size_t p = 0; p < kPublishers; ++p) {
    publishers.emplace_back(PublishSlice, &engine, std::cref(workload.events),
                            p * slice, (p + 1) * slice, &ids);
  }
  for (auto& t : publishers) t.join();
  engine.Flush();
  EXPECT_EQ(delivery.duplicates, 0u);
  EXPECT_EQ(delivery.by_event.size(), workload.events.size());
  EXPECT_EQ(engine.stats().events_processed, workload.events.size());
}

// Rejection needs a full queue with no thread able to drain it: a publisher
// thread is parked inside the match callback (holding the processing lock)
// while the main thread refills the queue to capacity — the next TryPublish
// must fail fast with kResourceExhausted rather than block.
TEST(EngineConcurrentTest, RejectPolicyReturnsResourceExhausted) {
  EngineOptions options = ConcurrentOptions();
  options.batch_size = 8;
  options.buffer_capacity = 8;
  options.queue_capacity = 8;
  options.backpressure = BackpressurePolicy::kReject;

  std::atomic<bool> in_callback{false};
  std::atomic<bool> release{false};
  ConcurrentDelivery delivery;
  auto record = delivery.Callback();
  StreamEngine engine(
      options, [&](uint64_t id, const std::vector<SubscriptionId>& matches) {
        in_callback.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        record(id, matches);
      });
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());

  // The 8th publish fills the buffer and runs the round inline; its first
  // callback parks this thread with the processing lock held.
  std::thread publisher([&] {
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(engine.TryPublish(Event::Create({{0, i}}).value()).ok());
    }
  });
  while (!in_callback.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Processor stuck: refill the queue to capacity, then overflow it.
  for (int i = 8; i < 16; ++i) {
    ASSERT_TRUE(engine.TryPublish(Event::Create({{0, i}}).value()).ok());
  }
  auto rejected = engine.TryPublish(Event::Create({{0, 99}}).value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().publishes_rejected, 1u);

  release.store(true, std::memory_order_release);
  publisher.join();

  engine.Flush();  // drains the queue; publishing works again
  EXPECT_TRUE(engine.TryPublish(Event::Create({{0, 100}}).value()).ok());
  engine.Flush();
  std::lock_guard<std::mutex> lock(delivery.mu);
  EXPECT_EQ(delivery.by_event.size(), 17u);
  EXPECT_EQ(delivery.duplicates, 0u);
}

// The observability acceptance test: 4 publisher threads drive a live engine
// while a scraper thread continuously renders Prometheus text, the JSON
// exposition, the operations report, the trace dump, and reads stats() —
// exactly what a monitoring agent hitting /metrics does. Under
// scripts/check.sh --tsan this must be race-free.
TEST(EngineConcurrentTest, ScraperRacesPublishersCleanly) {
  const auto workload = workload::Generate(ConcurrentSpec(8, 400)).value();
  constexpr size_t kPublishers = 4;
  ConcurrentDelivery delivery;
  StreamEngine engine(ConcurrentOptions(), delivery.Callback());
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        engine.AddSubscription(workload.subscriptions[i].predicates()).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<uint64_t> ids(workload.events.size());
  std::vector<std::thread> threads;
  const size_t slice = workload.events.size() / kPublishers;
  for (size_t p = 0; p < kPublishers; ++p) {
    threads.emplace_back(PublishSlice, &engine, std::cref(workload.events),
                         p * slice, (p + 1) * slice, &ids);
  }
  std::thread scraper([&] {
    uint64_t scrapes = 0;
    uint64_t last_published = 0;
    while (!stop.load(std::memory_order_acquire) || scrapes == 0) {
      const std::string text = RenderPrometheus(engine.metrics_registry());
      EXPECT_NE(text.find("apcm_events_published_total"), std::string::npos);
      const std::string json = RenderMetricsJson(engine.metrics_registry());
      EXPECT_NE(json.find("\"metrics\""), std::string::npos);
      const std::string report = RenderReport(engine);
      EXPECT_NE(report.find("subscriptions (live)"), std::string::npos);
      (void)engine.trace().ToJson();
      // Live stats reads: atomics and sharded-histogram snapshots.
      const EngineStats& stats = engine.stats();
      const uint64_t published = stats.events_published;
      EXPECT_GE(published, last_published);  // counters are monotonic
      last_published = published;
      (void)stats.batch_latency_ns.Snapshot();
      (void)engine.queue_depth();
      (void)engine.rebuild_inflight();
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  engine.Flush();

  EXPECT_EQ(delivery.duplicates, 0u);
  EXPECT_EQ(delivery.by_event.size(), workload.events.size());
  // Post-quiesce, registry counters agree with stats().
  const std::string text = RenderPrometheus(engine.metrics_registry());
  EXPECT_NE(text.find("apcm_events_published_total " +
                      std::to_string(workload.events.size())),
            std::string::npos)
      << text;
}

/// ConcurrentOptions with a sharded backend: 4 shards on a 2-thread fan-out
/// pool, sized (like everything here) to stay fast under TSan.
EngineOptions ShardedConcurrentOptions() {
  EngineOptions options = ConcurrentOptions();
  options.num_shards = 4;
  options.shard_threads = 2;
  return options;
}

// The sharded backend under concurrent publishers: fan-out pool, per-shard
// merge, and snapshot swaps all racing, checked against a sequential run.
TEST(EngineConcurrentTest, ShardedPublishersAgreeWithSequentialReference) {
  const auto workload = workload::Generate(ConcurrentSpec(9, 400)).value();
  constexpr size_t kPublishers = 4;

  std::map<uint64_t, std::vector<SubscriptionId>> reference;
  {
    ConcurrentDelivery delivery;
    StreamEngine engine(ShardedConcurrentOptions(), delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    std::vector<uint64_t> ids(workload.events.size());
    PublishSlice(&engine, workload.events, 0, workload.events.size(), &ids);
    engine.Flush();
    for (size_t i = 0; i < workload.events.size(); ++i) {
      reference[i] = delivery.by_event.at(ids[i]);
    }
  }

  ConcurrentDelivery delivery;
  StreamEngine engine(ShardedConcurrentOptions(), delivery.Callback());
  for (const auto& sub : workload.subscriptions) {
    ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
  }
  std::vector<uint64_t> ids(workload.events.size());
  std::vector<std::thread> publishers;
  const size_t slice = workload.events.size() / kPublishers;
  for (size_t p = 0; p < kPublishers; ++p) {
    const size_t begin = p * slice;
    const size_t end =
        p + 1 == kPublishers ? workload.events.size() : begin + slice;
    publishers.emplace_back(PublishSlice, &engine, std::cref(workload.events),
                            begin, end, &ids);
  }
  for (auto& t : publishers) t.join();
  engine.Flush();

  EXPECT_EQ(delivery.duplicates, 0u);
  ASSERT_EQ(delivery.by_event.size(), workload.events.size());
  for (size_t i = 0; i < workload.events.size(); ++i) {
    ASSERT_EQ(delivery.by_event.at(ids[i]), reference.at(i)) << "event " << i;
  }
}

// Mutator churn against the sharded backend: per-shard delta routing and
// per-shard background rebuilds racing publishers, with exactly-once
// delivery and a deterministic post-quiesce probe.
TEST(EngineConcurrentTest, ShardedMutatorChurnKeepsDeliveryExactlyOnce) {
  const auto workload = workload::Generate(ConcurrentSpec(10, 300)).value();
  auto churn_spec = ConcurrentSpec(11, 1);
  churn_spec.num_subscriptions = 60;
  const auto churn = workload::Generate(churn_spec).value();
  const auto probe = workload::Generate(ConcurrentSpec(12, 100)).value();
  constexpr size_t kPublishers = 3;

  auto run = [&](bool concurrent,
                 std::map<uint64_t, std::vector<SubscriptionId>>*
                     probe_results) {
    ConcurrentDelivery delivery;
    StreamEngine engine(ShardedConcurrentOptions(), delivery.Callback());
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    std::vector<uint64_t> ids(workload.events.size());
    if (concurrent) {
      std::vector<std::thread> threads;
      const size_t slice = workload.events.size() / kPublishers;
      for (size_t p = 0; p < kPublishers; ++p) {
        const size_t begin = p * slice;
        const size_t end =
            p + 1 == kPublishers ? workload.events.size() : begin + slice;
        threads.emplace_back(PublishSlice, &engine,
                             std::cref(workload.events), begin, end, &ids);
      }
      threads.emplace_back(RunMutatorScript, &engine, std::cref(churn));
      for (auto& t : threads) t.join();
    } else {
      RunMutatorScript(&engine, churn);
      PublishSlice(&engine, workload.events, 0, workload.events.size(), &ids);
    }
    engine.Flush();
    ASSERT_EQ(delivery.duplicates, 0u);
    ASSERT_EQ(delivery.by_event.size(), workload.events.size());

    std::vector<uint64_t> probe_ids(probe.events.size());
    PublishSlice(&engine, probe.events, 0, probe.events.size(), &probe_ids);
    engine.Flush();
    for (size_t i = 0; i < probe.events.size(); ++i) {
      (*probe_results)[i] = delivery.by_event.at(probe_ids[i]);
    }
  };

  std::map<uint64_t, std::vector<SubscriptionId>> concurrent_probe;
  std::map<uint64_t, std::vector<SubscriptionId>> reference_probe;
  run(/*concurrent=*/true, &concurrent_probe);
  run(/*concurrent=*/false, &reference_probe);
  EXPECT_EQ(concurrent_probe, reference_probe);
}

// The rebuild-and-wait path (non-PCM matchers rebuild on every change) under
// concurrent churn: exercises background builds racing publishers.
TEST(EngineConcurrentTest, NonPcmMatcherSurvivesConcurrentChurn) {
  const auto workload = workload::Generate(ConcurrentSpec(6, 200)).value();
  auto churn_spec = ConcurrentSpec(7, 1);
  churn_spec.num_subscriptions = 20;
  const auto churn = workload::Generate(churn_spec).value();
  EngineOptions options = ConcurrentOptions();
  options.kind = MatcherKind::kCounting;
  options.matcher.domain = {0, 500};
  ConcurrentDelivery delivery;
  StreamEngine engine(options, delivery.Callback());
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        engine.AddSubscription(workload.subscriptions[i].predicates()).ok());
  }
  std::vector<uint64_t> ids(workload.events.size());
  std::vector<std::thread> threads;
  constexpr size_t kPublishers = 2;
  const size_t slice = workload.events.size() / kPublishers;
  for (size_t p = 0; p < kPublishers; ++p) {
    threads.emplace_back(PublishSlice, &engine, std::cref(workload.events),
                         p * slice, (p + 1) * slice, &ids);
  }
  threads.emplace_back(RunMutatorScript, &engine, std::cref(churn));
  for (auto& t : threads) t.join();
  engine.Flush();
  EXPECT_EQ(delivery.duplicates, 0u);
  EXPECT_EQ(delivery.by_event.size(), workload.events.size());
}

}  // namespace
}  // namespace apcm::engine
