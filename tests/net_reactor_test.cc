// Differential oracle and edge-trigger corner suite for the epoll reactor
// front-end (src/net/reactor.h, DESIGN.md §3.14). The reactor is validated
// against the pre-reactor single-thread poll() loop (`io_threads = 0`), which
// this suite keeps alive as the behavioural baseline: the same workload must
// produce identical per-subscriber MATCH digests and identical ACK/ERROR
// status sequences whichever front-end serves it, at every thread count.
//
// The failpoint scenarios (spurious wakeups, phantom readability forcing the
// EAGAIN-after-readable path, torn gathered writes) GTEST_SKIP() at runtime
// unless the binary was built with -DAPCM_FAILPOINTS=ON.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/metrics.h"
#include "src/base/rng.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace apcm {
namespace {

using net::Client;
using net::EventServer;
using net::EventServerOptions;
using net::ValidateEventServerOptions;

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

int64_t GaugeValue(const MetricsRegistry& registry, const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.gauge_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

/// FNV-1a over a match-set map (publish index -> ascending client sub ids);
/// depends only on logical content, never on delivery interleaving.
uint64_t HashMatchSets(const std::map<uint64_t, std::vector<uint64_t>>& sets) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [key, subs] : sets) {
    mix(key);
    mix(subs.size());
    for (uint64_t s : subs) mix(s);
  }
  return h;
}

/// Deterministic workload: random boolean expressions (the net_server_test
/// generator shape) and random events over attributes a0..a7.
struct Workload {
  std::vector<std::string> expressions;
  std::vector<Event> events;
};

Workload MakeWorkload(uint64_t seed, int subs, int num_events) {
  Rng rng(seed);
  auto make_conjunction = [&rng]() {
    static const char* kOps[] = {">=", "<=", ">", "<", "=", "!="};
    std::string text;
    std::set<uint64_t> used;
    const int preds = 1 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < preds; ++p) {
      uint64_t attr = rng.Uniform(8);
      if (!used.insert(attr).second) continue;
      if (!text.empty()) text += " and ";
      text += "a" + std::to_string(attr) + " " + kOps[rng.Uniform(6)] + " " +
              std::to_string(rng.Uniform(100));
    }
    return text;
  };
  Workload w;
  for (int i = 0; i < subs; ++i) {
    std::string text = make_conjunction();
    if (rng.Bernoulli(0.3)) text += " or " + make_conjunction();
    w.expressions.push_back(std::move(text));
  }
  for (int i = 0; i < num_events; ++i) {
    std::vector<Event::Entry> entries;
    uint64_t attr = rng.Uniform(3);
    while (attr < 8) {
      entries.push_back({static_cast<AttributeId>(attr),
                         static_cast<int64_t>(rng.Uniform(100))});
      attr += 1 + rng.Uniform(4);
    }
    w.events.push_back(Event::FromSorted(std::move(entries)));
  }
  return w;
}

EventServerOptions ServerOptions(int io_threads, bool reuseport = true) {
  EventServerOptions options;
  options.engine.batch_size = 16;
  options.engine.osr.window_size = 0;
  options.engine.buffer_capacity = 16;
  options.engine.matcher.pcm.clustering.cluster_size = 32;
  options.io_threads = io_threads;
  options.reuseport_accept = reuseport;
  return options;
}

/// Everything observable from one front-end run of a workload; differential
/// equality of two RunResults is the oracle assertion.
struct RunResult {
  /// One digest per subscriber client: publish index -> its matched client
  /// sub ids.
  std::vector<uint64_t> subscriber_digests;
  /// Server-assigned event id per ACKed publish, in publish order.
  std::vector<uint64_t> publish_acks;
  /// StatusCode of every control operation (subscribes, the deliberate
  /// duplicate / parse-error / unknown-unsubscribe probes), in issue order.
  /// This is the ACK/ERROR sequence: an ACK records kOk, an ERROR records
  /// the carried code.
  std::vector<int> control_codes;
  bool ok = false;
};

/// Runs `workload` through a server with the given I/O front-end.
/// Expressions are dealt round-robin to `num_subscribers` subscriber
/// connections (expression i -> subscriber i % num_subscribers, client sub
/// id i), every event is published on a separate connection, and Stop()
/// drains — so each subscriber's received stream is complete, not a
/// timeout-bounded prefix.
RunResult RunWorkload(int io_threads, const Workload& workload,
                      int num_subscribers) {
  RunResult result;
  EventServer server(ServerOptions(io_threads));
  Status started = server.Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  if (!started.ok()) return result;

  std::vector<std::unique_ptr<Client>> subscribers;
  for (int s = 0; s < num_subscribers; ++s) {
    subscribers.push_back(std::make_unique<Client>());
    Status st = subscribers.back()->Connect("127.0.0.1", server.port());
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) return result;
  }

  auto record = [&result](const Status& status) {
    result.control_codes.push_back(static_cast<int>(status.code()));
  };
  for (size_t i = 0; i < workload.expressions.size(); ++i) {
    Client& owner = *subscribers[i % num_subscribers];
    record(owner.Subscribe(i, workload.expressions[i]));
  }
  // Deliberate ERROR probes, identical in every mode: a duplicate sub id, an
  // unparsable expression, an unsubscribe of an id never registered.
  for (int s = 0; s < num_subscribers; ++s) {
    Client& owner = *subscribers[static_cast<size_t>(s)];
    record(owner.Subscribe(static_cast<uint64_t>(s), "a0 >= 0"));
    record(owner.Subscribe(100000 + static_cast<uint64_t>(s), "a0 >><< 1"));
    record(owner.Unsubscribe(200000 + static_cast<uint64_t>(s)));
  }

  Client publisher;
  Status pst = publisher.Connect("127.0.0.1", server.port());
  EXPECT_TRUE(pst.ok()) << pst.ToString();
  if (!pst.ok()) return result;
  for (const Event& event : workload.events) {
    auto id = publisher.Publish(event);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return result;
    result.publish_acks.push_back(*id);
  }

  // Stop() drains: every accepted event is matched and every owed MATCH
  // frame is flushed before sockets close, so reading to the close marker
  // yields each subscriber's complete stream.
  server.Stop();

  std::map<uint64_t, uint64_t> publish_index;  // event id -> publish index
  for (size_t k = 0; k < result.publish_acks.size(); ++k) {
    publish_index[result.publish_acks[k]] = k;
  }
  for (auto& subscriber : subscribers) {
    std::map<uint64_t, std::vector<uint64_t>> rows;
    for (;;) {
      auto match = subscriber->PollMatch(/*timeout_ms=*/2000);
      if (!match.ok() || !match->has_value()) break;
      auto it = publish_index.find((*match)->event_id);
      EXPECT_NE(it, publish_index.end())
          << "MATCH for an event id never ACKed: " << (*match)->event_id;
      if (it == publish_index.end()) continue;
      std::vector<uint64_t>& row = rows[it->second];
      row.insert(row.end(), (*match)->sub_ids.begin(),
                 (*match)->sub_ids.end());
    }
    for (auto& [index, row] : rows) std::sort(row.begin(), row.end());
    result.subscriber_digests.push_back(HashMatchSets(rows));
  }
  result.ok = true;
  return result;
}

void ExpectSameRun(const RunResult& baseline, const RunResult& candidate,
                   const std::string& what) {
  ASSERT_TRUE(baseline.ok);
  ASSERT_TRUE(candidate.ok) << what;
  EXPECT_EQ(candidate.subscriber_digests, baseline.subscriber_digests)
      << what << ": per-subscriber MATCH digests diverged";
  EXPECT_EQ(candidate.publish_acks, baseline.publish_acks)
      << what << ": publish ACK sequence diverged";
  EXPECT_EQ(candidate.control_codes, baseline.control_codes)
      << what << ": ACK/ERROR status sequence diverged";
}

// ---------------------------------------------------------------------------
// The differential oracle: the legacy poll loop (io_threads = 0) is ground
// truth; the reactor at 1, 2, and 4 I/O threads must be indistinguishable.
// ---------------------------------------------------------------------------

TEST(NetReactorTest, DifferentialOracleAcrossIoThreadModes) {
  const Workload workload =
      MakeWorkload(/*seed=*/2026, /*subs=*/24, /*num_events=*/120);
  const RunResult baseline = RunWorkload(/*io_threads=*/0, workload,
                                         /*num_subscribers=*/3);
  ASSERT_TRUE(baseline.ok);
  // The probes must actually have produced a mixed ACK/ERROR sequence —
  // an all-kOk run would make the equality below vacuous.
  EXPECT_TRUE(std::any_of(baseline.control_codes.begin(),
                          baseline.control_codes.end(),
                          [](int code) { return code != 0; }));

  for (int io_threads : {1, 2, 4}) {
    SCOPED_TRACE("io_threads=" + std::to_string(io_threads));
    const RunResult run = RunWorkload(io_threads, workload,
                                      /*num_subscribers=*/3);
    ExpectSameRun(baseline, run,
                  "reactor io_threads=" + std::to_string(io_threads));
  }
}

// ---------------------------------------------------------------------------
// Reactor plumbing: metrics surface, accept-sharding fallback, restart.
// ---------------------------------------------------------------------------

TEST(NetReactorTest, ReactorMetricsAreRegisteredAndLive) {
  EventServer server(ServerOptions(/*io_threads=*/2));
  ASSERT_TRUE(server.Start().ok());
  const MetricsRegistry& registry = server.engine().metrics_registry();
  EXPECT_EQ(GaugeValue(registry, "apcm_net_io_threads"), 2);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Subscribe(0, "a0 >= 0").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.Publish(Event::Create({{0, i}}).value()).ok());
  }
  for (int i = 0; i < 8; ++i) {
    auto match = client.PollMatch(/*timeout_ms=*/10000);
    ASSERT_TRUE(match.ok() && match->has_value());
  }
  EXPECT_GT(CounterValue(registry, "apcm_net_wakeups_total"), 0u);
  EXPECT_GT(CounterValue(registry, "apcm_net_batched_writes_total"), 0u);
  server.Stop();
  EXPECT_EQ(GaugeValue(registry, "apcm_net_io_threads"), 0);
}

TEST(NetReactorTest, ReuseportShardingIsActiveWhenRequested) {
  EventServer server(ServerOptions(/*io_threads=*/2, /*reuseport=*/true));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.reuseport_active());
  // Connections spread across per-thread listen sockets still serve one
  // coherent protocol surface.
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<Client>());
    ASSERT_TRUE(clients.back()->Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(clients.back()->Ping().ok());
  }
  server.Stop();
}

TEST(NetReactorTest, SingleAcceptorFallbackDealsConnectionsRoundRobin) {
  // reuseport disabled: thread 0 owns the only listening socket and adopts
  // connections round-robin across all three threads. Every connection must
  // be fully served wherever it landed.
  EventServer server(ServerOptions(/*io_threads=*/3, /*reuseport=*/false));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.reuseport_active());

  std::vector<std::unique_ptr<Client>> subscribers;
  for (int i = 0; i < 6; ++i) {
    subscribers.push_back(std::make_unique<Client>());
    ASSERT_TRUE(subscribers.back()->Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(subscribers.back()->Subscribe(0, "a0 >= 0").ok());
  }
  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(publisher.Publish(Event::Create({{0, i}}).value()).ok());
  }
  for (auto& subscriber : subscribers) {
    for (int i = 0; i < 5; ++i) {
      auto match = subscriber->PollMatch(/*timeout_ms=*/10000);
      ASSERT_TRUE(match.ok() && match->has_value());
      EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{0}));
    }
  }
  server.Stop();
}

TEST(NetReactorTest, LegacyModeReportsNoReuseport) {
  EventServer server(ServerOptions(/*io_threads=*/0));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.reuseport_active());
  server.Stop();
}

TEST(NetReactorTest, RestartOnFreshPortServesTraffic) {
  EventServer first(ServerOptions(/*io_threads=*/2));
  ASSERT_TRUE(first.Start().ok());
  EXPECT_EQ(first.Start().code(), StatusCode::kInvalidArgument);
  first.Stop();
  first.Stop();  // idempotent

  EventServer second(ServerOptions(/*io_threads=*/2));
  ASSERT_TRUE(second.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", second.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  second.Stop();
}

TEST(NetReactorTest, ValidateOptionsRejectsBadConfigs) {
  EXPECT_TRUE(ValidateEventServerOptions(ServerOptions(0)).ok());
  EXPECT_TRUE(ValidateEventServerOptions(ServerOptions(1)).ok());
  EXPECT_TRUE(ValidateEventServerOptions(ServerOptions(64)).ok());
  EXPECT_EQ(ValidateEventServerOptions(ServerOptions(-1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateEventServerOptions(ServerOptions(65)).code(),
            StatusCode::kInvalidArgument);

  EventServerOptions bad_frame = ServerOptions(1);
  bad_frame.max_frame_bytes = 0;
  EXPECT_EQ(ValidateEventServerOptions(bad_frame).code(),
            StatusCode::kInvalidArgument);

  // Start() refuses with the same status instead of half-initializing.
  EventServer server(ServerOptions(65));
  EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Edge-trigger corner coverage via armed failpoints. Each scenario perturbs
// the reactor's readiness bookkeeping (the exact seams where an
// edge-triggered loop loses frames if its level flags are wrong) and then
// demands byte-for-byte agreement with the unperturbed baseline.
// ---------------------------------------------------------------------------

class NetReactorFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out; build with -DAPCM_FAILPOINTS=ON";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(NetReactorFailpointTest, SpuriousWakeupsDoNotPerturbStreams) {
  const Workload workload =
      MakeWorkload(/*seed=*/404, /*subs=*/12, /*num_events=*/60);
  const RunResult baseline = RunWorkload(/*io_threads=*/0, workload,
                                         /*num_subscribers=*/2);

  const uint64_t hits0 = failpoint::Hits("net.reactor.wakeup");
  ASSERT_TRUE(failpoint::Configure("net.reactor.wakeup", "25%return@97").ok());
  const RunResult run = RunWorkload(/*io_threads=*/2, workload,
                                    /*num_subscribers=*/2);
  EXPECT_GT(failpoint::Hits("net.reactor.wakeup"), hits0);
  ExpectSameRun(baseline, run, "spurious wakeups");
}

TEST_F(NetReactorFailpointTest, EagainAfterReadableLeavesNoFrameBehind) {
  // Phantom readability marks every connection read-ready with no bytes
  // behind it: recv must meet EAGAIN, set the level flag back down, and
  // *still* pick up real bytes that arrive afterwards (the classic
  // edge-trigger lost-wakeup bug this flag discipline exists to prevent).
  const Workload workload =
      MakeWorkload(/*seed=*/405, /*subs=*/12, /*num_events=*/60);
  const RunResult baseline = RunWorkload(/*io_threads=*/0, workload,
                                         /*num_subscribers=*/2);

  const uint64_t hits0 = failpoint::Hits("net.reactor.readable");
  ASSERT_TRUE(
      failpoint::Configure("net.reactor.readable", "20%return@211").ok());
  const RunResult run = RunWorkload(/*io_threads=*/2, workload,
                                    /*num_subscribers=*/2);
  EXPECT_GT(failpoint::Hits("net.reactor.readable"), hits0);
  ExpectSameRun(baseline, run, "EAGAIN after readable");
}

TEST_F(NetReactorFailpointTest, ShortWritevMidFrameReplaysTheTail) {
  // Torn gathered writes: the writev byte count is clamped so MATCH frames
  // are split mid-frame across syscalls; the outbox must replay the tail in
  // order, never duplicating or dropping a byte.
  const Workload workload =
      MakeWorkload(/*seed=*/406, /*subs=*/12, /*num_events=*/60);
  const RunResult baseline = RunWorkload(/*io_threads=*/0, workload,
                                         /*num_subscribers=*/2);

  const uint64_t hits0 = failpoint::Hits("net.reactor.writev.short");
  ASSERT_TRUE(
      failpoint::Configure("net.reactor.writev.short", "35%return(7)@1042")
          .ok());
  const RunResult run = RunWorkload(/*io_threads=*/2, workload,
                                    /*num_subscribers=*/2);
  EXPECT_GT(failpoint::Hits("net.reactor.writev.short"), hits0);
  ExpectSameRun(baseline, run, "short writev mid-frame");
}

TEST_F(NetReactorFailpointTest, AcceptFailureStallsOnlyNewConnections) {
  EventServer server(ServerOptions(/*io_threads=*/2));
  ASSERT_TRUE(server.Start().ok());

  Client established;
  ASSERT_TRUE(established.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(established.Ping().ok());

  ASSERT_TRUE(failpoint::Configure("net.reactor.accept", "return").ok());
  Client stalled;
  // connect() succeeds into the kernel backlog but no reactor thread
  // accepts; the bounded Ping times out and fails the connection.
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  const Status ping = stalled.Ping(/*timeout_ms=*/500);
  EXPECT_EQ(ping.code(), StatusCode::kIOError) << ping.ToString();
  EXPECT_GT(failpoint::Hits("net.reactor.accept"), 0u);

  // Established connections never noticed, and connectivity heals the
  // moment the point is disarmed (the pending backlog is re-reported).
  ASSERT_TRUE(established.Ping().ok());
  failpoint::DisarmAll();
  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Armed-failpoint soak: all three reactor seams shredded at once while a
// catch-all subscriber audits that every ACKed publish produces exactly its
// match. Runtime is APCM_NET_SOAK_SECONDS (default 2; CI's net-stress job
// runs it at 30).
// ---------------------------------------------------------------------------

TEST_F(NetReactorFailpointTest, ArmedFailpointSoakLosesNothing) {
  int soak_seconds = 2;
  if (const char* env = std::getenv("APCM_NET_SOAK_SECONDS")) {
    soak_seconds = std::max(1, std::atoi(env));
  }
  ASSERT_TRUE(failpoint::ConfigureFromSpec(
                  "net.reactor.wakeup=10%return@1,"
                  "net.reactor.readable=10%return@3,"
                  "net.reactor.writev.short=25%return(9)@5")
                  .ok());

  EventServer server(ServerOptions(/*io_threads=*/4));
  ASSERT_TRUE(server.Start().ok());

  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(subscriber.Subscribe(0, "a0 >= 0").ok());
  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(soak_seconds);
  uint64_t published = 0;
  std::set<uint64_t> acked;
  while (std::chrono::steady_clock::now() < deadline) {
    auto id = publisher.Publish(
        Event::Create({{0, static_cast<int64_t>(published)}}).value());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    acked.insert(*id);
    ++published;
  }
  ASSERT_GT(published, 0u);

  // Stop() drains, so the subscriber's stream is complete: exactly one
  // MATCH (for sub 0) per ACKed event, nothing lost, nothing duplicated.
  server.Stop();
  std::set<uint64_t> matched;
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/2000);
    if (!match.ok() || !match->has_value()) break;
    EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{0}));
    EXPECT_TRUE(matched.insert((*match)->event_id).second)
        << "duplicate MATCH for event " << (*match)->event_id;
  }
  EXPECT_EQ(matched, acked);
  EXPECT_GT(failpoint::Hits("net.reactor.writev.short"), 0u);
}

}  // namespace
}  // namespace apcm
