// ShardedMatcher unit tests plus the per-shard rebuild isolation contract:
// churn concentrated on one shard must re-index only that shard, with the
// clean shards carried between snapshot generations untouched (asserted
// through the apcm_shard_rebuilds_total / _skipped_total counters).

#include "src/index/sharded.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/engine/engine.h"
#include "src/engine/exposition.h"
#include "src/engine/matcher_factory.h"
#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

using engine::CreateShardedMatcher;
using engine::MatcherConfig;
using engine::MatcherKind;
using index::ShardedMatcher;
using index::ShardedOptions;

TEST(ShardOfTest, StableInRangeAndBalanced) {
  constexpr uint32_t kShards = 16;
  std::vector<size_t> population(kShards, 0);
  for (SubscriptionId id = 0; id < 10'000; ++id) {
    const uint32_t s = ShardedMatcher::ShardOf(id, kShards);
    ASSERT_LT(s, kShards);
    // Stability: a pure function of (id, num_shards).
    ASSERT_EQ(s, ShardedMatcher::ShardOf(id, kShards));
    ++population[s];
  }
  // splitmix64 mixing: 10k consecutive ids spread close to uniformly
  // (625/shard expected; allow generous slack, no shard starved).
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(population[s], 400u) << "shard " << s;
    EXPECT_LT(population[s], 900u) << "shard " << s;
  }
  // Everything lands in shard 0 when there is only one shard.
  EXPECT_EQ(ShardedMatcher::ShardOf(12345, 1), 0u);
}

TEST(ShardedMatcherTest, NameReflectsShardCountAndInner) {
  ShardedOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  auto matcher = CreateShardedMatcher(MatcherKind::kAPcm, {}, options);
  EXPECT_EQ(matcher->Name(), "sharded-4(a-pcm)");
}

TEST(ShardedMatcherTest, BuildPartitionsEverySubscription) {
  const auto workload = workload::Generate(GnarlySpec(21)).value();
  ShardedOptions options;
  options.num_shards = 7;
  options.num_threads = 2;
  auto matcher = CreateShardedMatcher(MatcherKind::kAPcm, {}, options);
  matcher->Build(workload.subscriptions);
  size_t total = 0;
  for (uint32_t s = 0; s < matcher->num_shards(); ++s) {
    total += matcher->ShardSubscriptionCount(s);
  }
  EXPECT_EQ(total, workload.subscriptions.size());
  EXPECT_GT(matcher->MemoryBytes(), 0u);
}

TEST(ShardedMatcherTest, IncrementalOpsRouteToOwningShardAndStayCorrect) {
  const auto workload = workload::Generate(GnarlySpec(22)).value();
  ShardedOptions options;
  options.num_shards = 4;
  options.num_threads = 1;
  auto matcher = CreateShardedMatcher(MatcherKind::kAPcm, {}, options);
  ASSERT_TRUE(matcher->CanApplyDeltas());

  // Build over the first half; feed the second half incrementally, then
  // remove every third subscription; compare with scan over the live set.
  const size_t half = workload.subscriptions.size() / 2;
  std::vector<BooleanExpression> base(workload.subscriptions.begin(),
                                      workload.subscriptions.begin() + half);
  matcher->Build(base);
  for (size_t i = half; i < workload.subscriptions.size(); ++i) {
    matcher->AddIncremental(workload.subscriptions[i]);
  }
  std::set<SubscriptionId> removed;
  for (size_t i = 0; i < workload.subscriptions.size(); i += 3) {
    const SubscriptionId id = workload.subscriptions[i].id();
    ASSERT_TRUE(matcher->RemoveIncremental(id).ok());
    removed.insert(id);
  }
  EXPECT_GT(matcher->DeltaFraction(), 0.0);
  EXPECT_FALSE(matcher->RemoveIncremental(999'999).ok());

  workload::Workload live;
  for (const auto& sub : workload.subscriptions) {
    if (!removed.contains(sub.id())) live.subscriptions.push_back(sub);
  }
  live.events = workload.events;
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, live);
  std::vector<SubscriptionId> matches;
  for (size_t i = 0; i < live.events.size(); ++i) {
    matcher->Match(live.events[i], &matches);
    ASSERT_EQ(matches, expected[i]) << "event " << i;
  }
}

TEST(ShardedMatcherTest, NewGenerationSharesCleanShardsAndRebuildsDirtyOne) {
  const auto workload = workload::Generate(GnarlySpec(23)).value();
  constexpr uint32_t kShards = 4;
  ShardedOptions options;
  options.num_shards = kShards;
  options.num_threads = 1;
  auto matcher = CreateShardedMatcher(MatcherKind::kAPcm, {}, options);
  matcher->Build(workload.subscriptions);
  for (uint32_t s = 0; s < kShards; ++s) {
    matcher->set_shard_applied_seq(s, 10);
  }

  // Drop every subscription of shard 1 except the first two, then rebuild
  // only shard 1 in a successor generation.
  auto shard1_subs = std::make_shared<std::vector<BooleanExpression>>();
  for (const auto& sub : workload.subscriptions) {
    if (ShardedMatcher::ShardOf(sub.id(), kShards) == 1 &&
        shard1_subs->size() < 2) {
      shard1_subs->push_back(sub);
    }
  }
  std::unique_ptr<ShardedMatcher> gen = matcher->NewGeneration();
  gen->RebuildShard(1, shard1_subs, 20);
  EXPECT_EQ(gen->shard_applied_seq(1), 20u);
  EXPECT_EQ(gen->shard_applied_seq(0), 10u);  // shared watermark travels
  EXPECT_EQ(gen->ShardSubscriptionCount(1), 2u);
  EXPECT_EQ(gen->ShardSubscriptionCount(0),
            matcher->ShardSubscriptionCount(0));

  // The successor matches exactly the shrunken live set; scan is the oracle.
  std::set<SubscriptionId> live_ids;
  for (const auto& sub : *shard1_subs) live_ids.insert(sub.id());
  workload::Workload live;
  for (const auto& sub : workload.subscriptions) {
    if (ShardedMatcher::ShardOf(sub.id(), kShards) != 1 ||
        live_ids.contains(sub.id())) {
      live.subscriptions.push_back(sub);
    }
  }
  live.events = workload.events;
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, live);
  std::vector<SubscriptionId> matches;
  for (size_t i = 0; i < live.events.size(); ++i) {
    gen->Match(live.events[i], &matches);
    ASSERT_EQ(matches, expected[i]) << "event " << i;
  }
}

// Engine-level rebuild isolation. The engine publishes its first sharded
// snapshot (every shard built once), then absorbs unsubscribe-heavy churn
// targeted at ONE shard; the compaction that follows must rebuild exactly
// that shard and carry the other three over untouched.
TEST(ShardedEngineRebuildTest, ChurnOnOneShardRebuildsOnlyThatShard) {
  constexpr uint32_t kShards = 4;
  const auto workload =
      workload::Generate(GnarlySpec(24)).value();

  engine::EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  options.num_shards = kShards;
  options.shard_threads = 1;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 8;
  options.osr.window_size = 0;
  options.buffer_capacity = 16;
  options.incremental_rebuild_threshold = 0.25;

  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  engine::StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        by_event[event_id] = matches;
      });
  std::vector<SubscriptionId> ids;
  for (const auto& sub : workload.subscriptions) {
    auto id = engine.AddSubscription(sub.predicates());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // First round: the initial snapshot builds all four shards.
  engine.Publish(workload.events[0]);
  engine.Flush();
  EXPECT_EQ(engine.stats().shard_rebuilds, kShards);
  EXPECT_EQ(engine.stats().shard_rebuilds_skipped, 0u);

  // Unsubscribe-heavy churn on one shard: remove 80% of its ids. The delta
  // fraction of that shard alone crosses the threshold.
  const uint32_t target = ShardedMatcher::ShardOf(ids[0], kShards);
  std::vector<SubscriptionId> in_target;
  for (SubscriptionId id : ids) {
    if (ShardedMatcher::ShardOf(id, kShards) == target) {
      in_target.push_back(id);
    }
  }
  ASSERT_GT(in_target.size(), 4u);
  std::set<SubscriptionId> removed;
  for (size_t i = 0; i < in_target.size() * 4 / 5; ++i) {
    ASSERT_TRUE(engine.RemoveSubscription(in_target[i]).ok());
    removed.insert(in_target[i]);
  }
  engine.Publish(workload.events[1]);
  engine.Flush();
  // Exactly one compaction, rebuilding exactly the churned shard.
  EXPECT_EQ(engine.stats().compactions, 1u);
  EXPECT_EQ(engine.stats().shard_rebuilds, kShards + 1);
  EXPECT_EQ(engine.stats().shard_rebuilds_skipped, kShards - 1);

  // Second churn wave on a different shard isolates the same way.
  const uint32_t second = (target + 1) % kShards;
  std::vector<SubscriptionId> in_second;
  for (SubscriptionId id : ids) {
    if (ShardedMatcher::ShardOf(id, kShards) == second) {
      in_second.push_back(id);
    }
  }
  ASSERT_GT(in_second.size(), 4u);
  for (size_t i = 0; i < in_second.size() * 4 / 5; ++i) {
    ASSERT_TRUE(engine.RemoveSubscription(in_second[i]).ok());
    removed.insert(in_second[i]);
  }
  engine.Publish(workload.events[2]);
  engine.Flush();
  EXPECT_EQ(engine.stats().compactions, 2u);
  EXPECT_EQ(engine.stats().shard_rebuilds, kShards + 2);
  EXPECT_EQ(engine.stats().shard_rebuilds_skipped, 2 * (kShards - 1));

  // The counters are exported under their metric names.
  const std::string text = engine::RenderPrometheus(engine.metrics_registry());
  EXPECT_NE(text.find("apcm_shard_rebuilds_total " +
                      std::to_string(kShards + 2)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("apcm_shard_rebuilds_skipped_total " +
                      std::to_string(2 * (kShards - 1))),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("apcm_shards 4"), std::string::npos) << text;

  // And the surviving subscription set still matches exactly (engine ids
  // equal workload indices, so scan over the live originals is the oracle).
  workload::Workload live;
  for (size_t i = 0; i < workload.subscriptions.size(); ++i) {
    if (!removed.contains(ids[i])) {
      live.subscriptions.push_back(workload.subscriptions[i]);
    }
  }
  live.events = workload.events;
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, live);
  std::vector<uint64_t> probe_ids;
  for (const Event& event : workload.events) {
    probe_ids.push_back(engine.Publish(event));
  }
  engine.Flush();
  for (size_t i = 0; i < workload.events.size(); ++i) {
    ASSERT_EQ(by_event.at(probe_ids[i]), expected[i]) << "event " << i;
  }
}

// With the incremental path disabled (threshold 0) every change forces a
// snapshot build — but still only the shards owning changed ids re-index.
TEST(ShardedEngineRebuildTest, ThresholdZeroRebuildsOnlyDirtyShards) {
  constexpr uint32_t kShards = 4;
  const auto workload = workload::Generate(GnarlySpec(25)).value();

  engine::EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  options.num_shards = kShards;
  options.shard_threads = 1;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 8;
  options.osr.window_size = 0;
  options.buffer_capacity = 16;
  options.incremental_rebuild_threshold = 0;  // rebuild on every change

  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  engine::StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        by_event[event_id] = matches;
      });
  std::vector<SubscriptionId> ids;
  for (const auto& sub : workload.subscriptions) {
    auto id = engine.AddSubscription(sub.predicates());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  engine.Publish(workload.events[0]);
  engine.Flush();
  EXPECT_EQ(engine.stats().shard_rebuilds, kShards);

  // One removal dirties exactly one shard; the next round's rebuild must
  // re-index that shard only.
  ASSERT_TRUE(engine.RemoveSubscription(ids[5]).ok());
  engine.Publish(workload.events[1]);
  engine.Flush();
  EXPECT_EQ(engine.stats().shard_rebuilds, kShards + 1);
  EXPECT_EQ(engine.stats().shard_rebuilds_skipped, kShards - 1);
  EXPECT_EQ(engine.stats().incremental_updates, 0u);

  // The removed subscription no longer matches.
  workload::Workload live;
  for (size_t i = 0; i < workload.subscriptions.size(); ++i) {
    if (i != 5) live.subscriptions.push_back(workload.subscriptions[i]);
  }
  live.events = workload.events;
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, live);
  std::vector<uint64_t> probe_ids;
  for (const Event& event : workload.events) {
    probe_ids.push_back(engine.Publish(event));
  }
  engine.Flush();
  for (size_t i = 0; i < workload.events.size(); ++i) {
    ASSERT_EQ(by_event.at(probe_ids[i]), expected[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace apcm
