// End-to-end differential test: a StreamEngine configured with everything at
// once (A-PCM, OSR re-ordering, DNF subscriptions, top-k priorities,
// incremental churn with compaction) against a naive reference engine that
// re-evaluates every live subscription per event. Any divergence anywhere in
// the stack surfaces here.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/base/rng.h"
#include "src/engine/engine.h"
#include "src/workload/generator.h"

namespace apcm {
namespace {

/// The executable specification of the full engine contract.
class ReferenceEngine {
 public:
  explicit ReferenceEngine(uint32_t top_k) : top_k_(top_k) {}

  void Add(SubscriptionId external,
           std::vector<std::vector<Predicate>> disjuncts) {
    Entry entry;
    for (auto& disjunct : disjuncts) {
      entry.disjuncts.push_back(
          BooleanExpression::Create(external, std::move(disjunct)).value());
    }
    subs_.emplace(external, std::move(entry));
  }

  void Remove(SubscriptionId external) { subs_.erase(external); }

  void SetPriority(SubscriptionId external, double priority) {
    subs_.at(external).priority = priority;
  }

  std::vector<SubscriptionId> Match(const Event& event) const {
    std::vector<SubscriptionId> matches;
    for (const auto& [id, entry] : subs_) {
      for (const auto& disjunct : entry.disjuncts) {
        if (disjunct.Matches(event)) {
          matches.push_back(id);
          break;
        }
      }
    }
    std::sort(matches.begin(), matches.end());
    if (top_k_ > 0 && matches.size() > top_k_) {
      std::stable_sort(matches.begin(), matches.end(),
                       [&](SubscriptionId a, SubscriptionId b) {
                         return subs_.at(a).priority > subs_.at(b).priority;
                       });
      matches.resize(top_k_);
      std::sort(matches.begin(), matches.end());
    }
    return matches;
  }

  std::vector<SubscriptionId> LiveIds() const {
    std::vector<SubscriptionId> ids;
    for (const auto& [id, entry] : subs_) ids.push_back(id);
    return ids;
  }

 private:
  struct Entry {
    std::vector<BooleanExpression> disjuncts;
    double priority = 0;
  };
  std::map<SubscriptionId, Entry> subs_;
  uint32_t top_k_;
};

class FullStackTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FullStackTest, EngineMatchesReferenceUnderChurn) {
  const uint64_t seed = GetParam();
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 250;
  spec.num_events = 600;
  spec.num_attributes = 20;
  spec.domain_max = 200;
  spec.min_predicates = 1;
  spec.max_predicates = 4;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 8;
  spec.seeded_event_fraction = 0.6;
  spec.event_locality = 0.5;
  const auto workload = workload::Generate(spec).value();

  const uint32_t top_k = seed % 2 == 0 ? 3 : 0;
  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  options.matcher.pcm.num_threads = 2;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 32;
  options.osr.window_size = 64;
  options.buffer_capacity = 128;
  options.incremental_rebuild_threshold = 0.15;
  options.top_k = top_k;

  std::map<uint64_t, std::vector<SubscriptionId>> deliveries;
  engine::StreamEngine engine(
      options, [&](uint64_t id, const std::vector<SubscriptionId>& matches) {
        deliveries[id] = matches;
      });
  ReferenceEngine reference(top_k);

  Rng rng(seed * 1000 + 3);
  size_t next_sub = 0;
  uint64_t next_event = 0;
  // Expected match set per published event id, captured at publish time
  // against the then-current subscription set (the engine's contract: a
  // removal takes effect for events processed after the call; we only
  // publish while in sync, then flush before churning again).
  std::map<uint64_t, std::vector<SubscriptionId>> expected;

  for (int round = 0; round < 10; ++round) {
    // Churn phase: adds (plain or DNF), removes, priority changes.
    for (int i = 0; i < 12 && next_sub < workload.subscriptions.size(); ++i) {
      const auto& sub = workload.subscriptions[next_sub++];
      if (rng.Bernoulli(0.25) &&
          next_sub < workload.subscriptions.size()) {
        const auto& second = workload.subscriptions[next_sub++];
        std::vector<std::vector<Predicate>> disjuncts = {
            sub.predicates(), second.predicates()};
        const SubscriptionId id =
            engine.AddDisjunctiveSubscription(disjuncts).value();
        reference.Add(id, std::move(disjuncts));
      } else {
        const SubscriptionId id =
            engine.AddSubscription(sub.predicates()).value();
        reference.Add(id, {sub.predicates()});
      }
    }
    const auto live = reference.LiveIds();
    for (int i = 0; i < 3 && !live.empty(); ++i) {
      const SubscriptionId victim = live[rng.Uniform(live.size())];
      const Status engine_status = engine.RemoveSubscription(victim);
      if (engine_status.ok()) {
        reference.Remove(victim);
      }
    }
    if (top_k > 0) {
      for (const SubscriptionId id : reference.LiveIds()) {
        if (rng.Bernoulli(0.3)) {
          const double priority = static_cast<double>(rng.UniformInt(0, 50));
          ASSERT_TRUE(engine.SetPriority(id, priority).ok());
          reference.SetPriority(id, priority);
        }
      }
    }

    // Publish phase.
    for (int i = 0; i < 55; ++i) {
      const Event& event =
          workload.events[next_event % workload.events.size()];
      const uint64_t id = engine.Publish(event);
      expected[id] = reference.Match(event);
      ++next_event;
    }
    engine.Flush();
  }

  ASSERT_EQ(deliveries.size(), expected.size());
  for (const auto& [id, matches] : expected) {
    EXPECT_EQ(deliveries.at(id), matches) << "event " << id;
  }
  // With threshold 0.15 and this much churn, compactions must have fired
  // and rebuilds must have stayed at the initial one.
  EXPECT_EQ(engine.stats().rebuilds, 1u);
  EXPECT_GT(engine.stats().compactions, 0u);
  EXPECT_GT(engine.stats().incremental_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullStackTest,
                         ::testing::Values(401, 402, 403, 404, 405));

}  // namespace
}  // namespace apcm
