#include "src/be/string_dictionary.h"

#include <gtest/gtest.h>

#include "src/be/parser.h"
#include "src/index/scan.h"

namespace apcm {
namespace {

TEST(StringDictionaryTest, EncodeAssignsDenseIds) {
  StringDictionary dict;
  EXPECT_EQ(dict.Encode("US"), 0);
  EXPECT_EQ(dict.Encode("DE"), 1);
  EXPECT_EQ(dict.Encode("US"), 0);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(StringDictionaryTest, FindAndDecode) {
  StringDictionary dict;
  const Value us = dict.Encode("US");
  EXPECT_EQ(dict.Find("US").value(), us);
  EXPECT_EQ(dict.Find("JP").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dict.Decode(us).value(), "US");
  EXPECT_EQ(dict.Decode(99).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dict.Decode(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(StringDictionaryTest, EmptyStringEncodable) {
  StringDictionary dict;
  const Value id = dict.Encode("");
  EXPECT_EQ(dict.Decode(id).value(), "");
}

TEST(StringDictionaryTest, DomainCoversEncodedIds) {
  StringDictionary dict;
  dict.Encode("a");
  dict.Encode("b");
  const ValueInterval domain = dict.Domain(10);
  EXPECT_LE(domain.lo, 0);
  EXPECT_GE(domain.hi, 1);
}

TEST(ParserStringsTest, QuotedOperandsEncode) {
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  auto pred = parser.ParsePredicate("country = \"US\"");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ(pred->op(), Op::kEq);
  EXPECT_EQ(pred->v1(), strings.Find("US").value());

  auto set = parser.ParsePredicate("tier in {\"gold\", \"silver\"}");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->values().size(), 2u);
}

TEST(ParserStringsTest, QuotedEventValues) {
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  auto event = parser.ParseEvent("country = \"US\", price = 10");
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  const AttributeId country = catalog.FindAttribute("country").value();
  EXPECT_EQ(*event->Find(country), strings.Find("US").value());
}

TEST(ParserStringsTest, StringsWithoutDictionaryRejected) {
  Catalog catalog;
  Parser parser(&catalog);  // no dictionary
  EXPECT_FALSE(parser.ParsePredicate("country = \"US\"").ok());
  EXPECT_FALSE(parser.ParseEvent("country = \"US\"").ok());
}

TEST(ParserStringsTest, UnterminatedStringRejected) {
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  EXPECT_FALSE(parser.ParsePredicate("country = \"US").ok());
  EXPECT_FALSE(parser.ParsePredicate("country = \"").ok());
}

TEST(ParserStringsTest, EndToEndStringMatching) {
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  std::vector<BooleanExpression> subs;
  subs.push_back(parser
                     .ParseExpression(
                         0, "country = \"US\" and tier in {\"gold\"}")
                     .value());
  subs.push_back(
      parser.ParseExpression(1, "country != \"US\"").value());

  index::ScanMatcher scan;
  scan.Build(subs);
  std::vector<SubscriptionId> matches;
  scan.Match(parser.ParseEvent("country = \"US\", tier = \"gold\"").value(),
             &matches);
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{0}));
  scan.Match(parser.ParseEvent("country = \"DE\", tier = \"gold\"").value(),
             &matches);
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{1}));
}

}  // namespace
}  // namespace apcm
