// Incremental maintenance: PCM delta clusters + tombstones, and the engine's
// incremental-vs-rebuild policy. The property throughout: after any sequence
// of adds/removes, matching equals a scan over the current live set.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "src/core/pcm.h"
#include "src/engine/engine.h"
#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

std::vector<SubscriptionId> ScanLive(
    const std::unordered_map<SubscriptionId, BooleanExpression>& live,
    const Event& event) {
  std::vector<SubscriptionId> matches;
  for (const auto& [id, sub] : live) {
    if (sub.Matches(event)) matches.push_back(id);
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

TEST(PcmIncrementalTest, AddsMatchImmediately) {
  core::PcmOptions options;
  options.delta_cluster_size = 4;  // force both pending and cluster paths
  core::PcmMatcher matcher(options);
  matcher.Build({});
  for (SubscriptionId id = 0; id < 10; ++id) {
    matcher.AddIncremental(BooleanExpression::Create(
        id, {Predicate(0, Op::kEq, static_cast<Value>(id))}).value());
  }
  std::vector<SubscriptionId> matches;
  matcher.Match(Event::Create({{0, 7}}).value(), &matches);
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{7}));
  // Ids 0..7 are in delta clusters (two of size 4), 8..9 still pending.
  matcher.Match(Event::Create({{0, 9}}).value(), &matches);
  EXPECT_EQ(matches, (std::vector<SubscriptionId>{9}));
}

TEST(PcmIncrementalTest, RemoveStopsMatchingFromBaseAndDelta) {
  const auto workload = workload::Generate(GnarlySpec(201)).value();
  core::PcmOptions options;
  core::PcmMatcher matcher(options);
  matcher.Build(workload.subscriptions);
  // Remove a base subscription and add a delta one with a fresh id.
  const SubscriptionId base_id = workload.subscriptions.front().id();
  ASSERT_TRUE(matcher.RemoveIncremental(base_id).ok());
  const SubscriptionId delta_id =
      static_cast<SubscriptionId>(workload.subscriptions.size()) + 100;
  matcher.AddIncremental(BooleanExpression::Create(
      delta_id, {Predicate(0, Op::kGe, workload.spec.domain_min)}).value());
  ASSERT_TRUE(matcher.RemoveIncremental(delta_id).ok());

  std::vector<SubscriptionId> matches;
  for (const Event& event : workload.events) {
    matcher.Match(event, &matches);
    for (SubscriptionId id : matches) {
      EXPECT_NE(id, base_id);
      EXPECT_NE(id, delta_id);
    }
  }
}

TEST(PcmIncrementalTest, RemoveErrors) {
  core::PcmMatcher matcher{core::PcmOptions{}};
  matcher.Build({});
  EXPECT_EQ(matcher.RemoveIncremental(0).code(), StatusCode::kNotFound);
  matcher.AddIncremental(
      BooleanExpression::Create(0, {Predicate(1, Op::kEq, 1)}).value());
  EXPECT_TRUE(matcher.RemoveIncremental(0).ok());
  EXPECT_EQ(matcher.RemoveIncremental(0).code(), StatusCode::kNotFound);
}

TEST(PcmIncrementalTest, DeltaFractionTracksChanges) {
  const auto workload = workload::Generate(GnarlySpec(202)).value();
  core::PcmMatcher matcher{core::PcmOptions{}};
  matcher.Build(workload.subscriptions);
  EXPECT_DOUBLE_EQ(matcher.DeltaFraction(), 0.0);
  const auto n = static_cast<SubscriptionId>(workload.subscriptions.size());
  matcher.AddIncremental(BooleanExpression::Create(
      n + 1, {Predicate(0, Op::kEq, 1)}).value());
  ASSERT_TRUE(matcher.RemoveIncremental(0).ok());
  EXPECT_NEAR(matcher.DeltaFraction(), 2.0 / (n + 1), 1e-9);
  // Build resets delta state.
  matcher.Build(workload.subscriptions);
  EXPECT_DOUBLE_EQ(matcher.DeltaFraction(), 0.0);
}

TEST(PcmCompactTest, FoldsDeltaIntoMainClusters) {
  const auto workload = workload::Generate(GnarlySpec(231)).value();
  core::PcmOptions options;
  options.delta_cluster_size = 8;
  core::PcmMatcher matcher(options);
  matcher.Build(workload.subscriptions);
  const size_t clusters_before = matcher.clusters().size();

  const auto n = static_cast<SubscriptionId>(workload.subscriptions.size());
  for (SubscriptionId i = 0; i < 30; ++i) {
    matcher.AddIncremental(BooleanExpression::Create(
        n + i, {Predicate(0, Op::kEq, static_cast<Value>(i))}).value());
  }
  ASSERT_TRUE(matcher.RemoveIncremental(0).ok());
  EXPECT_GT(matcher.DeltaFraction(), 0.0);

  matcher.Compact();
  EXPECT_DOUBLE_EQ(matcher.DeltaFraction(), 0.0);
  EXPECT_GE(matcher.clusters().size(), clusters_before);

  // Matching equals a scan over the post-churn live set.
  std::unordered_map<SubscriptionId, BooleanExpression> live;
  for (const auto& sub : workload.subscriptions) {
    if (sub.id() != 0) live.emplace(sub.id(), sub);
  }
  for (SubscriptionId i = 0; i < 30; ++i) {
    live.emplace(n + i,
                 BooleanExpression::Create(
                     n + i, {Predicate(0, Op::kEq, static_cast<Value>(i))})
                     .value());
  }
  std::vector<SubscriptionId> matches;
  for (size_t e = 0; e < 40; ++e) {
    const Event& event = workload.events[e % workload.events.size()];
    matcher.Match(event, &matches);
    EXPECT_EQ(matches, ScanLive(live, event)) << event.ToString();
  }

  // Compacted state is saveable and the removed id can be re-registered.
  matcher.AddIncremental(
      BooleanExpression::Create(0, {Predicate(1, Op::kEq, 1)}).value());
}

TEST(PcmCompactTest, NoOpWhenClean) {
  const auto workload = workload::Generate(GnarlySpec(232)).value();
  core::PcmMatcher matcher{core::PcmOptions{}};
  matcher.Build(workload.subscriptions);
  const size_t before = matcher.clusters().size();
  matcher.Compact();
  EXPECT_EQ(matcher.clusters().size(), before);
}

TEST(PcmCompactTest, ChurnWithInterleavedCompactions) {
  const auto spec = GnarlySpec(233);
  const auto workload = workload::Generate(spec).value();
  const size_t half = workload.subscriptions.size() / 2;
  std::vector<BooleanExpression> base(
      workload.subscriptions.begin(),
      workload.subscriptions.begin() + static_cast<long>(half));
  core::PcmOptions options;
  options.delta_cluster_size = 16;
  core::PcmMatcher matcher(options);
  matcher.Build(base);
  std::unordered_map<SubscriptionId, BooleanExpression> live;
  for (const auto& sub : base) live.emplace(sub.id(), sub);

  Rng rng(2333);
  size_t next_add = half;
  std::vector<SubscriptionId> matches;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 15 && next_add < workload.subscriptions.size();
         ++i) {
      const auto& sub = workload.subscriptions[next_add++];
      matcher.AddIncremental(sub);
      live.emplace(sub.id(), sub);
    }
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Uniform(live.size())));
      ASSERT_TRUE(matcher.RemoveIncremental(it->first).ok());
      live.erase(it);
    }
    if (round % 2 == 1) matcher.Compact();
    for (size_t e = 0; e < 15; ++e) {
      const Event& event =
          workload.events[(round * 15 + e) % workload.events.size()];
      matcher.Match(event, &matches);
      EXPECT_EQ(matches, ScanLive(live, event))
          << "round " << round << " " << event.ToString();
    }
  }
}

class PcmChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcmChurnTest, MatchesScanAfterEveryChurnRound) {
  const auto spec = GnarlySpec(GetParam());
  const auto workload = workload::Generate(spec).value();
  // Start with the first half built, then churn: add from the second half,
  // remove random live ids.
  const size_t half = workload.subscriptions.size() / 2;
  std::vector<BooleanExpression> base(
      workload.subscriptions.begin(),
      workload.subscriptions.begin() + static_cast<long>(half));

  core::PcmOptions options;
  options.delta_cluster_size = 16;
  core::PcmMatcher matcher(options);
  matcher.Build(base);

  std::unordered_map<SubscriptionId, BooleanExpression> live;
  for (const auto& sub : base) live.emplace(sub.id(), sub);

  Rng rng(GetParam() * 31 + 7);
  size_t next_add = half;
  for (int round = 0; round < 8; ++round) {
    // Churn: a few adds and removes.
    for (int i = 0; i < 10 && next_add < workload.subscriptions.size(); ++i) {
      const auto& sub = workload.subscriptions[next_add++];
      matcher.AddIncremental(sub);
      live.emplace(sub.id(), sub);
    }
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Uniform(live.size())));
      ASSERT_TRUE(matcher.RemoveIncremental(it->first).ok());
      live.erase(it);
    }
    // Verify on a slice of events.
    std::vector<SubscriptionId> matches;
    for (size_t e = 0; e < 20; ++e) {
      const Event& event = workload.events[(round * 20 + e) %
                                           workload.events.size()];
      matcher.Match(event, &matches);
      EXPECT_EQ(matches, ScanLive(live, event))
          << "round " << round << " event " << event.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcmChurnTest,
                         ::testing::Values(211, 212, 213));

TEST(EngineIncrementalTest, SmallChangesAvoidRebuilds) {
  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  options.incremental_rebuild_threshold = 0.5;
  std::map<uint64_t, std::vector<SubscriptionId>> deliveries;
  engine::StreamEngine engine(
      options, [&](uint64_t id, const std::vector<SubscriptionId>& matches) {
        deliveries[id] = matches;
      });
  // Initial build with 100 subscriptions "0=i".
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine
                    .AddSubscription({Predicate(0, Op::kEq,
                                                static_cast<Value>(i))})
                    .ok());
  }
  engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(engine.stats().rebuilds, 1u);

  // A couple of changes: absorbed incrementally, no rebuild.
  const SubscriptionId extra =
      engine.AddSubscription({Predicate(0, Op::kEq, 1)}).value();
  ASSERT_TRUE(engine.RemoveSubscription(5).ok());
  const uint64_t e1 = engine.Publish(Event::Create({{0, 1}}).value());
  const uint64_t e2 = engine.Publish(Event::Create({{0, 5}}).value());
  engine.Flush();
  EXPECT_EQ(engine.stats().rebuilds, 1u);
  EXPECT_EQ(engine.stats().incremental_updates, 2u);

  // Matching reflects both changes: the new copy matches, the removed one
  // does not.
  EXPECT_EQ(deliveries.at(e1), (std::vector<SubscriptionId>{1, extra}));
  EXPECT_TRUE(deliveries.at(e2).empty());
}

TEST(EngineIncrementalTest, IncrementalAndRebuildAgree) {
  const auto workload = workload::Generate(GnarlySpec(221)).value();
  auto run = [&](double threshold) {
    engine::EngineOptions options;
    options.kind = engine::MatcherKind::kPcm;
    options.incremental_rebuild_threshold = threshold;
    std::vector<std::vector<SubscriptionId>> deliveries;
    engine::StreamEngine engine(
        options, [&](uint64_t, const std::vector<SubscriptionId>& matches) {
          deliveries.push_back(matches);
        });
    // Interleave subscription changes with event batches.
    size_t next_sub = 0;
    std::vector<SubscriptionId> ids;
    for (int phase = 0; phase < 4; ++phase) {
      for (int i = 0; i < 50 && next_sub < workload.subscriptions.size();
           ++i) {
        ids.push_back(engine
                          .AddSubscription(workload.subscriptions[next_sub++]
                                               .predicates())
                          .value());
      }
      if (phase > 0) {
        EXPECT_TRUE(
            engine.RemoveSubscription(ids[static_cast<size_t>(phase)]).ok());
      }
      for (size_t e = 0; e < 25; ++e) {
        engine.Publish(
            workload.events[(static_cast<size_t>(phase) * 25 + e) %
                            workload.events.size()]);
      }
      engine.Flush();
    }
    return deliveries;
  };
  // threshold 1.0: always incremental after the first build;
  // threshold 0.0: always rebuild. Results must be identical.
  EXPECT_EQ(run(1.0), run(0.0));
}

}  // namespace
}  // namespace apcm
