// Deterministic fault-injection suite (ctest label: chaos). Every scenario
// drives a scripted fault schedule through armed failpoints and checks exact
// agreement with a fault-free oracle: same events, same subscriptions, same
// match sets, summarized as an FNV-1a hash that must be byte-identical run
// to run. There are no sleeps standing in for synchronization and no flake
// budget — waits are deadline-polls on observable state (metrics, failpoint
// hit counters, delivered matches), and probabilistic failpoints are seeded.
//
// The whole file compiles in every build; scenarios GTEST_SKIP() at runtime
// unless the binary was built with -DAPCM_FAILPOINTS=ON (failpoint::kEnabled).

#include "src/base/failpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/be/catalog.h"
#include "src/be/parser.h"
#include "src/be/string_dictionary.h"
#include "src/engine/engine.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"

namespace apcm {
namespace {

using engine::EngineOptions;
using engine::StreamEngine;
using net::Client;
using net::EventServer;
using net::EventServerOptions;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

/// FNV-1a over a match-set map (event key -> ascending sub ids). The
/// determinism assertions compare these digests across runs, so the digest
/// must depend only on logical content, never on iteration order — std::map
/// plus pre-sorted rows give that.
uint64_t HashMatchSets(const std::map<uint64_t, std::vector<uint64_t>>& sets) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [key, subs] : sets) {
    mix(key);
    mix(subs.size());
    for (uint64_t s : subs) mix(s);
  }
  return h;
}

/// Deterministic workload: `subs` random boolean expressions (the
/// net_server_test generator shape) and `events` random events over
/// attributes a0..a7, all derived from `seed`.
struct Workload {
  std::vector<std::string> expressions;
  std::vector<Event> events;
};

Workload MakeWorkload(uint64_t seed, int subs, int num_events) {
  Rng rng(seed);
  auto make_conjunction = [&rng]() {
    static const char* kOps[] = {">=", "<=", ">", "<", "=", "!="};
    std::string text;
    std::set<uint64_t> used;
    const int preds = 1 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < preds; ++p) {
      uint64_t attr = rng.Uniform(8);
      if (!used.insert(attr).second) continue;
      if (!text.empty()) text += " and ";
      text += "a" + std::to_string(attr) + " " + kOps[rng.Uniform(6)] + " " +
              std::to_string(rng.Uniform(100));
    }
    return text;
  };
  Workload w;
  for (int i = 0; i < subs; ++i) {
    std::string text = make_conjunction();
    if (rng.Bernoulli(0.3)) text += " or " + make_conjunction();
    w.expressions.push_back(std::move(text));
  }
  for (int i = 0; i < num_events; ++i) {
    std::vector<Event::Entry> entries;
    uint64_t attr = rng.Uniform(3);
    while (attr < 8) {
      entries.push_back({static_cast<AttributeId>(attr),
                         static_cast<int64_t>(rng.Uniform(100))});
      attr += 1 + rng.Uniform(4);
    }
    w.events.push_back(Event::FromSorted(std::move(entries)));
  }
  return w;
}

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.batch_size = 16;
  options.osr.window_size = 0;
  options.buffer_capacity = 16;
  options.matcher.pcm.clustering.cluster_size = 32;
  return options;
}

EventServerOptions SmallServerOptions() {
  EventServerOptions options;
  options.engine = SmallEngineOptions();
  return options;
}

/// Replays `workload` through a fault-free StreamEngine (the oracle) and
/// returns publish-index -> ascending registration indices of the matches.
std::map<uint64_t, std::vector<uint64_t>> OracleMatchSets(
    const Workload& workload, const EngineOptions& options) {
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  std::map<uint64_t, std::vector<uint64_t>> rows;  // event id -> reg index
  std::map<SubscriptionId, uint64_t> sub_index;
  std::mutex mu;
  StreamEngine oracle(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        std::lock_guard<std::mutex> lock(mu);
        if (matches.empty()) return;
        std::vector<uint64_t>& row = rows[event_id];
        for (SubscriptionId id : matches) row.push_back(sub_index.at(id));
      });
  for (size_t i = 0; i < workload.expressions.size(); ++i) {
    auto disjuncts = parser.ParseDisjunction(workload.expressions[i]);
    EXPECT_TRUE(disjuncts.ok()) << workload.expressions[i];
    auto added = disjuncts->size() == 1
                     ? oracle.AddSubscription(std::move((*disjuncts)[0]))
                     : oracle.AddDisjunctiveSubscription(std::move(*disjuncts));
    EXPECT_TRUE(added.ok()) << workload.expressions[i];
    sub_index[*added] = i;
  }
  std::vector<uint64_t> event_ids;
  for (const Event& event : workload.events) {
    event_ids.push_back(oracle.Publish(event));
  }
  oracle.Flush();
  std::lock_guard<std::mutex> lock(mu);
  std::map<uint64_t, std::vector<uint64_t>> by_index;
  for (size_t k = 0; k < event_ids.size(); ++k) {
    auto it = rows.find(event_ids[k]);
    if (it == rows.end()) continue;
    std::vector<uint64_t> row = it->second;
    std::sort(row.begin(), row.end());
    by_index[k] = std::move(row);
  }
  return by_index;
}

/// Connect-only raw TCP socket against 127.0.0.1:`port`; send bytes now,
/// read whatever the server ever sends back later (until it closes).
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() { Close(); }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Blocks until the server closes the connection; returns all bytes read.
  std::string ReadUntilClosed() {
    std::string response;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
    }
    return response;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

std::string EncodePublish(uint64_t seq, const Event& event) {
  Frame frame;
  frame.type = FrameType::kPublish;
  frame.seq = seq;
  frame.event = event;
  return EncodeFrame(frame);
}

/// Plain HTTP/1.0 GET against the engine's admin server.
std::string HttpGet(int port, const std::string& path) {
  RawConn conn(port);
  conn.Send("GET " + path + " HTTP/1.0\r\n\r\n");
  return conn.ReadUntilClosed();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out; build with -DAPCM_FAILPOINTS=ON";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override { failpoint::DisarmAll(); }

  static constexpr auto kDeadline = std::chrono::seconds(60);

  /// Deadline-polls `condition` (no fixed sleeps standing in for ordering;
  /// the condition is always observable state).
  static void AwaitTrue(const std::function<bool()>& condition,
                        const char* what) {
    const auto deadline = std::chrono::steady_clock::now() + kDeadline;
    while (!condition()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
};

#ifdef APCM_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Registry semantics: spec grammar, count exhaustion, seeded determinism.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, SpecParsingCountingAndSeededDeterminism) {
  auto& registry = failpoint::Registry::Instance();

  // count*: fires exactly count times, then restores the zero-cost path.
  failpoint::Failpoint* counted = registry.Register("chaos.unit.count");
  ASSERT_TRUE(counted->Configure("2*return(7)").ok());
  EXPECT_TRUE(counted->armed());
  uint64_t arg = 0;
  EXPECT_TRUE(counted->Fire(&arg));
  EXPECT_EQ(arg, 7u);
  EXPECT_TRUE(counted->Fire(&arg));
  EXPECT_FALSE(counted->armed());
  EXPECT_EQ(counted->spec(), "off");
  EXPECT_FALSE(counted->Fire(&arg));
  EXPECT_EQ(counted->hits(), 2u);

  // delay / yield perturb the schedule but never trigger injection.
  failpoint::Failpoint* perturb = registry.Register("chaos.unit.perturb");
  ASSERT_TRUE(perturb->Configure("delay(1)").ok());
  EXPECT_FALSE(perturb->Fire(&arg));
  ASSERT_TRUE(perturb->Configure("yield").ok());
  EXPECT_FALSE(perturb->Fire(&arg));
  EXPECT_EQ(perturb->hits(), 2u);

  // Identical seeds produce identical probabilistic decision streams, and
  // re-configuring re-seeds so a schedule replays exactly.
  failpoint::Failpoint* prob_a = registry.Register("chaos.unit.prob_a");
  failpoint::Failpoint* prob_b = registry.Register("chaos.unit.prob_b");
  ASSERT_TRUE(prob_a->Configure("50%return@1234").ok());
  ASSERT_TRUE(prob_b->Configure("50%return@1234").ok());
  std::vector<bool> stream_a, stream_b;
  bool any = false, all = true;
  for (int i = 0; i < 64; ++i) {
    const bool fired = prob_a->Fire(nullptr);
    stream_a.push_back(fired);
    stream_b.push_back(prob_b->Fire(nullptr));
    any |= fired;
    all &= fired;
  }
  EXPECT_EQ(stream_a, stream_b);
  EXPECT_TRUE(any);
  EXPECT_FALSE(all);
  ASSERT_TRUE(prob_a->Configure("50%return@1234").ok());
  std::vector<bool> replay;
  for (int i = 0; i < 64; ++i) replay.push_back(prob_a->Fire(nullptr));
  EXPECT_EQ(replay, stream_a);

  // Parse errors leave the previous arming untouched.
  failpoint::Failpoint* robust = registry.Register("chaos.unit.robust");
  ASSERT_TRUE(robust->Configure("return").ok());
  EXPECT_EQ(robust->Configure("explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(robust->Configure("150%return").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(robust->Configure("0*return").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(robust->Configure("return(x)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(robust->Configure("5%return@zz").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(robust->armed());
  EXPECT_EQ(robust->spec(), "return");

  // Multi-entry spec strings (the APCM_FAILPOINTS grammar).
  ASSERT_TRUE(failpoint::ConfigureFromSpec(
                  "chaos.unit.m1=3*return, chaos.unit.m2=5%yield@3")
                  .ok());
  bool saw_m1 = false;
  for (const failpoint::PointInfo& info : failpoint::List()) {
    if (info.name == "chaos.unit.m1") {
      saw_m1 = true;
      EXPECT_EQ(info.spec, "3*return");
    }
  }
  EXPECT_TRUE(saw_m1);
  EXPECT_EQ(failpoint::ConfigureFromSpec("chaos.unit.m1=return,oops").code(),
            StatusCode::kInvalidArgument);
}

#endif  // APCM_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// /failpoints admin endpoint + apcm_failpoint_hits_total metric.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, AdminEndpointListsArmsDisarmsAndExportsHits) {
  EngineOptions options = SmallEngineOptions();
  options.admin_port = -1;  // kernel-assigned, for tests
  StreamEngine engine(options, [](uint64_t, const std::vector<SubscriptionId>&) {});
  const int port = engine.admin_port();
  ASSERT_GT(port, 0);

  // Arm through the endpoint, fire through the macro: 3*return exhausts.
  const std::string armed =
      HttpGet(port, "/failpoints?arm=chaos.admin.probe=3*return(9)");
  EXPECT_NE(armed.find("200 OK"), std::string::npos) << armed;
  for (int i = 0; i < 5; ++i) {
    APCM_FAILPOINT("chaos.admin.probe");
  }
  EXPECT_EQ(failpoint::Hits("chaos.admin.probe"), 3u);

  const std::string list = HttpGet(port, "/failpoints");
  EXPECT_NE(list.find("\"enabled\":true"), std::string::npos) << list;
  EXPECT_NE(list.find("\"chaos.admin.probe\""), std::string::npos) << list;
  EXPECT_NE(list.find("\"hits\":3"), std::string::npos) << list;

  // The hit counter rolls up into the engine's metric registry.
  EXPECT_GE(CounterValue(engine.metrics_registry(),
                         "apcm_failpoint_hits_total"),
            3u);

  // Disarm through the endpoint; hit counts survive.
  EXPECT_NE(HttpGet(port, "/failpoints?disarm=chaos.admin.probe")
                .find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/failpoints?disarm=all").find("200 OK"),
            std::string::npos);
  EXPECT_EQ(failpoint::Hits("chaos.admin.probe"), 3u);

  // Unknown queries and malformed specs are 400s, not crashes.
  EXPECT_NE(HttpGet(port, "/failpoints?bogus=1").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/failpoints?arm=chaos.admin.probe=explode")
                .find("400"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario: snapshot rebuilds racing subscription removal. Faults hold
// background compactions in flight (delays at the rebuild seams) while
// removals land mid-schedule; the delivered match sets must be byte-identical
// to the fault-free run of the same schedule.
// ---------------------------------------------------------------------------

namespace {

uint64_t RunRebuildChurnSchedule(const Workload& workload) {
  EngineOptions options = SmallEngineOptions();
  options.batch_size = 8;
  // Tiny threshold: every applied removal crosses the delta fraction and
  // schedules a background compaction, maximizing rebuild/removal overlap.
  options.incremental_rebuild_threshold = 0.01;

  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  std::map<uint64_t, std::vector<uint64_t>> rows;
  std::map<SubscriptionId, uint64_t> sub_index;
  std::mutex mu;
  StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        std::lock_guard<std::mutex> lock(mu);
        if (matches.empty()) return;
        std::vector<uint64_t>& row = rows[event_id];
        for (SubscriptionId id : matches) row.push_back(sub_index.at(id));
      });
  std::vector<SubscriptionId> sub_ids;
  for (size_t i = 0; i < workload.expressions.size(); ++i) {
    auto disjuncts = parser.ParseDisjunction(workload.expressions[i]);
    EXPECT_TRUE(disjuncts.ok()) << workload.expressions[i];
    auto added = disjuncts->size() == 1
                     ? engine.AddSubscription(std::move((*disjuncts)[0]))
                     : engine.AddDisjunctiveSubscription(std::move(*disjuncts));
    EXPECT_TRUE(added.ok()) << workload.expressions[i];
    sub_index[*added] = i;
    sub_ids.push_back(*added);
  }

  // 16-event segments: rounds trigger inline at publishes 16, 32, ... (the
  // buffer capacity), so a removal after the 8th event of each segment lands
  // between the same two rounds every run — while the previous round's
  // delayed compaction is still in flight.
  std::vector<uint64_t> event_ids;
  size_t removed = 0;
  for (size_t i = 0; i < workload.events.size(); ++i) {
    event_ids.push_back(engine.Publish(workload.events[i]));
    if (i % 16 == 7 && removed * 5 < sub_ids.size()) {
      EXPECT_TRUE(engine.RemoveSubscription(sub_ids[removed * 5]).ok());
      ++removed;
    }
  }
  engine.Flush();

  std::lock_guard<std::mutex> lock(mu);
  std::map<uint64_t, std::vector<uint64_t>> by_index;
  for (size_t k = 0; k < event_ids.size(); ++k) {
    auto it = rows.find(event_ids[k]);
    if (it == rows.end()) continue;
    std::vector<uint64_t> row = it->second;
    std::sort(row.begin(), row.end());
    by_index[k] = std::move(row);
  }
  return HashMatchSets(by_index);
}

constexpr char kChurnFaults[] =
    "engine.rebuild.start=delay(2000),"
    "engine.rebuild.publish=delay(2000),"
    "engine.apply_delta=yield,"
    "threadpool.dispatch=25%yield@11";

}  // namespace

TEST_F(ChaosTest, RebuildDuringUnsubscribeAgreesWithFaultFreeOracle) {
  const Workload workload = MakeWorkload(/*seed=*/7, /*subs=*/40,
                                         /*num_events=*/96);

  const uint64_t publish_hits0 = failpoint::Hits("engine.rebuild.publish");
  const uint64_t delta_hits0 = failpoint::Hits("engine.apply_delta");

  ASSERT_TRUE(failpoint::ConfigureFromSpec(kChurnFaults).ok());
  const uint64_t faulted1 = RunRebuildChurnSchedule(workload);
  EXPECT_GT(failpoint::Hits("engine.rebuild.publish"), publish_hits0);
  EXPECT_GT(failpoint::Hits("engine.apply_delta"), delta_hits0);

  // Re-arming re-seeds every probabilistic stream: run two is the same
  // schedule, and must produce the identical digest.
  ASSERT_TRUE(failpoint::ConfigureFromSpec(kChurnFaults).ok());
  const uint64_t faulted2 = RunRebuildChurnSchedule(workload);
  EXPECT_EQ(faulted1, faulted2);

  failpoint::DisarmAll();
  const uint64_t oracle = RunRebuildChurnSchedule(workload);
  EXPECT_EQ(faulted1, oracle);
}

// ---------------------------------------------------------------------------
// Scenario: ACK, then stop before the pump flushed. A delay at the pump's
// flush seam keeps admitted events sitting in the queue; Stop() arrives with
// the backlog pending and must still deliver a MATCH for every ACKed event
// before closing sockets (acknowledged means durable).
// ---------------------------------------------------------------------------

namespace {

uint64_t RunAckThenStopSchedule(const Workload& workload,
                                size_t expected_rows) {
  EventServer server(SmallServerOptions());
  EXPECT_TRUE(server.Start().ok());

  Client subscriber;
  EXPECT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < workload.expressions.size(); ++i) {
    EXPECT_TRUE(subscriber.Subscribe(i, workload.expressions[i]).ok());
  }

  const uint64_t pump_hits0 = failpoint::Hits("net.server.pump.flush");
  EXPECT_TRUE(
      failpoint::Configure("net.server.pump.flush", "delay(100000)").ok());

  Client publisher;
  EXPECT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> acked;
  for (const Event& event : workload.events) {
    auto id = publisher.Publish(event);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    acked.push_back(*id);
  }

  // All 24 publishes are ACKed. Wait until the pump has observed the backlog
  // (it is now stalled inside the injected delay, the exact window Stop()'s
  // drain must cover), then stop.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (failpoint::Hits("net.server.pump.flush") == pump_hits0) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  // Everything owed is in (or on its way to) our socket buffer; drain to the
  // close marker.
  std::map<uint64_t, std::vector<uint64_t>> received;
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/1000);
    if (!match.ok() || !match->has_value()) break;
    std::vector<uint64_t>& row = received[(*match)->event_id];
    row.insert(row.end(), (*match)->sub_ids.begin(), (*match)->sub_ids.end());
  }
  EXPECT_EQ(received.size(), expected_rows);

  // Re-key by publish order so the digest is comparable across runs.
  std::map<uint64_t, std::vector<uint64_t>> by_index;
  for (size_t k = 0; k < acked.size(); ++k) {
    auto it = received.find(acked[k]);
    if (it == received.end()) continue;
    std::vector<uint64_t> row = it->second;
    std::sort(row.begin(), row.end());
    by_index[k] = std::move(row);
  }
  return HashMatchSets(by_index);
}

}  // namespace

TEST_F(ChaosTest, AckThenStopBeforeFlushDeliversEveryAckedMatch) {
  const Workload workload = MakeWorkload(/*seed=*/19, /*subs=*/8,
                                         /*num_events=*/24);
  const std::map<uint64_t, std::vector<uint64_t>> oracle =
      OracleMatchSets(workload, SmallEngineOptions());
  const uint64_t oracle_hash = HashMatchSets(oracle);

  const uint64_t run1 = RunAckThenStopSchedule(workload, oracle.size());
  EXPECT_GT(failpoint::Hits("net.server.pump.flush"), 0u);
  failpoint::DisarmAll();
  const uint64_t run2 = RunAckThenStopSchedule(workload, oracle.size());

  EXPECT_EQ(run1, oracle_hash);
  EXPECT_EQ(run2, oracle_hash);
}

// ---------------------------------------------------------------------------
// Scenario: stop while a publish is parked on injected backpressure. The
// parked event was never ACKed, so dropping it at shutdown is within
// contract — and nothing ACKed may be lost with it.
// ---------------------------------------------------------------------------

namespace {

uint64_t RunStopWhileParkedSchedule() {
  EventServer server(SmallServerOptions());
  EXPECT_TRUE(server.Start().ok());
  const MetricsRegistry& registry = server.engine().metrics_registry();

  Client subscriber;
  EXPECT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(subscriber.Subscribe(0, "a0 >= 0").ok());

  Client publisher;
  EXPECT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> acked;
  for (int i = 0; i < 6; ++i) {
    auto id = publisher.Publish(Event::Create({{0, i}}).value());
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    acked.push_back(*id);
  }

  // Every admission from here on is rejected as if the queue were full; the
  // raw publish below parks its connection instead of being ACKed.
  EXPECT_TRUE(failpoint::Configure("engine.publish.admit", "return").ok());
  RawConn parked(server.port());
  parked.Send(EncodePublish(/*seq=*/1, Event::Create({{0, 99}}).value()));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (CounterValue(registry, "apcm_net_backpressure_events_total") == 0) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(failpoint::Hits("engine.publish.admit"), 0u);

  // Stop with the publish still parked (admission stays jammed throughout).
  server.Stop();

  // The parked event was never acknowledged: its connection closes without
  // an ACK for seq 1 and its event must not have been delivered.
  const std::string raw_response = parked.ReadUntilClosed();
  FrameDecoder decoder;
  decoder.Append(raw_response.data(), raw_response.size());
  for (;;) {
    auto frame = decoder.Next();
    if (!frame.ok() || !frame->has_value()) break;
    EXPECT_FALSE((*frame)->type == FrameType::kAck && (*frame)->seq == 1)
        << "parked publish must not be acknowledged";
  }

  std::map<uint64_t, std::vector<uint64_t>> received;
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/1000);
    if (!match.ok() || !match->has_value()) break;
    std::vector<uint64_t>& row = received[(*match)->event_id];
    row.insert(row.end(), (*match)->sub_ids.begin(), (*match)->sub_ids.end());
  }

  // Exactly the ACKed events, each matching the catch-all — no more, no less.
  std::map<uint64_t, std::vector<uint64_t>> expected;
  for (uint64_t id : acked) expected[id] = {0};
  EXPECT_EQ(received, expected);
  return HashMatchSets(received);
}

}  // namespace

TEST_F(ChaosTest, StopWhileParkedPublishDropsOnlyTheUnackedEvent) {
  const uint64_t run1 = RunStopWhileParkedSchedule();
  failpoint::DisarmAll();
  const uint64_t run2 = RunStopWhileParkedSchedule();
  EXPECT_EQ(run1, run2);
}

// ---------------------------------------------------------------------------
// Scenario: slow-consumer eviction, made deterministic by injecting EAGAIN
// on every server-side send: no outbox drains, so the victim's 100 fat MATCH
// frames overflow the 2 KiB write-queue bound on the third event, every run.
// Healthy consumers and the ACK stream must be untouched once writes heal.
// ---------------------------------------------------------------------------

namespace {

uint64_t RunSlowConsumerEvictionSchedule() {
  EventServerOptions options = SmallServerOptions();
  options.max_write_queue_bytes = 2048;
  EventServer server(options);
  EXPECT_TRUE(server.Start().ok());
  const MetricsRegistry& registry = server.engine().metrics_registry();

  Client healthy;
  EXPECT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(healthy.Subscribe(0, "a0 >= 0").ok());

  // The victim's 100 catch-alls make each of its MATCH frames ~800 bytes.
  Client victim;
  EXPECT_TRUE(victim.Connect("127.0.0.1", server.port()).ok());
  for (uint64_t i = 100; i < 200; ++i) {
    EXPECT_TRUE(victim.Subscribe(i, "a0 >= 0").ok());
  }

  // Jam all server-side writes, then publish 12 events fire-and-forget (a
  // Client would block on its ACK, which is itself jammed).
  EXPECT_TRUE(
      failpoint::Configure("net.server.send.eagain", "return").ok());
  RawConn publisher(server.port());
  for (uint64_t i = 0; i < 12; ++i) {
    Frame frame;
    frame.type = FrameType::kPublish;
    frame.seq = i + 1;
    frame.event = Event::Create({{0, static_cast<int64_t>(i)}}).value();
    publisher.Send(EncodeFrame(frame));
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (CounterValue(registry, "apcm_net_slow_consumer_disconnects_total") ==
         0) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(failpoint::Hits("net.server.send.eagain"), 0u);

  // Heal the writes; the surviving outboxes drain on the next I/O pass.
  EXPECT_TRUE(failpoint::Configure("net.server.send.eagain", "off").ok());

  std::map<uint64_t, std::vector<uint64_t>> received;
  const auto drain_deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
  while (received.size() < 12 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    auto match = healthy.PollMatch(/*timeout_ms=*/100);
    EXPECT_TRUE(match.ok()) << match.status().ToString();
    if (!match.ok() || !match->has_value()) continue;
    received[(*match)->event_id] = (*match)->sub_ids;
  }

  // The healthy subscriber saw every event exactly once, and its connection
  // (plus the publisher's, whose ACK backlog was far below the bound) were
  // not swept up in the eviction.
  EXPECT_EQ(received.size(), 12u);
  for (const auto& [event_id, subs] : received) {
    EXPECT_EQ(subs, (std::vector<uint64_t>{0})) << "event " << event_id;
  }
  EXPECT_TRUE(healthy.Ping().ok());
  EXPECT_GE(CounterValue(registry, "apcm_net_slow_consumer_disconnects_total"),
            1u);

  publisher.Close();
  server.Stop();
  return HashMatchSets(received);
}

}  // namespace

TEST_F(ChaosTest, SlowConsumerEvictionIsDeterministicUnderJammedWrites) {
  const uint64_t run1 = RunSlowConsumerEvictionSchedule();
  failpoint::DisarmAll();
  const uint64_t run2 = RunSlowConsumerEvictionSchedule();
  EXPECT_EQ(run1, run2);
}

// ---------------------------------------------------------------------------
// Scenario: slow-consumer herd at connection scale, against the epoll
// reactor (io_threads = 4). A 1k-subscriber herd in which every 10th
// connection jams its reads and carries fat subscriptions (24 catch-alls,
// so each of its MATCH frames is an order of magnitude heavier than a
// healthy subscriber's). A server-side write jam makes outbox growth
// deterministic during the broadcast storm: exactly the jammed cohort
// crosses the 2 KiB bound and is evicted, every run. Healthy subscribers
// must then observe complete, in-order streams once writes heal — under
// spurious-wakeup and phantom-readable perturbation — and Stop() drains.
// ---------------------------------------------------------------------------

namespace {

uint64_t RunSlowConsumerHerdSchedule(int herd) {
  const int jam_every = 10;
  EventServerOptions options = SmallServerOptions();
  options.io_threads = 4;
  options.max_write_queue_bytes = 2048;
  EventServer server(options);
  EXPECT_TRUE(server.Start().ok());
  const MetricsRegistry& registry = server.engine().metrics_registry();

  std::vector<std::unique_ptr<Client>> healthy;
  std::vector<std::unique_ptr<Client>> jammed;
  for (int i = 0; i < herd; ++i) {
    auto client = std::make_unique<Client>();
    Status st = client->Connect("127.0.0.1", server.port());
    EXPECT_TRUE(st.ok()) << "connection " << i << ": " << st.ToString();
    if (!st.ok()) return 0;
    if (i % jam_every == jam_every - 1) {
      for (uint64_t s = 0; s < 24; ++s) {
        EXPECT_TRUE(client->Subscribe(s, "a0 >= 0").ok());
      }
      jammed.push_back(std::move(client));
    } else {
      EXPECT_TRUE(client->Subscribe(0, "a0 >= 0").ok());
      healthy.push_back(std::move(client));
    }
  }

  // Jam every server-side write and perturb the loop's readiness
  // bookkeeping, then storm: 12 broadcast events, fire-and-forget (a
  // Client would block on its ACK, which is itself jammed). Each jammed
  // connection's 12 fat MATCH frames (~220 B apiece) overflow the 2 KiB
  // bound; each healthy outbox stays an order of magnitude below it.
  EXPECT_TRUE(failpoint::ConfigureFromSpec(
                  "net.server.send.eagain=return,"
                  "net.reactor.wakeup=5%return@71,"
                  "net.reactor.readable=5%return@73")
                  .ok());
  RawConn publisher(server.port());
  for (uint64_t i = 0; i < 12; ++i) {
    publisher.Send(EncodePublish(
        i + 1, Event::Create({{0, static_cast<int64_t>(i)}}).value()));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (CounterValue(registry, "apcm_net_slow_consumer_disconnects_total") <
         jammed.size()) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(failpoint::Hits("net.server.send.eagain"), 0u);
  EXPECT_GT(failpoint::Hits("net.reactor.wakeup"), 0u);

  // Heal the writes (perturbation stays armed); surviving outboxes drain
  // via the stalled-write probe and every healthy subscriber reads its
  // complete stream: all 12 events, publish order, exactly its own sub.
  EXPECT_TRUE(failpoint::Configure("net.server.send.eagain", "off").ok());
  std::map<uint64_t, std::vector<uint64_t>> digest_rows;
  std::vector<uint64_t> reference;
  for (size_t c = 0; c < healthy.size(); ++c) {
    std::vector<uint64_t> ids;
    for (int k = 0; k < 12; ++k) {
      auto match = healthy[c]->PollMatch(/*timeout_ms=*/10000);
      EXPECT_TRUE(match.ok()) << match.status().ToString();
      if (!match.ok() || !match->has_value()) break;
      EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{0}));
      ids.push_back((*match)->event_id);
    }
    EXPECT_EQ(ids.size(), 12u) << "healthy subscriber " << c;
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()))
        << "healthy subscriber " << c << " saw events out of order";
    if (c == 0) {
      reference = ids;
      for (size_t k = 0; k < ids.size(); ++k) digest_rows[k] = {ids[k]};
    } else {
      EXPECT_EQ(ids, reference) << "healthy subscriber " << c;
    }
  }

  // Eviction landed on exactly the jammed cohort: the count matches it and
  // every healthy connection is still alive and serviceable.
  EXPECT_EQ(CounterValue(registry, "apcm_net_slow_consumer_disconnects_total"),
            jammed.size());
  for (auto& client : healthy) EXPECT_TRUE(client->Ping().ok());

  publisher.Close();
  server.Stop();
  return HashMatchSets(digest_rows);
}

}  // namespace

TEST_F(ChaosTest, SlowConsumerHerdEvictsOnlyTheJammedCohort) {
  const uint64_t run1 = RunSlowConsumerHerdSchedule(/*herd=*/1000);
  failpoint::DisarmAll();
  const uint64_t run2 = RunSlowConsumerHerdSchedule(/*herd=*/1000);
  EXPECT_EQ(run1, run2);
}

// ---------------------------------------------------------------------------
// Scenario: torn frames. Seeded probabilistic short reads/writes on both
// sides plus injected EINTR shred every frame boundary; the protocol must
// reassemble perfectly — exact agreement with the fault-free oracle engine.
// ---------------------------------------------------------------------------

namespace {

constexpr char kTornIoFaults[] =
    "net.server.recv.short=35%return(3)@101,"
    "net.client.recv.short=35%return(2)@103,"
    "net.server.send.short=30%return(7)@105,"
    "net.client.send.short=30%return(5)@107,"
    "net.server.recv.eintr=10%return@109,"
    "net.client.recv.eintr=10%return@111";

uint64_t RunTornFrameSchedule(const Workload& workload, size_t expected_rows) {
  EXPECT_TRUE(failpoint::ConfigureFromSpec(kTornIoFaults).ok());

  EventServer server(SmallServerOptions());
  EXPECT_TRUE(server.Start().ok());

  Client subscriber;
  EXPECT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < workload.expressions.size(); ++i) {
    EXPECT_TRUE(subscriber.Subscribe(i, workload.expressions[i]).ok())
        << workload.expressions[i];
  }
  Client publisher;
  EXPECT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> acked;
  for (const Event& event : workload.events) {
    auto id = publisher.Publish(event);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    acked.push_back(*id);
  }

  std::map<uint64_t, std::vector<uint64_t>> received;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (received.size() < expected_rows &&
         std::chrono::steady_clock::now() < deadline) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/100);
    EXPECT_TRUE(match.ok()) << match.status().ToString();
    if (!match.ok() || !match->has_value()) continue;
    std::vector<uint64_t>& row = received[(*match)->event_id];
    row.insert(row.end(), (*match)->sub_ids.begin(), (*match)->sub_ids.end());
  }
  failpoint::DisarmAll();
  server.Stop();

  std::map<uint64_t, std::vector<uint64_t>> by_index;
  for (size_t k = 0; k < acked.size(); ++k) {
    auto it = received.find(acked[k]);
    if (it == received.end()) continue;
    std::vector<uint64_t> row = it->second;
    std::sort(row.begin(), row.end());
    by_index[k] = std::move(row);
  }
  return HashMatchSets(by_index);
}

}  // namespace

TEST_F(ChaosTest, TornFramesReassembleToOracleAgreement) {
  const Workload workload = MakeWorkload(/*seed=*/33, /*subs=*/16,
                                         /*num_events=*/60);
  const std::map<uint64_t, std::vector<uint64_t>> oracle =
      OracleMatchSets(workload, SmallEngineOptions());
  const uint64_t oracle_hash = HashMatchSets(oracle);

  const uint64_t run1 = RunTornFrameSchedule(workload, oracle.size());
  // Hundreds of syscalls at 30-35% injection probability: every short-I/O
  // point must have fired (P[miss] < 2^-100 — deterministic in practice and
  // replayed exactly by the seeds).
  EXPECT_GT(failpoint::Hits("net.server.recv.short"), 0u);
  EXPECT_GT(failpoint::Hits("net.client.recv.short"), 0u);
  EXPECT_GT(failpoint::Hits("net.server.send.short"), 0u);
  EXPECT_GT(failpoint::Hits("net.client.send.short"), 0u);
  const uint64_t run2 = RunTornFrameSchedule(workload, oracle.size());

  EXPECT_EQ(run1, oracle_hash);
  EXPECT_EQ(run2, oracle_hash);
}

// ---------------------------------------------------------------------------
// Scenario: accept() failure (EMFILE). New connections stall — a Ping into
// the unaccepted backlog times out and fails the client — while existing
// ones keep working; connectivity heals the moment the point is disarmed.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, AcceptFailureStallsNewConnectionsUntilDisarmed) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client established;
  ASSERT_TRUE(established.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(established.Ping().ok());

  ASSERT_TRUE(failpoint::Configure("net.server.accept.fail", "return").ok());
  Client stalled;
  // connect() succeeds into the kernel backlog, but the server never
  // accepts; the bounded Ping times out and fails the connection.
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  const Status ping = stalled.Ping(/*timeout_ms=*/500);
  EXPECT_EQ(ping.code(), StatusCode::kIOError) << ping.ToString();
  EXPECT_FALSE(stalled.connected());
  AwaitTrue([] { return failpoint::Hits("net.server.accept.fail") > 0; },
            "accept failpoint never fired");

  // Established connections never noticed.
  ASSERT_TRUE(established.Ping().ok());

  failpoint::DisarmAll();
  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(fresh.Ping().ok());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Scenario: scheduling faults on the trace path. With every event sampled
// (sample_every=1, maximal exposure) the seams inside EventTracer::Admit and
// ::Finalize are perturbed with delays and yields; tracing is observability,
// so the match digest must be bit-identical to the fault-free oracle.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ArmedTraceFaultsNeverChangeMatchDigests) {
  const Workload workload = MakeWorkload(/*seed=*/20260808, /*subs=*/48,
                                         /*num_events=*/96);
  EngineOptions options = SmallEngineOptions();
  options.trace_sample_every = 1;

  const uint64_t oracle_digest =
      HashMatchSets(OracleMatchSets(workload, options));

  const uint64_t claim_hits0 = failpoint::Hits("trace.sample.claim");
  const uint64_t finalize_hits0 = failpoint::Hits("trace.finalize");
  ASSERT_TRUE(
      failpoint::Configure("trace.sample.claim", "25%delay(200)@7").ok());
  ASSERT_TRUE(failpoint::Configure("trace.finalize", "25%yield@11").ok());
  const uint64_t faulted_digest =
      HashMatchSets(OracleMatchSets(workload, options));
  EXPECT_GT(failpoint::Hits("trace.sample.claim"), claim_hits0);
  EXPECT_GT(failpoint::Hits("trace.finalize"), finalize_hits0);
  EXPECT_EQ(faulted_digest, oracle_digest)
      << "trace-path faults leaked into matching";
}

}  // namespace
}  // namespace apcm
