#include "src/index/kindex.h"

#include <gtest/gtest.h>

#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

TEST(KIndexTest, HandWorkload) {
  const workload::Workload workload = HandWorkload();
  index::KIndexMatcher kindex({0, 1'000'000});
  ExpectAgreesWithScan(kindex, workload);
}

class KIndexRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(KIndexRandomTest, AgreesWithScanAcrossDepths) {
  const auto [seed, depth] = GetParam();
  const auto spec = GnarlySpec(seed);
  const workload::Workload workload = workload::Generate(spec).value();
  index::KIndexMatcher kindex({spec.domain_min, spec.domain_max}, depth);
  ExpectAgreesWithScan(kindex, workload);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDepths, KIndexRandomTest,
    ::testing::Combine(::testing::Values(31, 32, 33),
                       // Shallow hierarchies force coarse cells and heavy
                       // verification; deep ones approach exact cells.
                       ::testing::Values(0, 2, 6, 12, 20)));

TEST(KIndexTest, NePredicateNotDoubleCounted) {
  // A != predicate decomposes into two intervals that can share a cell at
  // coarse depth; the posting coalescing must prevent a double hit that
  // would fake a second satisfied predicate.
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(
          0, {Predicate(0, Op::kNe, 50), Predicate(1, Op::kEq, 1)})
          .value());
  // attr0 satisfied, attr1 MISSING: must not match even though the ne
  // predicate could hit twice at depth 0.
  workload.events.push_back(Event::Create({{0, 10}}).value());
  // Both satisfied: must match.
  workload.events.push_back(Event::Create({{0, 10}, {1, 1}}).value());
  index::KIndexMatcher kindex({0, 100}, /*max_depth=*/0);
  const auto results = RunMatcher(kindex, workload);
  EXPECT_TRUE(results[0].empty());
  EXPECT_EQ(results[1], (std::vector<SubscriptionId>{0}));
}

TEST(KIndexTest, SinglePointDomain) {
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(0, {Predicate(0, Op::kEq, 5)}).value());
  workload.events.push_back(Event::Create({{0, 5}}).value());
  index::KIndexMatcher kindex({5, 5});
  const auto results = RunMatcher(kindex, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
}

TEST(KIndexTest, ValuesOutsideDomainAreClamped) {
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(0, {Predicate(0, Op::kLe, 10)}).value());
  // Event value below domain: satisfies the predicate; clamping must still
  // find the posting (verification uses the true value).
  workload.events.push_back(Event::Create({{0, -50}}).value());
  index::KIndexMatcher kindex({0, 100});
  const auto results = RunMatcher(kindex, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
}

TEST(KIndexTest, MatchAllAndEmptyEvents) {
  workload::Workload workload;
  workload.subscriptions.push_back(BooleanExpression::Create(0, {}).value());
  workload.subscriptions.push_back(
      BooleanExpression::Create(1, {Predicate(0, Op::kGe, 0)}).value());
  workload.events.push_back(Event());
  index::KIndexMatcher kindex({0, 100});
  const auto results = RunMatcher(kindex, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
}

TEST(KIndexTest, MemoryGrowsWithSubscriptions) {
  const auto spec_small = GnarlySpec(41);
  auto spec_large = GnarlySpec(41);
  spec_large.num_subscriptions = spec_small.num_subscriptions * 4;
  index::KIndexMatcher small({spec_small.domain_min, spec_small.domain_max});
  index::KIndexMatcher large({spec_large.domain_min, spec_large.domain_max});
  const auto w_small = workload::Generate(spec_small).value();
  const auto w_large = workload::Generate(spec_large).value();
  small.Build(w_small.subscriptions);
  large.Build(w_large.subscriptions);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace apcm
