#include "src/be/event.h"

#include <gtest/gtest.h>

#include "src/be/catalog.h"

namespace apcm {
namespace {

TEST(EventTest, CreateSortsEntries) {
  auto event = Event::Create({{5, 50}, {1, 10}, {3, 30}});
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(event->size(), 3u);
  EXPECT_EQ(event->entries()[0].attr, 1u);
  EXPECT_EQ(event->entries()[1].attr, 3u);
  EXPECT_EQ(event->entries()[2].attr, 5u);
}

TEST(EventTest, CreateRejectsDuplicates) {
  auto event = Event::Create({{1, 10}, {1, 20}});
  EXPECT_EQ(event.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventTest, FindPresentAndAbsent) {
  auto event = Event::Create({{2, 20}, {7, 70}}).value();
  ASSERT_NE(event.Find(2), nullptr);
  EXPECT_EQ(*event.Find(2), 20);
  ASSERT_NE(event.Find(7), nullptr);
  EXPECT_EQ(*event.Find(7), 70);
  EXPECT_EQ(event.Find(1), nullptr);
  EXPECT_EQ(event.Find(5), nullptr);
  EXPECT_EQ(event.Find(100), nullptr);
  EXPECT_TRUE(event.Has(2));
  EXPECT_FALSE(event.Has(3));
}

TEST(EventTest, EmptyEvent) {
  Event event;
  EXPECT_TRUE(event.empty());
  EXPECT_EQ(event.Find(0), nullptr);
  auto created = Event::Create({});
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created->empty());
}

TEST(EventTest, FromSortedFastPath) {
  Event event = Event::FromSorted({{1, 10}, {4, 40}});
  EXPECT_EQ(event.size(), 2u);
  EXPECT_EQ(*event.Find(4), 40);
}

TEST(EventTest, EqualityIsStructural) {
  const Event a = Event::Create({{1, 10}, {2, 20}}).value();
  const Event b = Event::Create({{2, 20}, {1, 10}}).value();
  const Event c = Event::Create({{1, 10}, {2, 21}}).value();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(EventTest, ToStringWithAndWithoutCatalog) {
  const Event event = Event::Create({{0, 5}, {1, -2}}).value();
  EXPECT_EQ(event.ToString(), "attr0=5, attr1=-2");
  Catalog catalog;
  catalog.GetOrAddAttribute("price");
  catalog.GetOrAddAttribute("delta");
  EXPECT_EQ(event.ToString(&catalog), "price=5, delta=-2");
}

TEST(EventTest, NegativeValuesSupported) {
  const Event event = Event::Create({{0, -1000}}).value();
  EXPECT_EQ(*event.Find(0), -1000);
}

}  // namespace
}  // namespace apcm
