#include "src/base/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace apcm {
namespace {

std::vector<double> EmpiricalPmf(const ZipfDistribution& dist, uint64_t n,
                                 int samples, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pmf(n, 0);
  for (int i = 0; i < samples; ++i) {
    const uint64_t rank = dist.Sample(rng);
    EXPECT_LT(rank, n);
    pmf[rank] += 1.0 / samples;
  }
  return pmf;
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  const uint64_t n = 20;
  ZipfDistribution dist(n, 0.0);
  const auto pmf = EmpiricalPmf(dist, n, 200000, 1);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(pmf[k], 1.0 / n, 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, SamplesStayInRange) {
  for (double theta : {0.0, 0.5, 0.99, 1.0, 1.5, 3.0}) {
    ZipfDistribution dist(100, theta);
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
      EXPECT_LT(dist.Sample(rng), 100u) << "theta " << theta;
    }
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  for (double theta : {0.5, 1.0, 1.5}) {
    const uint64_t n = 50;
    ZipfDistribution dist(n, theta);
    const auto pmf = EmpiricalPmf(dist, n, 300000, 7);
    // Check the head ranks, where mass is concentrated.
    for (uint64_t k = 0; k < 5; ++k) {
      EXPECT_NEAR(pmf[k], dist.Pmf(k), 0.01)
          << "theta " << theta << " rank " << k;
    }
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double theta : {0.0, 0.7, 1.0, 2.0}) {
    ZipfDistribution dist(200, theta);
    double sum = 0;
    for (uint64_t k = 0; k < 200; ++k) sum += dist.Pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta " << theta;
  }
}

TEST(ZipfTest, HigherThetaMoreSkewed) {
  const uint64_t n = 100;
  ZipfDistribution mild(n, 0.5);
  ZipfDistribution steep(n, 1.5);
  const auto pmf_mild = EmpiricalPmf(mild, n, 100000, 3);
  const auto pmf_steep = EmpiricalPmf(steep, n, 100000, 3);
  EXPECT_GT(pmf_steep[0], pmf_mild[0]);
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfDistribution dist(1, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Sample(rng), 0u);
  }
  EXPECT_DOUBLE_EQ(dist.Pmf(0), 1.0);
}

TEST(ZipfTest, LargeDomainConstantTimeSampling) {
  // Rejection-inversion must handle huge n without per-sample O(n) work;
  // this would time out if sampling degenerated.
  ZipfDistribution dist(1ULL << 40, 1.2);
  Rng rng(9);
  uint64_t max_rank = 0;
  for (int i = 0; i < 100000; ++i) {
    max_rank = std::max(max_rank, dist.Sample(rng));
  }
  EXPECT_LT(max_rank, 1ULL << 40);
  EXPECT_GT(max_rank, 100u);  // tail is actually reachable
}

}  // namespace
}  // namespace apcm
