// Exposition formats and the admin endpoint: Prometheus text syntax, JSON
// well-formedness, the registry-driven operations report, and end-to-end
// HTTP GETs against a live engine's admin server.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/engine/admin_server.h"
#include "src/engine/engine.h"
#include "src/engine/exposition.h"
#include "src/engine/report.h"

namespace apcm::engine {
namespace {

// ---------------------------------------------------------------------------
// Validity checkers (no third-party parsers available; these accept exactly
// the subset our renderers are allowed to emit).

bool ValidMetricNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

// One Prometheus text-format sample line: name[{label="value",...}] value
bool ValidPrometheusSampleLine(const std::string& line) {
  size_t i = 0;
  if (i >= line.size() || !ValidMetricNameChar(line[i], true)) return false;
  while (i < line.size() && ValidMetricNameChar(line[i], false)) ++i;
  if (i < line.size() && line[i] == '{') {
    const size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    // Labels: key="value" pairs separated by commas.
    std::string labels = line.substr(i + 1, close - i - 1);
    std::stringstream ss(labels);
    std::string pair;
    while (std::getline(ss, pair, ',')) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      const std::string value = pair.substr(eq + 1);
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        return false;
      }
    }
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  // Remainder must parse as a double with no trailing junk.
  const std::string value = line.substr(i + 1);
  if (value.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(value.c_str(), &end);
  return end == value.c_str() + value.size();
}

// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
// true/false/null). Returns true iff `text` is one complete JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Blocking HTTP/1.0 GET against 127.0.0.1:port; returns the raw response
// (status line + headers + body) or "" on connect failure.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = request_line + "\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

MetricsRegistry* SampleRegistry() {
  auto* registry = new MetricsRegistry();
  Counter* c = registry->AddCounter("demo_events_total", "events seen");
  c->Increment(1234);
  Gauge* g = registry->AddGauge("demo_queue_depth", "queued events");
  g->Set(-5);
  ShardedHistogram* h = registry->AddHistogram("demo_latency_ns", "latency");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);
  return registry;
}

// ---------------------------------------------------------------------------
// Exposition format tests.

TEST(PrometheusTest, GoldenSubstrings) {
  std::unique_ptr<MetricsRegistry> registry(SampleRegistry());
  const std::string text = RenderPrometheus(*registry);
  for (const char* needle :
       {"# HELP demo_events_total events seen",
        "# TYPE demo_events_total counter", "demo_events_total 1234",
        "# TYPE demo_queue_depth gauge", "demo_queue_depth -5",
        "# TYPE demo_latency_ns summary",
        "demo_latency_ns{quantile=\"0.5\"}", "demo_latency_ns_sum",
        "demo_latency_ns_count 100"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << text;
  }
}

TEST(PrometheusTest, EveryLineIsValid) {
  std::unique_ptr<MetricsRegistry> registry(SampleRegistry());
  const std::string text = RenderPrometheus(*registry);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::stringstream ss(text);
  std::string line;
  int samples = 0;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "bad comment line: " << line;
      continue;
    }
    EXPECT_TRUE(ValidPrometheusSampleLine(line)) << "bad sample: " << line;
    ++samples;
  }
  // 1 counter + 1 gauge + (4 quantiles + sum + count) = 8 sample lines.
  EXPECT_EQ(samples, 8);
}

TEST(MetricsJsonTest, ParsesAndCarriesValues) {
  std::unique_ptr<MetricsRegistry> registry(SampleRegistry());
  const std::string json = RenderMetricsJson(*registry);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* needle :
       {"\"demo_events_total\"", "\"counter\"", "\"demo_queue_depth\"",
        "\"gauge\"", "\"demo_latency_ns\"", "\"histogram\"", "\"p99\"",
        "\"count\":100"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << json;
  }
}

TEST(MetricsJsonTest, EscapesHelpStrings) {
  MetricsRegistry registry;
  registry.AddCounter("esc_total", "say \"hi\"\\ and\nnewline");
  const std::string json = RenderMetricsJson(registry);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// Report tests.

EngineOptions ReportOptions() {
  EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  return options;
}

TEST(ReportTest, LiveEngineReportHasRegistryMetrics) {
  StreamEngine engine(ReportOptions(),
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  const std::string report = RenderReport(engine);
  for (const char* needle :
       {"subscriptions (live)", "apcm_events_published_total",
        "apcm_queue_depth", "apcm_batch_latency_ns",
        "apcm_matcher_candidates_checked_total"}) {
    EXPECT_NE(report.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << report;
  }
  // Every line is "key: value".
  std::stringstream ss(report);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find(':'), std::string::npos) << "bad line: " << line;
  }
}

TEST(ReportTest, MatcherStatsRendering) {
  MatcherStats stats;
  stats.events_matched = 7;
  stats.predicate_evals = 1000;
  const std::string line = RenderMatcherStats(stats);
  EXPECT_NE(line.find("events=7"), std::string::npos);
  EXPECT_NE(line.find("predicate_evals=1,000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin server end-to-end.

TEST(AdminServerTest, ServesRegisteredHandlers) {
  AdminServer server;
  server.Handle("/hello", [](std::string_view query) {
    AdminResponse response;
    response.body = "world";
    if (!query.empty()) {
      response.body += " query=" + std::string(query);
    }
    response.body += "\n";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string ok = HttpGet(server.port(), "GET /hello HTTP/1.0");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("world"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Length: 6"), std::string::npos) << ok;

  // Query strings are stripped before routing and handed to the handler.
  const std::string query =
      HttpGet(server.port(), "GET /hello?verbose=1 HTTP/1.0");
  EXPECT_NE(query.find("200 OK"), std::string::npos) << query;
  EXPECT_NE(query.find("query=verbose=1"), std::string::npos) << query;

  const std::string missing = HttpGet(server.port(), "GET /nope HTTP/1.0");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  const std::string post = HttpGet(server.port(), "POST /hello HTTP/1.0");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  server.Stop();
  server.Stop();  // idempotent
}

TEST(AdminServerTest, StartTwiceFails) {
  AdminServer server;
  server.Handle("/x", [](std::string_view) { return AdminResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

TEST(AdminServerTest, EngineEndpointsRespond) {
  EngineOptions options = ReportOptions();
  options.admin_port = -1;  // kernel-assigned ephemeral port
  StreamEngine engine(options,
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  ASSERT_GT(engine.admin_port(), 0);
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();

  const std::string health =
      HttpGet(engine.admin_port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos) << health;

  const std::string metrics =
      HttpGet(engine.admin_port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("apcm_events_published_total 1"), std::string::npos)
      << metrics;

  const std::string json =
      HttpGet(engine.admin_port(), "GET /metrics.json HTTP/1.0");
  const size_t body_at = json.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = json.substr(body_at + 4);
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;

  const std::string report =
      HttpGet(engine.admin_port(), "GET /report HTTP/1.0");
  EXPECT_NE(report.find("subscriptions (live)"), std::string::npos);

  const std::string trace = HttpGet(engine.admin_port(), "GET /trace HTTP/1.0");
  const size_t trace_body_at = trace.find("\r\n\r\n");
  ASSERT_NE(trace_body_at, std::string::npos);
  EXPECT_TRUE(JsonChecker(trace.substr(trace_body_at + 4)).Valid()) << trace;
  EXPECT_NE(trace.find("round_start"), std::string::npos) << trace;
}

TEST(AdminServerTest, SubscriptionsEndpointReportsShardBreakdown) {
  EngineOptions options = ReportOptions();
  options.admin_port = -1;
  options.num_shards = 4;
  StreamEngine engine(options,
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  ASSERT_GT(engine.admin_port(), 0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, i)}).ok());
  }

  const std::string response =
      HttpGet(engine.admin_port(), "GET /subscriptions HTTP/1.0");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"total\":16"), std::string::npos) << body;
  EXPECT_NE(body.find("\"num_shards\":4"), std::string::npos) << body;
  EXPECT_NE(body.find("\"per_shard\":["), std::string::npos) << body;

  // The per-shard counts must agree with the engine's own breakdown.
  const std::vector<size_t> counts = engine.SubscriptionShardCounts();
  ASSERT_EQ(counts.size(), 4u);
  std::string rendered = "[";
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) rendered += ',';
    rendered += std::to_string(counts[i]);
  }
  rendered += ']';
  EXPECT_NE(body.find(rendered), std::string::npos) << body;
}

TEST(AdminServerTest, HealthzUptimeBuildInfoAndStageSeries) {
  EngineOptions options = ReportOptions();
  options.admin_port = -1;
  StreamEngine engine(options,
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  ASSERT_GT(engine.admin_port(), 0);

  const std::string health =
      HttpGet(engine.admin_port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("uptime_seconds="), std::string::npos) << health;

  const std::string metrics =
      HttpGet(engine.admin_port(), "GET /metrics HTTP/1.0");
  // Build identity rides in the apcm_build_info labels; the gauge is 1.
  EXPECT_NE(metrics.find("apcm_build_info{version="), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("simd="), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("failpoints="), std::string::npos) << metrics;
  // One labeled latency series per pipeline stage plus the total, present
  // (if empty) from startup so scrape schemas are stable.
  for (const char* stage :
       {"read", "admit", "queue", "match", "deliver", "write", "total"}) {
    const std::string needle =
        std::string("apcm_stage_latency_ns{stage=\"") + stage + "\"";
    EXPECT_NE(metrics.find(needle), std::string::npos)
        << "missing " << needle;
  }
  EXPECT_NE(metrics.find("apcm_trace_spans_dropped_total"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("apcm_traces_completed_total"), std::string::npos)
      << metrics;
}

TEST(AdminServerTest, HotspotsEndpointRanksPlantedExpensiveCluster) {
  EngineOptions options = ReportOptions();
  options.admin_port = -1;
  options.matcher.pcm.hotspot_every = 1;  // profile every batch
  options.matcher.pcm.clustering.cluster_size = 8;
  StreamEngine engine(options,
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  ASSERT_GT(engine.admin_port(), 0);
  // Plant: subscriptions 0..7 live on attribute 0, which every event
  // carries, so their cluster does real predicate work. Subscriptions 8..15
  // live on attribute 9, absent from every event — their cluster is pruned
  // by the access predicate and stays cheap.
  std::set<SubscriptionId> expensive_subs;
  for (int i = 0; i < 8; ++i) {
    auto added = engine.AddSubscription({Predicate(0, Op::kGe, i)});
    ASSERT_TRUE(added.ok());
    expensive_subs.insert(*added);
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.AddSubscription({Predicate(9, Op::kGe, i)}).ok());
  }
  for (int i = 0; i < 200; ++i) {
    engine.Publish(Event::Create({{0, 100 + i}}).value());
  }
  engine.Flush();

  const std::vector<HotspotEntry> hotspots = engine.CollectHotspots(0);
  ASSERT_FALSE(hotspots.empty());
  // Ranked by accumulated wall time, so the planted expensive cluster (the
  // one holding the attribute-0 subscriptions) must surface as top-1.
  EXPECT_GT(hotspots[0].batches, 0u);
  EXPECT_GT(hotspots[0].predicate_evals, 0u);
  EXPECT_TRUE(expensive_subs.contains(hotspots[0].example_sub))
      << "top hotspot should be the attribute-0 cluster, got example_sub="
      << hotspots[0].example_sub;
  for (size_t i = 1; i < hotspots.size(); ++i) {
    EXPECT_GE(hotspots[i - 1].ns, hotspots[i].ns) << "not sorted by ns";
  }

  const std::string response =
      HttpGet(engine.admin_port(), "GET /hotspots HTTP/1.0");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"hotspots\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"predicate_evals\":"), std::string::npos) << body;

  // k= caps the list: exactly one entry, and it agrees with CollectHotspots.
  const std::string top1 =
      HttpGet(engine.admin_port(), "GET /hotspots?k=1 HTTP/1.0");
  const size_t top1_at = top1.find("\r\n\r\n");
  ASSERT_NE(top1_at, std::string::npos);
  const std::string top1_body = top1.substr(top1_at + 4);
  EXPECT_TRUE(JsonChecker(top1_body).Valid()) << top1_body;
  size_t entries = 0;
  for (size_t pos = top1_body.find("\"cluster\":"); pos != std::string::npos;
       pos = top1_body.find("\"cluster\":", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << top1_body;
}

TEST(AdminServerTest, DisabledByDefault) {
  StreamEngine engine(ReportOptions(),
                      [](uint64_t, const std::vector<SubscriptionId>&) {});
  EXPECT_EQ(engine.admin_port(), 0);
}

}  // namespace
}  // namespace apcm::engine
