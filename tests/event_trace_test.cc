// EventTracer and TraceRing unit suite: sampling arithmetic, the
// refcounted stage lifecycle (including the delivery-beats-admission race
// and slot stealing), histogram/ring emission at finalize, and a
// multi-threaded ring churn test sized for the TSan replay in
// scripts/check.sh --tsan.

#include "src/engine/event_trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/metrics.h"
#include "src/engine/trace_ring.h"

namespace apcm::engine {
namespace {

/// Spans of one trace id, in ring order.
std::vector<TraceRing::Span> StageSpans(const TraceRing& ring,
                                        uint64_t trace_id) {
  std::vector<TraceRing::Span> spans;
  for (const TraceRing::Span& span : ring.Snapshot()) {
    if (span.kind == TraceRing::Kind::kEventStage && span.a == trace_id) {
      spans.push_back(span);
    }
  }
  return spans;
}

TEST(EventTracerTest, DisabledTracerSamplesNothing) {
  EventTracer tracer(EventTracer::Options{.sample_every = 0}, nullptr);
  EXPECT_FALSE(tracer.enabled());
  for (uint64_t id : {0ull, 1ull, 64ull, 4096ull}) {
    EXPECT_FALSE(tracer.Sampled(id));
  }
  // Every mutation is a no-op on unsampled ids; nothing finalizes.
  tracer.Admit(0, IngressTrace{}, tracer.NowNs());
  tracer.CompleteStage(0, EventTracer::kDeliver, tracer.NowNs());
  EXPECT_EQ(tracer.completed(), 0u);
}

TEST(EventTracerTest, SampleEveryRoundsUpToPowerOfTwo) {
  EventTracer tracer(EventTracer::Options{.sample_every = 3}, nullptr);
  // 3 rounds up to 4: ids divisible by 4 are sampled.
  EXPECT_TRUE(tracer.Sampled(0));
  EXPECT_FALSE(tracer.Sampled(1));
  EXPECT_FALSE(tracer.Sampled(3));
  EXPECT_TRUE(tracer.Sampled(4));
  EXPECT_TRUE(tracer.Sampled(8));
  EXPECT_FALSE(tracer.Sampled(6));
}

TEST(EventTracerTest, FullLifecycleEmitsStagesHistogramsAndRing) {
  TraceRing ring(64);
  EventTracer tracer(EventTracer::Options{.sample_every = 1}, &ring);
  ShardedHistogram stage_hist[EventTracer::kNumStages + 1];
  for (uint32_t s = 0; s <= EventTracer::kNumStages; ++s) {
    tracer.set_stage_histogram(s, &stage_hist[s]);
  }

  const uint64_t event_id = 8;
  const uint64_t trace_id = 0xabcdef12345678ull;
  // Engine order: admit (with wire-read context), queue, match, then the
  // transport adds a write reference inside delivery, deliver completes,
  // write completes last.
  tracer.Admit(event_id, IngressTrace{trace_id, 100}, 200);
  tracer.RecordStage(event_id, EventTracer::kQueue, 300);
  tracer.RecordStage(event_id, EventTracer::kMatch, 400);
  tracer.AddPending(event_id, 1);
  tracer.CompleteStage(event_id, EventTracer::kDeliver, 500);
  EXPECT_EQ(tracer.completed(), 0u) << "write reference still outstanding";
  EXPECT_EQ(tracer.TraceIdFor(event_id), trace_id);
  tracer.CompleteStage(event_id, EventTracer::kWrite, 600);
  EXPECT_EQ(tracer.completed(), 1u);
  EXPECT_EQ(tracer.slots_stolen(), 0u);

  // Each stage's histogram got the delta to the previous stage; the total
  // series got last - first.
  const int64_t expected_delta[EventTracer::kNumStages] = {0,   100, 100,
                                                           100, 100, 100};
  for (uint32_t s = 0; s < EventTracer::kNumStages; ++s) {
    const Histogram h = stage_hist[s].Snapshot();
    ASSERT_EQ(h.count(), 1u) << EventTracer::StageName(s);
    EXPECT_EQ(h.max(), expected_delta[s]) << EventTracer::StageName(s);
  }
  const Histogram total = stage_hist[EventTracer::kNumStages].Snapshot();
  ASSERT_EQ(total.count(), 1u);
  EXPECT_EQ(total.max(), 500);

  // The ring holds one span per stage, labeled with the trace id, carrying
  // the stage index and its completion timestamp in order.
  const std::vector<TraceRing::Span> spans = StageSpans(ring, trace_id);
  ASSERT_EQ(spans.size(), static_cast<size_t>(EventTracer::kNumStages));
  int64_t prev_ts = 0;
  for (uint32_t s = 0; s < EventTracer::kNumStages; ++s) {
    EXPECT_EQ(spans[s].b, s);
    EXPECT_GT(static_cast<int64_t>(spans[s].c), prev_ts);
    prev_ts = static_cast<int64_t>(spans[s].c);
  }
}

TEST(EventTracerTest, DeliveryCompletingBeforeAdmitStillFinalizes) {
  TraceRing ring(64);
  EventTracer tracer(EventTracer::Options{.sample_every = 1}, &ring);
  const uint64_t event_id = 16;
  // The processing round can outrun the admitting thread: the delivery
  // reference is released (pending dips to -1) before Admit publishes it.
  tracer.RecordStage(event_id, EventTracer::kQueue, 300);
  tracer.RecordStage(event_id, EventTracer::kMatch, 400);
  tracer.CompleteStage(event_id, EventTracer::kDeliver, 500);
  EXPECT_EQ(tracer.completed(), 0u) << "must not finalize before admission";
  tracer.Admit(event_id, IngressTrace{}, 200);
  EXPECT_EQ(tracer.completed(), 1u) << "Admit's increment finalizes at zero";
}

TEST(EventTracerTest, AbandonedWriteFinalizesWithoutWriteStamp) {
  TraceRing ring(64);
  EventTracer tracer(EventTracer::Options{.sample_every = 1}, &ring);
  const uint64_t event_id = 24;
  tracer.Admit(event_id, IngressTrace{}, 100);
  const uint64_t trace_id = tracer.TraceIdFor(event_id);
  ASSERT_NE(trace_id, 0u);
  tracer.AddPending(event_id, 2);  // two subscriber connections owe writes
  tracer.CompleteStage(event_id, EventTracer::kDeliver, 200);
  // One write lands, the other connection dies before flushing.
  tracer.CompleteStage(event_id, EventTracer::kWrite, 300);
  EXPECT_EQ(tracer.completed(), 0u);
  tracer.AbandonPending(event_id);
  EXPECT_EQ(tracer.completed(), 1u);
  // The write stage was still stamped once (by the connection that did
  // flush), so its span is present exactly once.
  size_t write_spans = 0;
  for (const TraceRing::Span& span : StageSpans(ring, trace_id)) {
    if (span.b == EventTracer::kWrite) ++write_spans;
  }
  EXPECT_EQ(write_spans, 1u);
}

TEST(EventTracerTest, OccupiedSlotIsStolenByNewerTrace) {
  EventTracer tracer(EventTracer::Options{.sample_every = 1}, nullptr);
  // With sample_every=1 the slot table (512 entries) maps ids 0 and 512 to
  // the same slot. Leave the first trace in flight, then admit the
  // colliding id: the old trace is dropped, the new one proceeds.
  tracer.Admit(0, IngressTrace{}, 100);
  tracer.AddPending(0, 1);  // never released: simulates a wedged writer
  tracer.CompleteStage(0, EventTracer::kDeliver, 200);
  EXPECT_EQ(tracer.completed(), 0u);
  tracer.Admit(512, IngressTrace{}, 300);
  EXPECT_EQ(tracer.slots_stolen(), 1u);
  tracer.CompleteStage(512, EventTracer::kDeliver, 400);
  EXPECT_EQ(tracer.completed(), 1u) << "stolen slot serves the new trace";
  // Straggling mutations for the evicted event drop on the key check.
  tracer.CompleteStage(0, EventTracer::kWrite, 500);
  EXPECT_EQ(tracer.completed(), 1u);
}

TEST(TraceRingTest, DroppedCountsOverwrittenSpans) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 5; ++i) ring.Record(TraceRing::Kind::kRoundStart, i);
  EXPECT_EQ(ring.dropped(), 0u);
  for (int i = 5; i < 20; ++i) ring.Record(TraceRing::Kind::kRoundStart, i);
  EXPECT_EQ(ring.total_recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  // The snapshot holds the most recent capacity() spans, oldest first.
  const std::vector<TraceRing::Span> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(spans.front().a, 12u);
  EXPECT_EQ(spans.back().a, 19u);
}

TEST(TraceRingTest, ConcurrentChurnKeepsCountsAndSnapshotsConsistent) {
  // Hammer a tiny ring from several writers while a reader snapshots
  // continuously; TSan (scripts/check.sh --tsan) replays this to prove the
  // seqlock protocol is race-free. Every accepted snapshot span must be
  // internally consistent — a torn read would surface as a span whose
  // payload disagrees with its sequence stamp.
  TraceRing ring(16);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceRing::Span& span : ring.Snapshot()) {
        ASSERT_EQ(span.kind, TraceRing::Kind::kEventStage);
        // Writers store a == b for every span; a torn payload breaks it.
        ASSERT_EQ(span.a, span.b);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t tag = static_cast<uint64_t>(w) * kPerWriter + i;
        ring.Record(TraceRing::Kind::kEventStage, tag, tag);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.total_recorded(), kWriters * kPerWriter);
  EXPECT_EQ(ring.dropped(), kWriters * kPerWriter - ring.capacity());
  EXPECT_LE(ring.Snapshot().size(), ring.capacity());
}

}  // namespace
}  // namespace apcm::engine
