#include "src/core/osr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/workload/generator.h"

namespace apcm::core {
namespace {

Event E(std::vector<Event::Entry> entries) {
  return Event::Create(std::move(entries)).value();
}

TEST(OsrTest, SimilarityLessOrdersByAttributesFirst) {
  EXPECT_TRUE(EventSimilarityLess(E({{1, 9}}), E({{2, 0}})));
  EXPECT_FALSE(EventSimilarityLess(E({{2, 0}}), E({{1, 9}})));
  // Same attrs: shorter first.
  EXPECT_TRUE(EventSimilarityLess(E({{1, 1}}), E({{1, 1}, {2, 2}})));
  // Same attrs and sizes: values break the tie.
  EXPECT_TRUE(EventSimilarityLess(E({{1, 1}}), E({{1, 2}})));
  // Identical events: neither is less.
  EXPECT_FALSE(EventSimilarityLess(E({{1, 1}}), E({{1, 1}})));
}

TEST(OsrTest, WindowOrderIsPermutation) {
  workload::WorkloadSpec spec;
  spec.seed = 5;
  spec.num_subscriptions = 10;
  spec.num_events = 300;
  spec.num_attributes = 20;
  spec.max_predicates = 3;
  spec.min_predicates = 1;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 6;
  auto workload = workload::Generate(spec).value();
  for (uint32_t window : {0u, 1u, 7u, 64u, 300u, 1000u}) {
    OsrOptions options;
    options.window_size = window;
    const auto order = ReorderStream(workload.events, options);
    ASSERT_EQ(order.size(), workload.events.size()) << "window " << window;
    std::set<uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), order.size()) << "window " << window;
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), order.size() - 1);
  }
}

TEST(OsrTest, WindowOneIsIdentity) {
  std::vector<Event> events = {E({{2, 1}}), E({{1, 1}}), E({{0, 1}})};
  OsrOptions options;
  options.window_size = 1;
  EXPECT_EQ(ReorderStream(events, options),
            (std::vector<uint32_t>{0, 1, 2}));
  options.window_size = 0;
  EXPECT_EQ(ReorderStream(events, options),
            (std::vector<uint32_t>{0, 1, 2}));
}

TEST(OsrTest, ReorderingStaysWithinWindows) {
  // 4 events, window 2: element 0/1 can only swap with each other.
  std::vector<Event> events = {E({{5, 0}}), E({{1, 0}}), E({{9, 0}}),
                               E({{2, 0}})};
  OsrOptions options;
  options.window_size = 2;
  const auto order = ReorderStream(events, options);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0, 3, 2}));
}

TEST(OsrTest, IdenticalAttributeSetsBecomeAdjacent) {
  // Interleaved stream over two attribute-set templates.
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(E({{1, i}, {2, i}}));
    events.push_back(E({{7, i}, {8, i}}));
  }
  OsrOptions options;
  options.window_size = 20;
  const auto order = ReorderStream(events, options);
  // After re-ordering, the first 10 positions all hold template-A events.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)] % 2, 0u) << i;
  }
  for (int i = 10; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)] % 2, 1u) << i;
  }
}

TEST(OsrTest, StableForEqualEvents) {
  std::vector<Event> events = {E({{1, 5}}), E({{1, 5}}), E({{0, 0}})};
  OsrOptions options;
  options.window_size = 3;
  // Equal events keep their stream order: 2 (smaller attrs) then 0, 1.
  EXPECT_EQ(ReorderStream(events, options),
            (std::vector<uint32_t>{2, 0, 1}));
}

TEST(OsrTest, ApplyOrderMaterializes) {
  std::vector<Event> events = {E({{3, 3}}), E({{1, 1}}), E({{2, 2}})};
  const std::vector<uint32_t> order = {1, 2, 0};
  const auto reordered = ApplyOrder(events, order);
  EXPECT_EQ(reordered[0], events[1]);
  EXPECT_EQ(reordered[1], events[2]);
  EXPECT_EQ(reordered[2], events[0]);
}

TEST(OsrTest, EmptyStream) {
  OsrOptions options;
  EXPECT_TRUE(ReorderStream({}, options).empty());
}

TEST(OsrTest, RecoversShuffledLocality) {
  // A bursty stream destroyed by shuffling: OSR with a full window restores
  // adjacency of equal attribute sets.
  workload::WorkloadSpec spec;
  spec.seed = 6;
  spec.num_subscriptions = 10;
  spec.num_events = 200;
  spec.num_attributes = 30;
  spec.min_predicates = 1;
  spec.max_predicates = 3;
  spec.min_event_attrs = 3;
  spec.max_event_attrs = 6;
  spec.event_locality = 0.95;
  spec.seeded_event_fraction = 0;
  auto workload = workload::Generate(spec).value();
  auto signature = [](const Event& e) {
    std::string s;
    for (const auto& entry : e.entries()) {
      s += std::to_string(entry.attr) + ",";
    }
    return s;
  };
  auto count_signature_runs = [&](const std::vector<Event>& events) {
    int runs = events.empty() ? 0 : 1;
    for (size_t i = 1; i < events.size(); ++i) {
      if (signature(events[i]) != signature(events[i - 1])) ++runs;
    }
    return runs;
  };
  std::vector<Event> shuffled = workload.events;
  workload::ShuffleEvents(&shuffled, 17);
  OsrOptions options;
  options.window_size = static_cast<uint32_t>(shuffled.size());
  const auto reordered = ApplyOrder(shuffled, ReorderStream(shuffled, options));
  EXPECT_LT(count_signature_runs(reordered),
            count_signature_runs(shuffled) / 2);
}

}  // namespace
}  // namespace apcm::core
