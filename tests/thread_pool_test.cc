#include "src/base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <vector>

namespace apcm {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> touched(100, 0);
  pool.ParallelFor(100, [&](uint64_t begin, uint64_t end, int worker) {
    EXPECT_EQ(worker, 0);
    for (uint64_t i = begin; i < end; ++i) touched[i]++;
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 2, 3, 4, 8}) {
    ThreadPool pool(threads);
    for (uint64_t n : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL}) {
      std::vector<std::atomic<int>> touched(n);
      pool.ParallelFor(n, [&](uint64_t begin, uint64_t end, int) {
        for (uint64_t i = begin; i < end; ++i) {
          touched[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(touched[i].load(), 1)
            << "n=" << n << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::vector<std::pair<uint64_t, uint64_t>> shards(4, {0, 0});
  pool.ParallelFor(103, [&](uint64_t begin, uint64_t end, int worker) {
    shards[static_cast<size_t>(worker)] = {begin, end};
  });
  uint64_t expected_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GE(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, WorkerIndicesAreDistinct) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.ParallelFor(4, [&](uint64_t begin, uint64_t end, int worker) {
    for (uint64_t i = begin; i < end; ++i) {
      seen[static_cast<size_t>(worker)].fetch_add(1);
    }
  });
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 4);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitWaitOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmitWithFutureSignalsCompletion) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.SubmitWithFuture(
        [&] { counter.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.wait();
  // Every future resolving implies every task body has completed.
  EXPECT_EQ(counter.load(), 20);
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitWithFutureOnSingleThreadPoolResolvesInWait) {
  // ThreadPool(1) has no workers: tasks (and their futures) only resolve
  // once Wait() drains the queue on the calling thread.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto future = pool.SubmitWithFuture([&] { counter.fetch_add(1); });
  EXPECT_EQ(future.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  pool.Wait();
  EXPECT_EQ(future.wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready);
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::vector<int64_t> partial(4, 0);
  pool.ParallelFor(data.size(), [&](uint64_t begin, uint64_t end, int w) {
    int64_t sum = 0;
    for (uint64_t i = begin; i < end; ++i) sum += data[i];
    partial[static_cast<size_t>(w)] += sum;
  });
  const int64_t total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 10000LL * 10001 / 2);
}

TEST(ThreadPoolTest, RepeatedParallelForReusesWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(10, [&](uint64_t begin, uint64_t end, int) {
      total.fetch_add(static_cast<int>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](uint64_t begin, uint64_t end, int) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace apcm
