#include "src/core/pcm.h"

#include <gtest/gtest.h>

#include "tests/matcher_test_util.h"

namespace apcm::core {
namespace {

PcmOptions BaseOptions() {
  PcmOptions options;
  options.clustering.cluster_size = 64;
  return options;
}

TEST(PcmTest, HandWorkloadAllModes) {
  for (PcmMode mode :
       {PcmMode::kCompressed, PcmMode::kLazy, PcmMode::kAdaptive}) {
    PcmOptions options = BaseOptions();
    options.mode = mode;
    PcmMatcher matcher(options);
    const auto workload = HandWorkload();
    ExpectAgreesWithScan(matcher, workload);
  }
}

struct PcmParam {
  PcmMode mode;
  int threads;
  bool share_absence;
  uint32_t cluster_size;
};

class PcmRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, PcmParam>> {};

TEST_P(PcmRandomTest, AgreesWithScan) {
  const auto [seed, param] = GetParam();
  PcmOptions options;
  options.mode = param.mode;
  options.num_threads = param.threads;
  options.share_absence_phase = param.share_absence;
  options.clustering.cluster_size = param.cluster_size;
  PcmMatcher matcher(options);
  const auto workload = workload::Generate(GnarlySpec(seed)).value();
  ExpectAgreesWithScan(matcher, workload);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PcmRandomTest,
    ::testing::Combine(
        ::testing::Values(91, 92),
        ::testing::Values(
            PcmParam{PcmMode::kCompressed, 1, true, 64},
            PcmParam{PcmMode::kCompressed, 1, false, 64},
            PcmParam{PcmMode::kCompressed, 4, true, 64},
            PcmParam{PcmMode::kLazy, 1, true, 64},
            PcmParam{PcmMode::kLazy, 3, true, 128},
            PcmParam{PcmMode::kAdaptive, 1, true, 64},
            PcmParam{PcmMode::kAdaptive, 4, true, 32},
            PcmParam{PcmMode::kCompressed, 1, true, 1},
            PcmParam{PcmMode::kCompressed, 2, true, 1000})));

TEST(PcmTest, EventParallelAgreesWithClusterParallel) {
  const auto workload = workload::Generate(GnarlySpec(90)).value();
  for (PcmMode mode :
       {PcmMode::kCompressed, PcmMode::kLazy, PcmMode::kAdaptive}) {
    PcmOptions options = BaseOptions();
    options.mode = mode;
    options.num_threads = 3;
    options.parallelism = ParallelismMode::kEventParallel;
    PcmMatcher matcher(options);
    ExpectAgreesWithScan(matcher, workload);

    // Batch API across both partitionings.
    PcmMatcher event_parallel(options);
    event_parallel.Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> ep_results;
    event_parallel.MatchBatch(workload.events, &ep_results);

    options.parallelism = ParallelismMode::kClusterParallel;
    PcmMatcher cluster_parallel(options);
    cluster_parallel.Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> cp_results;
    cluster_parallel.MatchBatch(workload.events, &cp_results);
    EXPECT_EQ(ep_results, cp_results);
  }
}

TEST(PcmTest, ParallelismModeNames) {
  EXPECT_STREQ(ParallelismModeName(ParallelismMode::kClusterParallel),
               "cluster-parallel");
  EXPECT_STREQ(ParallelismModeName(ParallelismMode::kEventParallel),
               "event-parallel");
}

TEST(PcmTest, BatchMatchesSingleEventApi) {
  const auto workload = workload::Generate(GnarlySpec(93)).value();
  PcmOptions options = BaseOptions();
  PcmMatcher batch_matcher(options);
  batch_matcher.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> batch_results;
  batch_matcher.MatchBatch(workload.events, &batch_results);

  PcmMatcher single_matcher(options);
  const auto single_results = RunMatcher(single_matcher, workload);
  EXPECT_EQ(batch_results, single_results);
}

TEST(PcmTest, AdaptiveConvergesToCheaperMode) {
  // Low match probability, no sharing: lazy short-circuit should win, so
  // after warmup most batches run lazy.
  workload::WorkloadSpec spec = GnarlySpec(94);
  spec.seeded_event_fraction = 0.0;  // nothing matches -> lazy exits fast
  spec.num_events = 64;
  const auto workload = workload::Generate(spec).value();
  PcmOptions options = BaseOptions();
  options.mode = PcmMode::kAdaptive;
  options.epsilon = 0.0;  // pure exploitation after warmup
  PcmMatcher matcher(options);
  matcher.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> results;
  for (int round = 0; round < 20; ++round) {
    matcher.MatchBatch(workload.events, &results);
  }
  const auto counters = matcher.adaptive_counters();
  // Warmup samples both; afterwards one mode dominates. We only assert that
  // adaptation happened (both were tried) and a winner emerged.
  EXPECT_GT(counters.compressed_batches, 0u);
  EXPECT_GT(counters.lazy_batches, 0u);
  EXPECT_NE(counters.compressed_batches, counters.lazy_batches);
}

TEST(PcmTest, CompressionRatioAtLeastOne) {
  const auto workload = workload::Generate(GnarlySpec(95)).value();
  PcmMatcher matcher(BaseOptions());
  matcher.Build(workload.subscriptions);
  EXPECT_GE(matcher.CompressionRatio(), 1.0);
  EXPECT_GT(matcher.MemoryBytes(), 0u);
  EXPECT_FALSE(matcher.clusters().empty());
}

TEST(PcmTest, EmptySubscriptionSet) {
  PcmMatcher matcher(BaseOptions());
  matcher.Build({});
  std::vector<SubscriptionId> matches{99};
  matcher.Match(Event::Create({{0, 1}}).value(), &matches);
  EXPECT_TRUE(matches.empty());
}

TEST(PcmTest, EmptyBatch) {
  const auto workload = workload::Generate(GnarlySpec(96)).value();
  PcmMatcher matcher(BaseOptions());
  matcher.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> results;
  matcher.MatchBatch({}, &results);
  EXPECT_TRUE(results.empty());
}

TEST(PcmTest, StatsAccumulateAcrossBatches) {
  const auto workload = workload::Generate(GnarlySpec(97)).value();
  PcmMatcher matcher(BaseOptions());
  matcher.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> results;
  matcher.MatchBatch(workload.events, &results);
  const uint64_t events_after_one = matcher.stats().events_matched;
  matcher.MatchBatch(workload.events, &results);
  EXPECT_EQ(matcher.stats().events_matched, 2 * events_after_one);
}

TEST(PcmTest, DeterministicAcrossRuns) {
  const auto workload = workload::Generate(GnarlySpec(98)).value();
  auto run = [&] {
    PcmOptions options = BaseOptions();
    options.mode = PcmMode::kAdaptive;
    PcmMatcher matcher(options);
    matcher.Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> results;
    matcher.MatchBatch(workload.events, &results);
    matcher.MatchBatch(workload.events, &results);
    return results;
  };
  EXPECT_EQ(run(), run());
}

TEST(PcmTest, SharedAbsencePhaseWithIdenticalSignatureRuns) {
  // A stream of events with identical attribute sets (values differ):
  // sharing must not change results and must reduce work.
  workload::WorkloadSpec spec = GnarlySpec(99);
  spec.event_locality = 1.0;  // every event reuses the first attribute set
  spec.seeded_event_fraction = 0.0;
  const auto workload = workload::Generate(spec).value();

  auto run = [&](bool share) {
    PcmOptions options = BaseOptions();
    options.share_absence_phase = share;
    PcmMatcher matcher(options);
    matcher.Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> results;
    matcher.MatchBatch(workload.events, &results);
    return std::make_pair(results, matcher.stats().bitmap_words);
  };
  const auto [shared_results, shared_words] = run(true);
  const auto [plain_results, plain_words] = run(false);
  EXPECT_EQ(shared_results, plain_results);
  EXPECT_LT(shared_words, plain_words);
}

TEST(PcmTest, Names) {
  PcmOptions options;
  options.mode = PcmMode::kCompressed;
  EXPECT_EQ(PcmMatcher(options).Name(), "pcm");
  options.mode = PcmMode::kLazy;
  EXPECT_EQ(PcmMatcher(options).Name(), "pcm-lazy");
  options.mode = PcmMode::kAdaptive;
  EXPECT_EQ(PcmMatcher(options).Name(), "a-pcm");
}

}  // namespace
}  // namespace apcm::core
