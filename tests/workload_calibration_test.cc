// Statistical calibration of the workload generator: the knobs must actually
// control the distributions they claim to (operator mix, selectivity, event
// match rates), since every experiment's interpretation depends on it.

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "src/workload/generator.h"

namespace apcm::workload {
namespace {

WorkloadSpec CalibrationSpec(uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 4000;
  spec.num_events = 500;
  spec.num_attributes = 60;
  spec.domain_min = 0;
  spec.domain_max = 10'000;
  spec.min_predicates = 4;
  spec.max_predicates = 10;
  spec.min_event_attrs = 8;
  spec.max_event_attrs = 20;
  return spec;
}

std::map<Op, double> OperatorMix(const Workload& workload) {
  std::map<Op, double> counts;
  double total = 0;
  for (const auto& sub : workload.subscriptions) {
    for (const auto& pred : sub.predicates()) {
      counts[pred.op()] += 1;
      total += 1;
    }
  }
  for (auto& [op, count] : counts) count /= total;
  return counts;
}

TEST(CalibrationTest, OperatorMixMatchesFractions) {
  WorkloadSpec spec = CalibrationSpec(1);
  spec.equality_fraction = 0.30;
  spec.in_fraction = 0.10;
  spec.ne_fraction = 0.05;
  spec.inequality_fraction = 0.20;  // remainder 0.35 -> between
  const auto workload = Generate(spec).value();
  const auto mix = OperatorMix(workload);
  EXPECT_NEAR(mix.at(Op::kEq), 0.30, 0.02);
  EXPECT_NEAR(mix.at(Op::kIn), 0.10, 0.02);
  EXPECT_NEAR(mix.at(Op::kNe), 0.05, 0.02);
  const double inequality = mix.count(Op::kLt) ? mix.at(Op::kLt) : 0;
  const double le = mix.count(Op::kLe) ? mix.at(Op::kLe) : 0;
  const double gt = mix.count(Op::kGt) ? mix.at(Op::kGt) : 0;
  const double ge = mix.count(Op::kGe) ? mix.at(Op::kGe) : 0;
  EXPECT_NEAR(inequality + le + gt + ge, 0.20, 0.02);
  EXPECT_NEAR(mix.at(Op::kBetween), 0.35, 0.02);
}

TEST(CalibrationTest, AllBetweenWhenFractionsZero) {
  WorkloadSpec spec = CalibrationSpec(2);
  spec.equality_fraction = 0;
  spec.in_fraction = 0;
  spec.ne_fraction = 0;
  spec.inequality_fraction = 0;
  const auto workload = Generate(spec).value();
  const auto mix = OperatorMix(workload);
  EXPECT_DOUBLE_EQ(mix.at(Op::kBetween), 1.0);
}

TEST(CalibrationTest, PredicateWidthControlsSelectivity) {
  for (const double width : {0.05, 0.20, 0.50}) {
    WorkloadSpec spec = CalibrationSpec(3);
    spec.equality_fraction = 0;
    spec.in_fraction = 0;
    spec.ne_fraction = 0;
    spec.inequality_fraction = 0;  // between only
    spec.predicate_width = width;
    const auto workload = Generate(spec).value();
    const ValueInterval domain{spec.domain_min, spec.domain_max};
    double total_selectivity = 0;
    uint64_t count = 0;
    for (const auto& sub : workload.subscriptions) {
      for (const auto& pred : sub.predicates()) {
        total_selectivity += pred.Selectivity(domain);
        ++count;
      }
    }
    // Width is jittered ±50% uniformly, so the mean equals the knob.
    EXPECT_NEAR(total_selectivity / static_cast<double>(count), width,
                width * 0.1)
        << "width " << width;
  }
}

TEST(CalibrationTest, SeededFractionControlsMatchRate) {
  // Measured matches/event must grow monotonically in the seeded fraction
  // and be ~0 when unseeded.
  double last_rate = -1;
  for (const double seeded : {0.0, 0.3, 0.7, 1.0}) {
    WorkloadSpec spec = CalibrationSpec(4);
    spec.seeded_event_fraction = seeded;
    const auto workload = Generate(spec).value();
    uint64_t matches = 0;
    for (const auto& event : workload.events) {
      for (const auto& sub : workload.subscriptions) {
        if (sub.Matches(event)) ++matches;
      }
    }
    const double rate =
        static_cast<double>(matches) / static_cast<double>(spec.num_events);
    if (seeded == 0.0) {
      EXPECT_LT(rate, 0.05);
    } else {
      EXPECT_GT(rate, last_rate);
      EXPECT_GE(rate, seeded * 0.9);  // each seeded event matches >= its seed
    }
    last_rate = rate;
  }
}

TEST(CalibrationTest, EventSizeDistributionUniform) {
  const WorkloadSpec spec = CalibrationSpec(5);
  WorkloadSpec unseeded = spec;
  unseeded.seeded_event_fraction = 0;
  const auto workload = Generate(unseeded).value();
  std::map<size_t, int> sizes;
  for (const auto& event : workload.events) sizes[event.size()]++;
  for (const auto& [size, count] : sizes) {
    EXPECT_GE(size, spec.min_event_attrs);
    EXPECT_LE(size, spec.max_event_attrs);
  }
  // Roughly uniform: every size in range appears.
  EXPECT_EQ(sizes.size(),
            spec.max_event_attrs - spec.min_event_attrs + 1);
}

TEST(CalibrationTest, ValueZipfSkewsEqualityOperands) {
  WorkloadSpec skewed = CalibrationSpec(6);
  skewed.equality_fraction = 1.0;
  skewed.in_fraction = skewed.ne_fraction = skewed.inequality_fraction = 0;
  skewed.value_zipf = 1.5;
  const auto workload = Generate(skewed).value();
  uint64_t low_values = 0;
  uint64_t total = 0;
  for (const auto& sub : workload.subscriptions) {
    for (const auto& pred : sub.predicates()) {
      low_values += pred.v1() < skewed.domain_min + 100;
      ++total;
    }
  }
  // Zipf(1.5) over 10k values concentrates far more than 1% of mass in the
  // first 100 ranks (uniform would put exactly ~1% there).
  EXPECT_GT(static_cast<double>(low_values) / static_cast<double>(total),
            0.30);
}

}  // namespace
}  // namespace apcm::workload
