#include "src/be/catalog.h"

#include <gtest/gtest.h>

namespace apcm {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  auto price = catalog.AddAttribute("price", 0, 10000);
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(price.value(), 0u);
  auto age = catalog.AddAttribute("age", 0, 120);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(age.value(), 1u);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Name(0), "price");
  EXPECT_EQ(catalog.Name(1), "age");
  EXPECT_EQ(catalog.Domain(1), (ValueInterval{0, 120}));
  EXPECT_EQ(catalog.FindAttribute("price").value(), 0u);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddAttribute("x", 0, 1).ok());
  auto dup = catalog.AddAttribute("x", 0, 5);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, InvalidDomainRejected) {
  Catalog catalog;
  EXPECT_EQ(catalog.AddAttribute("x", 5, 4).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddAttribute("", 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, FindUnknownIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.FindAttribute("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, GetOrAddIsIdempotent) {
  Catalog catalog;
  const AttributeId a = catalog.GetOrAddAttribute("k");
  const AttributeId b = catalog.GetOrAddAttribute("k");
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, GetOrAddUsesDefaultDomain) {
  Catalog catalog;
  const AttributeId a = catalog.GetOrAddAttribute("k", {5, 9});
  EXPECT_EQ(catalog.Domain(a), (ValueInterval{5, 9}));
}

}  // namespace
}  // namespace apcm
