// BenchJsonWriter argument parsing. The perf gate feeds on the JSON these
// flags enable, so a typoed flag must be a hard error, not a silent no-op
// run that never writes the baseline.

#include <gtest/gtest.h>

#include <array>

#include "bench/bench_util.h"

namespace apcm::bench {
namespace {

StatusOr<BenchJsonWriter> ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return BenchJsonWriter::Parse(
      static_cast<int>(args.size()),
      const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(BenchJsonWriterParseTest, NoArgsDisabled) {
  auto writer = ParseArgs({});
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(writer->enabled());
}

TEST(BenchJsonWriterParseTest, JsonFlagEnablesWriter) {
  auto writer = ParseArgs({"--json", "/tmp/out.json"});
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->enabled());
}

TEST(BenchJsonWriterParseTest, UnknownFlagRejected) {
  // The regression this guards: `--jsonn out.json` used to parse as "no
  // --json flag" and the run silently produced no baseline file.
  auto writer = ParseArgs({"--jsonn", "/tmp/out.json"});
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchJsonWriterParseTest, StrayPositionalRejected) {
  EXPECT_FALSE(ParseArgs({"out.json"}).ok());
}

TEST(BenchJsonWriterParseTest, MissingPathRejected) {
  auto writer = ParseArgs({"--json"});
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchJsonWriterParseTest, DuplicateJsonRejected) {
  EXPECT_FALSE(ParseArgs({"--json", "a.json", "--json", "b.json"}).ok());
}

TEST(BenchJsonWriterParseTest, ArgumentsAfterPathStillValidated) {
  EXPECT_FALSE(ParseArgs({"--json", "a.json", "--verbose"}).ok());
}

}  // namespace
}  // namespace apcm::bench
