// Top-k priority delivery and the engine's operations report.

#include <gtest/gtest.h>

#include <map>

#include "src/engine/engine.h"
#include "src/engine/report.h"

namespace apcm::engine {
namespace {

struct Delivery {
  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  StreamEngine::MatchCallback Callback() {
    return [this](uint64_t id, const std::vector<SubscriptionId>& matches) {
      by_event[id] = matches;
    };
  }
};

EngineOptions TopKOptions(uint32_t k) {
  EngineOptions options;
  options.kind = MatcherKind::kAPcm;
  options.top_k = k;
  return options;
}

TEST(PriorityTest, TopKKeepsHighestPriorityMatches) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(2), delivery.Callback());
  // Five subscriptions all matching "0 >= 0"; priorities pick the winners.
  std::vector<SubscriptionId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(
        engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value());
  }
  ASSERT_TRUE(engine.SetPriority(ids[3], 10.0).ok());
  ASSERT_TRUE(engine.SetPriority(ids[1], 5.0).ok());
  ASSERT_TRUE(engine.SetPriority(ids[4], -1.0).ok());
  const uint64_t e = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  // Winners: ids[3] (10) and ids[1] (5); delivered in ascending id order.
  EXPECT_EQ(delivery.by_event.at(e),
            (std::vector<SubscriptionId>{ids[1], ids[3]}));
}

TEST(PriorityTest, TiesBreakTowardLowerIds) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(2), delivery.Callback());
  std::vector<SubscriptionId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(
        engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value());
  }
  // All priority 0: the two lowest ids win.
  const uint64_t e = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e),
            (std::vector<SubscriptionId>{ids[0], ids[1]}));
}

TEST(PriorityTest, FewerMatchesThanKDeliveredAsIs) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(10), delivery.Callback());
  const SubscriptionId id =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  const uint64_t e = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e), (std::vector<SubscriptionId>{id}));
}

TEST(PriorityTest, ZeroKDeliversEverything) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(0), delivery.Callback());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  }
  const uint64_t e = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e).size(), 5u);
}

TEST(PriorityTest, SetPriorityErrors) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(1), delivery.Callback());
  EXPECT_EQ(engine.SetPriority(7, 1.0).code(), StatusCode::kNotFound);
  const SubscriptionId id =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  EXPECT_TRUE(engine.SetPriority(id, 1.0).ok());
  ASSERT_TRUE(engine.RemoveSubscription(id).ok());
  EXPECT_EQ(engine.SetPriority(id, 2.0).code(), StatusCode::kNotFound);
}

TEST(PriorityTest, PriorityUpdateTakesEffect) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(1), delivery.Callback());
  const SubscriptionId a =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  const SubscriptionId b =
      engine.AddSubscription({Predicate(0, Op::kGe, 0)}).value();
  ASSERT_TRUE(engine.SetPriority(b, 1.0).ok());
  const uint64_t e1 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e1), (std::vector<SubscriptionId>{b}));
  ASSERT_TRUE(engine.SetPriority(a, 2.0).ok());
  const uint64_t e2 = engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  EXPECT_EQ(delivery.by_event.at(e2), (std::vector<SubscriptionId>{a}));
}

TEST(ReportTest, RendersAllSections) {
  Delivery delivery;
  StreamEngine engine(TopKOptions(0), delivery.Callback());
  ASSERT_TRUE(engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
  engine.Publish(Event::Create({{0, 1}}).value());
  engine.Flush();
  const std::string report = RenderReport(engine);
  for (const char* needle :
       {"subscriptions (live)", "apcm_events_published_total",
        "apcm_matches_delivered_total", "apcm_rebuilds_total",
        "apcm_batch_latency_ns", "apcm_matcher_predicate_evals_total"}) {
    EXPECT_NE(report.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << report;
  }
}

TEST(ReportTest, MatcherStatsFormat) {
  MatcherStats stats;
  stats.events_matched = 1234;
  stats.predicate_evals = 5678;
  const std::string line = RenderMatcherStats(stats);
  EXPECT_NE(line.find("events=1,234"), std::string::npos);
  EXPECT_NE(line.find("predicate_evals=5,678"), std::string::npos);
}

}  // namespace
}  // namespace apcm::engine
