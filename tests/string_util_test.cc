#include "src/base/string_util.h"

#include <gtest/gtest.h>

namespace apcm {
namespace {

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hello  "), "hello");
  EXPECT_EQ(TrimWhitespace("hello"), "hello");
  EXPECT_EQ(TrimWhitespace("\t\n x \r "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, SplitAndTrim) {
  const auto pieces = SplitAndTrim("a, b , c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  const auto pieces = SplitAndTrim(",a,,b,", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringUtilTest, SplitEmptyInput) {
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
  EXPECT_TRUE(SplitAndTrim("  ", ',').empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  99 ").value(), 99);
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            9223372036854775807LL);
}

TEST(StringUtilTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_EQ(ParseInt64("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("between [1,2]", "between"));
  EXPECT_FALSE(StartsWith("bet", "between"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(1000000000), "1,000,000,000");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3ULL * 1024 * 1024 + 200 * 1024), "3.2 MiB");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  // Long output exceeding any small inline buffer.
  const std::string long_out = StringPrintf("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

}  // namespace
}  // namespace apcm
