#include "src/sim/core_model.h"

#include <gtest/gtest.h>

#include "src/base/timer.h"
#include "tests/matcher_test_util.h"

namespace apcm::sim {
namespace {

std::unique_ptr<core::PcmMatcher> BuiltMatcher(
    const workload::Workload& workload) {
  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  options.clustering.cluster_size = 32;
  auto matcher = std::make_unique<core::PcmMatcher>(options);
  matcher->Build(workload.subscriptions);
  return matcher;
}

TEST(CoreModelTest, ProfileCoversAllClusters) {
  const auto workload = workload::Generate(GnarlySpec(111)).value();
  auto matcher = BuiltMatcher(workload);
  const BatchProfile profile = ProfileClusterWork(*matcher, workload.events);
  EXPECT_EQ(profile.cluster_work.size(), matcher->clusters().size());
  for (double work : profile.cluster_work) EXPECT_GT(work, 0.0);
}

TEST(CoreModelTest, ProfileMatchCountAgreesWithMatcher) {
  const auto workload = workload::Generate(GnarlySpec(112)).value();
  auto matcher = BuiltMatcher(workload);
  const BatchProfile profile = ProfileClusterWork(*matcher, workload.events);
  std::vector<std::vector<SubscriptionId>> results;
  matcher->MatchBatch(workload.events, &results);
  uint64_t total = 0;
  for (const auto& r : results) total += r.size();
  EXPECT_DOUBLE_EQ(profile.total_matches, static_cast<double>(total));
}

TEST(CoreModelTest, SpeedupPropertiesHold) {
  const auto workload = workload::Generate(GnarlySpec(113)).value();
  auto matcher = BuiltMatcher(workload);
  MultiCoreModel model;
  model.SetProfile(ProfileClusterWork(*matcher, workload.events));
  model.Calibrate(/*measured_seconds=*/0.010);
  EXPECT_GT(model.kappa(), 0.0);

  const auto sweep = model.Sweep({1, 2, 4, 8, 16});
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_DOUBLE_EQ(sweep[0].speedup, 1.0);
  for (size_t i = 1; i < sweep.size(); ++i) {
    // Speedup never exceeds the thread count, and time never increases with
    // more threads beyond barrier noise.
    EXPECT_LE(sweep[i].speedup,
              static_cast<double>(sweep[i].threads) + 1e-9);
    EXPECT_GE(sweep[i].speedup, 0.9 * sweep[i - 1].speedup);
  }
  // With hundreds of similar clusters, parallelism should actually help.
  EXPECT_GT(sweep.back().speedup, 2.0);
}

TEST(CoreModelTest, SingleClusterCannotSpeedUp) {
  const auto workload = workload::Generate(GnarlySpec(114)).value();
  core::PcmOptions options;
  options.clustering.cluster_size = 1 << 20;  // everything in one cluster
  // Pivot clustering breaks at pivot boundaries; insertion order does not.
  options.clustering.strategy = core::ClusterStrategy::kInsertionOrder;
  auto matcher = std::make_unique<core::PcmMatcher>(options);
  matcher->Build(workload.subscriptions);
  ASSERT_EQ(matcher->clusters().size(), 1u);
  MultiCoreModel model;
  model.SetProfile(ProfileClusterWork(*matcher, workload.events));
  model.Calibrate(0.010);
  // One indivisible shard: T(8) cannot beat T(1) (barrier makes it worse).
  EXPECT_GE(model.PredictSeconds(8), model.PredictSeconds(1) * 0.99);
}

TEST(CoreModelTest, PredictionTracksMeasurementAtOneThread) {
  // Calibrate on a real measured run, then check the 1-thread prediction
  // reproduces the measurement to within the modeled overhead terms.
  const auto workload = workload::Generate(GnarlySpec(115)).value();
  auto matcher = BuiltMatcher(workload);
  std::vector<std::vector<SubscriptionId>> results;
  matcher->MatchBatch(workload.events, &results);  // warm caches
  WallTimer timer;
  matcher->MatchBatch(workload.events, &results);
  const double measured = timer.ElapsedSeconds();

  MultiCoreModel model;
  model.SetProfile(ProfileClusterWork(*matcher, workload.events));
  model.Calibrate(measured);
  const double predicted = model.PredictSeconds(1);
  EXPECT_NEAR(predicted, measured, measured * 0.5 + 1e-5);
}

TEST(CoreModelTest, BalancedWorkScalesNearLinearly) {
  MultiCoreModel model(CoreModelOptions{.barrier_seconds = 0,
                                        .merge_seconds_per_match = 0});
  BatchProfile profile;
  profile.cluster_work.assign(1024, 10.0);  // perfectly uniform
  model.SetProfile(std::move(profile));
  model.Calibrate(1.0);
  const auto sweep = model.Sweep({1, 2, 4, 8});
  EXPECT_NEAR(sweep[1].speedup, 2.0, 1e-9);
  EXPECT_NEAR(sweep[2].speedup, 4.0, 1e-9);
  EXPECT_NEAR(sweep[3].speedup, 8.0, 1e-9);
}

TEST(CoreModelTest, SkewedWorkLimitsSpeedup) {
  MultiCoreModel model(CoreModelOptions{.barrier_seconds = 0,
                                        .merge_seconds_per_match = 0});
  BatchProfile profile;
  profile.cluster_work.assign(16, 1.0);
  profile.cluster_work[0] = 100.0;  // one hot cluster dominates
  model.SetProfile(std::move(profile));
  model.Calibrate(1.0);
  // Amdahl: the shard holding the hot cluster bounds the speedup.
  const double t16 = model.PredictSeconds(16);
  const double t1 = model.PredictSeconds(1);
  EXPECT_LT(t1 / t16, 1.2);
}

}  // namespace
}  // namespace apcm::sim
