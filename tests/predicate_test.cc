#include "src/be/predicate.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/be/catalog.h"

namespace apcm {
namespace {

constexpr ValueInterval kDomain{0, 100};

TEST(PredicateTest, EvalComparisonOperators) {
  EXPECT_TRUE(Predicate(0, Op::kEq, 5).Eval(5));
  EXPECT_FALSE(Predicate(0, Op::kEq, 5).Eval(6));

  EXPECT_TRUE(Predicate(0, Op::kNe, 5).Eval(6));
  EXPECT_FALSE(Predicate(0, Op::kNe, 5).Eval(5));

  EXPECT_TRUE(Predicate(0, Op::kLt, 5).Eval(4));
  EXPECT_FALSE(Predicate(0, Op::kLt, 5).Eval(5));

  EXPECT_TRUE(Predicate(0, Op::kLe, 5).Eval(5));
  EXPECT_FALSE(Predicate(0, Op::kLe, 5).Eval(6));

  EXPECT_TRUE(Predicate(0, Op::kGt, 5).Eval(6));
  EXPECT_FALSE(Predicate(0, Op::kGt, 5).Eval(5));

  EXPECT_TRUE(Predicate(0, Op::kGe, 5).Eval(5));
  EXPECT_FALSE(Predicate(0, Op::kGe, 5).Eval(4));
}

TEST(PredicateTest, EvalBetweenInclusive) {
  const Predicate p(0, 10, 20);
  EXPECT_TRUE(p.Eval(10));
  EXPECT_TRUE(p.Eval(15));
  EXPECT_TRUE(p.Eval(20));
  EXPECT_FALSE(p.Eval(9));
  EXPECT_FALSE(p.Eval(21));
}

TEST(PredicateTest, EvalInSet) {
  const Predicate p(0, std::vector<Value>{7, 3, 11});
  EXPECT_TRUE(p.Eval(3));
  EXPECT_TRUE(p.Eval(7));
  EXPECT_TRUE(p.Eval(11));
  EXPECT_FALSE(p.Eval(5));
  // Constructor sorts and dedupes.
  EXPECT_EQ(p.values(), (std::vector<Value>{3, 7, 11}));
  const Predicate dup(0, std::vector<Value>{4, 4, 4});
  EXPECT_EQ(dup.values(), (std::vector<Value>{4}));
}

TEST(PredicateTest, IntervalsForComparisons) {
  std::vector<ValueInterval> out;
  Predicate(0, Op::kEq, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{5, 5}}));

  out.clear();
  Predicate(0, Op::kLt, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 4}}));

  out.clear();
  Predicate(0, Op::kLe, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 5}}));

  out.clear();
  Predicate(0, Op::kGt, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{6, 100}}));

  out.clear();
  Predicate(0, Op::kGe, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{5, 100}}));
}

TEST(PredicateTest, IntervalsForNe) {
  std::vector<ValueInterval> out;
  Predicate(0, Op::kNe, 5).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 4}, {6, 100}}));

  // At the domain boundary only one side survives.
  out.clear();
  Predicate(0, Op::kNe, 0).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{1, 100}}));

  out.clear();
  Predicate(0, Op::kNe, 100).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 99}}));

  // ne outside the domain is always true within it.
  out.clear();
  Predicate(0, Op::kNe, 500).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 100}}));
}

TEST(PredicateTest, IntervalsForInCoalescesRuns) {
  std::vector<ValueInterval> out;
  Predicate(0, std::vector<Value>{1, 2, 3, 7, 9, 10}).AppendIntervals(
      kDomain, &out);
  EXPECT_EQ(out,
            (std::vector<ValueInterval>{{1, 3}, {7, 7}, {9, 10}}));
}

TEST(PredicateTest, IntervalsClippedToDomain) {
  std::vector<ValueInterval> out;
  Predicate(0, Op::kGe, -50).AppendIntervals(kDomain, &out);
  EXPECT_EQ(out, (std::vector<ValueInterval>{{0, 100}}));

  out.clear();
  Predicate(0, Op::kEq, 200).AppendIntervals(kDomain, &out);
  EXPECT_TRUE(out.empty());  // unsatisfiable in-domain
}

TEST(PredicateTest, IntervalsCoverExactlySatisfyingValues) {
  // Property: for every predicate kind, the decomposition covers value v iff
  // Eval(v) is true, for every v in the domain.
  const std::vector<Predicate> predicates = {
      Predicate(0, Op::kEq, 42),     Predicate(0, Op::kNe, 42),
      Predicate(0, Op::kLt, 42),     Predicate(0, Op::kLe, 42),
      Predicate(0, Op::kGt, 42),     Predicate(0, Op::kGe, 42),
      Predicate(0, 30, 60),          Predicate(0, std::vector<Value>{1, 50, 99}),
  };
  for (const Predicate& pred : predicates) {
    std::vector<ValueInterval> intervals;
    pred.AppendIntervals(kDomain, &intervals);
    for (Value v = kDomain.lo; v <= kDomain.hi; ++v) {
      bool covered = false;
      for (const auto& iv : intervals) covered |= iv.Contains(v);
      EXPECT_EQ(covered, pred.Eval(v))
          << pred.ToString() << " at v=" << v;
    }
  }
}

TEST(PredicateTest, Selectivity) {
  EXPECT_DOUBLE_EQ(Predicate(0, Op::kEq, 50).Selectivity(kDomain),
                   1.0 / 101);
  EXPECT_DOUBLE_EQ(Predicate(0, Op::kNe, 50).Selectivity(kDomain),
                   100.0 / 101);
  EXPECT_DOUBLE_EQ(Predicate(0, 0, 100).Selectivity(kDomain), 1.0);
  EXPECT_DOUBLE_EQ(Predicate(0, Op::kEq, 500).Selectivity(kDomain), 0.0);
}

TEST(PredicateTest, EqualityAndHash) {
  const Predicate a(3, Op::kLe, 10);
  const Predicate b(3, Op::kLe, 10);
  const Predicate c(3, Op::kLt, 10);
  const Predicate d(4, Op::kLe, 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  const Predicate s1(0, std::vector<Value>{1, 2});
  const Predicate s2(0, std::vector<Value>{2, 1});
  EXPECT_EQ(s1, s2);  // set order canonicalized
  EXPECT_EQ(s1.Hash(), s2.Hash());
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ(Predicate(3, Op::kLe, 10).ToString(), "attr3 <= 10");
  EXPECT_EQ(Predicate(1, 2, 8).ToString(), "attr1 between [2, 8]");
  EXPECT_EQ(Predicate(0, std::vector<Value>{5, 1}).ToString(),
            "attr0 in {1, 5}");
  Catalog catalog;
  catalog.GetOrAddAttribute("price");
  EXPECT_EQ(Predicate(0, Op::kGt, 7).ToString(&catalog), "price > 7");
}

}  // namespace
}  // namespace apcm
