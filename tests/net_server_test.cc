// Loopback end-to-end suite for the EventServer: subscribe/publish/match
// round trips, a differential oracle against direct StreamEngine use,
// reject-policy backpressure pausing a flooding publisher without losing
// ACKed events, graceful Stop() under traffic, and the slow-consumer /
// protocol-violation disconnect paths. scripts/check.sh --tsan replays this
// binary under ThreadSanitizer, so sizes are chosen to survive ~20x
// slowdown.

#include "src/net/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/be/catalog.h"
#include "src/be/parser.h"
#include "src/be/string_dictionary.h"
#include "src/net/client.h"

namespace apcm::net {
namespace {

using engine::BackpressurePolicy;
using engine::EngineOptions;
using engine::MatcherKind;
using engine::StreamEngine;

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

EventServerOptions SmallServerOptions() {
  EventServerOptions options;
  options.engine.batch_size = 16;
  options.engine.osr.window_size = 0;
  options.engine.buffer_capacity = 16;
  options.engine.matcher.pcm.clustering.cluster_size = 32;
  return options;
}

TEST(NetServerTest, SubscribePublishMatchRoundTrip) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(subscriber.Ping().ok());
  ASSERT_TRUE(subscriber.Subscribe(7, "a0 >= 10 and a1 < 50").ok());
  ASSERT_TRUE(subscriber.Subscribe(8, "a0 >= 100 or a1 = 3").ok());

  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  // Matches sub 7 only (a0 >= 10, a1 < 50, a1 != 3, a0 < 100).
  auto id0 = publisher.Publish(Event::Create({{0, 20}, {1, 30}}).value());
  ASSERT_TRUE(id0.ok()) << id0.status().ToString();
  // Matches both (a1 = 3 also satisfies a1 < 50).
  auto id1 = publisher.Publish(Event::Create({{0, 20}, {1, 3}}).value());
  ASSERT_TRUE(id1.ok());
  // Matches neither.
  auto id2 = publisher.Publish(Event::Create({{0, 5}, {1, 60}}).value());
  ASSERT_TRUE(id2.ok());

  std::map<uint64_t, std::vector<uint64_t>> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/100);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (match->has_value()) {
      received[(*match)->event_id] = (*match)->sub_ids;
    }
  }
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received.at(*id0), (std::vector<uint64_t>{7}));
  EXPECT_EQ(received.at(*id1), (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ(received.count(*id2), 0u);

  // Unsubscribe stops future matches.
  ASSERT_TRUE(subscriber.Unsubscribe(7).ok());
  ASSERT_TRUE(subscriber.Unsubscribe(8).ok());
  auto id3 = publisher.Publish(Event::Create({{0, 20}, {1, 30}}).value());
  ASSERT_TRUE(id3.ok());
  // A PING after the publish has fully round-tripped the server; if a MATCH
  // had been emitted it would already be queued locally after one poll.
  ASSERT_TRUE(subscriber.Ping().ok());
  auto late = subscriber.PollMatch(/*timeout_ms=*/100);
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late->has_value());

  server.Stop();
  EXPECT_EQ(server.num_connections(), 0);
}

TEST(NetServerTest, TraceFollowsSampledEventThroughEveryStage) {
  EventServerOptions options = SmallServerOptions();
  // Sample every event so the published event is certainly traced, and tag
  // it with a client-chosen trace id to follow through the flight recorder.
  options.engine.trace_sample_every = 1;
  EventServer server(std::move(options));
  ASSERT_TRUE(server.Start().ok());

  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(subscriber.Subscribe(1, "a0 >= 0").ok());

  constexpr uint64_t kTraceId = 0x7e5717acedeeull;
  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  auto id = publisher.Publish(Event::Create({{0, 42}}).value(), kTraceId);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The MATCH arriving proves the server wrote the frame; the trace
  // finalizes on the server's I/O thread right after the socket write, so
  // poll briefly for the full span set.
  auto match = subscriber.PollMatch(/*timeout_ms=*/5000);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ((*match)->event_id, *id);

  using engine::EventTracer;
  using engine::TraceRing;
  std::vector<TraceRing::Span> spans;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    spans.clear();
    for (const TraceRing::Span& span : server.engine().trace().Snapshot()) {
      if (span.kind == TraceRing::Kind::kEventStage && span.a == kTraceId) {
        spans.push_back(span);
      }
    }
    if (spans.size() >= EventTracer::kNumStages) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Every stage was recorded — read, admit, queue, match, deliver, write —
  // and timestamps are monotone along every happens-before chain of the
  // pipeline. Two pairs are deliberately NOT ordered: the pump can pop and
  // stamp `queue` before the admitting thread stamps `admit`, and the I/O
  // thread can flush the MATCH frame (stamping `write`) before the engine
  // thread returns from the delivery callback (stamping `deliver`) — under
  // TSan's ~20x skew both races are routinely observable.
  ASSERT_EQ(spans.size(), static_cast<size_t>(EventTracer::kNumStages));
  int64_t ts[EventTracer::kNumStages];
  for (uint32_t s = 0; s < EventTracer::kNumStages; ++s) {
    EXPECT_EQ(spans[s].b, s) << "missing stage "
                             << EventTracer::StageName(s);
    ts[s] = static_cast<int64_t>(spans[s].c);
  }
  EXPECT_LE(ts[EventTracer::kRead], ts[EventTracer::kAdmit]);
  EXPECT_LE(ts[EventTracer::kRead], ts[EventTracer::kQueue]);
  EXPECT_LE(ts[EventTracer::kQueue], ts[EventTracer::kMatch]);
  EXPECT_LE(ts[EventTracer::kMatch], ts[EventTracer::kDeliver]);
  EXPECT_LE(ts[EventTracer::kMatch], ts[EventTracer::kWrite]);
  EXPECT_GE(server.engine().tracer().completed(), 1u);

  server.Stop();
}

TEST(NetServerTest, RequestErrorsAreSurfacedPerRequest) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Malformed expression: the request fails, the connection survives.
  Status bad = client.Subscribe(1, "a0 ~~ 5");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());

  ASSERT_TRUE(client.Subscribe(1, "a0 >= 0").ok());
  Status duplicate = client.Subscribe(1, "a0 >= 1");
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  Status missing = client.Unsubscribe(99);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, MetricsAreRegisteredAndCount) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Subscribe(1, "a0 >= 0").ok());
  ASSERT_TRUE(client.Publish(Event::Create({{0, 1}}).value()).ok());
  ASSERT_TRUE(client.Ping().ok());

  const MetricsRegistry& registry = server.engine().metrics_registry();
  EXPECT_GE(CounterValue(registry, "apcm_net_frames_in_total"), 3u);
  EXPECT_GE(CounterValue(registry, "apcm_net_frames_out_total"), 3u);
  EXPECT_GT(CounterValue(registry, "apcm_net_bytes_in_total"), 0u);
  EXPECT_GT(CounterValue(registry, "apcm_net_bytes_out_total"), 0u);
  EXPECT_EQ(server.num_connections(), 1);
  client.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.num_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.num_connections(), 0);
}

// Differential oracle: the same subscriptions (as text) and the same events
// through (a) a local StreamEngine fed directly and (b) the network stack —
// the delivered match sets must agree exactly, with client-chosen sub ids
// standing in for the oracle's registration order.
TEST(NetServerTest, DifferentialOracleAgainstDirectEngine) {
  constexpr int kSubs = 40;
  constexpr int kEvents = 200;
  Rng rng(42);

  // Random expressions: 1-3 distinct-attribute comparisons joined by "and",
  // with a second disjunct on some subscriptions.
  auto make_conjunction = [&rng]() {
    static const char* kOps[] = {">=", "<=", ">", "<", "=", "!="};
    std::string text;
    std::set<uint64_t> used;
    const int preds = 1 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < preds; ++p) {
      uint64_t attr = rng.Uniform(8);
      if (!used.insert(attr).second) continue;
      if (!text.empty()) text += " and ";
      text += "a" + std::to_string(attr) + " " + kOps[rng.Uniform(6)] + " " +
              std::to_string(rng.Uniform(100));
    }
    return text;
  };
  std::vector<std::string> expressions;
  for (int i = 0; i < kSubs; ++i) {
    std::string text = make_conjunction();
    if (rng.Bernoulli(0.3)) text += " or " + make_conjunction();
    expressions.push_back(std::move(text));
  }
  std::vector<Event> events;
  for (int i = 0; i < kEvents; ++i) {
    std::vector<Event::Entry> entries;
    uint64_t attr = rng.Uniform(3);
    while (attr < 8) {
      entries.push_back({static_cast<AttributeId>(attr),
                         static_cast<int64_t>(rng.Uniform(100))});
      attr += 1 + rng.Uniform(4);
    }
    events.push_back(Event::FromSorted(std::move(entries)));
  }

  // Oracle: parse and register the same texts in the same order directly.
  Catalog catalog;
  StringDictionary strings;
  Parser parser(&catalog, &strings);
  std::map<uint64_t, std::vector<uint64_t>> oracle;  // event id -> sub index
  std::map<SubscriptionId, uint64_t> oracle_sub_index;
  std::mutex oracle_mu;
  StreamEngine oracle_engine(
      SmallServerOptions().engine,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        std::lock_guard<std::mutex> lock(oracle_mu);
        if (matches.empty()) return;
        std::vector<uint64_t>& row = oracle[event_id];
        for (SubscriptionId id : matches) {
          row.push_back(oracle_sub_index.at(id));
        }
      });
  for (int i = 0; i < kSubs; ++i) {
    auto disjuncts = parser.ParseDisjunction(expressions[i]);
    ASSERT_TRUE(disjuncts.ok()) << expressions[i];
    auto added =
        disjuncts->size() == 1
            ? oracle_engine.AddSubscription(std::move((*disjuncts)[0]))
            : oracle_engine.AddDisjunctiveSubscription(std::move(*disjuncts));
    ASSERT_TRUE(added.ok()) << expressions[i];
    oracle_sub_index[*added] = static_cast<uint64_t>(i);
  }
  std::vector<uint64_t> oracle_event_ids;
  for (const Event& event : events) {
    oracle_event_ids.push_back(oracle_engine.Publish(event));
  }
  oracle_engine.Flush();

  // Remote: same texts via SUBSCRIBE (client id = registration index), same
  // events via PUBLISH.
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < kSubs; ++i) {
    ASSERT_TRUE(
        subscriber.Subscribe(static_cast<uint64_t>(i), expressions[i]).ok())
        << expressions[i];
  }
  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint64_t> remote_event_ids;
  for (const Event& event : events) {
    auto id = publisher.Publish(event);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    remote_event_ids.push_back(*id);
  }

  std::map<uint64_t, std::vector<uint64_t>> remote;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (remote.size() < oracle.size() &&
         std::chrono::steady_clock::now() < deadline) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/100);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (!match->has_value()) continue;
    std::vector<uint64_t>& row = remote[(*match)->event_id];
    row.insert(row.end(), (*match)->sub_ids.begin(), (*match)->sub_ids.end());
  }

  // Exact agreement, event by event (ids correlated by publish order).
  ASSERT_EQ(remote.size(), oracle.size());
  std::lock_guard<std::mutex> lock(oracle_mu);
  for (int k = 0; k < kEvents; ++k) {
    auto oracle_it = oracle.find(oracle_event_ids[k]);
    auto remote_it = remote.find(remote_event_ids[k]);
    if (oracle_it == oracle.end()) {
      EXPECT_TRUE(remote_it == remote.end()) << "event " << k;
      continue;
    }
    ASSERT_TRUE(remote_it != remote.end()) << "event " << k;
    std::vector<uint64_t> want = oracle_it->second;
    std::vector<uint64_t> got = remote_it->second;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "event " << k;
  }
  server.Stop();
}

// The acceptance scenario: flooding publishers against a deliberately slow,
// tiny-queue engine must trip engine backpressure (rejected publish ->
// paused connection -> retried after drain) and still deliver a MATCH for
// every ACKed event — backpressure sheds nothing that was acknowledged.
TEST(NetServerTest, BackpressurePausesFloodingPublisherWithoutLoss) {
  EventServerOptions options = SmallServerOptions();
  // kScan makes every round cost O(subscriptions); with a 16-deep queue the
  // I/O thread refills to capacity while the pump is mid-round.
  options.engine.kind = MatcherKind::kScan;
  options.engine.batch_size = 16;
  options.engine.buffer_capacity = 16;
  options.engine.queue_capacity = 16;
  EventServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  // One catch-all the events satisfy, plus ballast subscriptions that never
  // match (a0 is always < 1000) but make the scan matcher grind.
  ASSERT_TRUE(subscriber.Subscribe(0, "a0 >= 0").ok());
  for (int i = 1; i <= 800; ++i) {
    ASSERT_TRUE(
        subscriber
            .Subscribe(static_cast<uint64_t>(i),
                       "a0 >= " + std::to_string(1000 + i))
            .ok());
  }

  // Every wire publish is admitted by the single I/O thread, so a socket
  // flood alone only rejects when the pump happens to hold the processing
  // lock at the exact fill instant — a scheduler race that misses on slow
  // or single-CPU machines (the old version flaked exactly that way). A
  // direct-engine flooder thread removes the luck: it hammers TryPublish
  // (kReject, result ignored) so the 16-deep queue is saturated and rounds
  // are constantly in flight; any wire publish that lands meanwhile meets a
  // full queue, parks its connection, and fires the counter. The flood
  // events carry only a1, so the a0 catch-all never matches them and the
  // subscriber's match stream stays exactly the tracked publishers' events.
  std::atomic<bool> saturated{false};
  std::thread flooder([&] {
    const Event filler = Event::Create({{1, 1}}).value();
    while (!saturated.load(std::memory_order_relaxed)) {
      (void)server.engine().TryPublish(filler);
    }
  });

  constexpr int kPublishers = 3;
  constexpr int kMaxPerPublisher = 4000;
  std::atomic<int> running{kPublishers};
  std::vector<std::vector<uint64_t>> acked(kPublishers);
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      for (int i = 0; i < kMaxPerPublisher; ++i) {
        auto id = client.Publish(
            Event::Create({{0, static_cast<int64_t>(i % 100)}}).value());
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        acked[p].push_back(*id);
        if (saturated.load(std::memory_order_relaxed)) break;
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  const MetricsRegistry& registry = server.engine().metrics_registry();
  while (running.load(std::memory_order_relaxed) > 0 &&
         !saturated.load(std::memory_order_relaxed)) {
    if (CounterValue(registry, "apcm_net_backpressure_events_total") > 0) {
      saturated.store(true, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  saturated.store(true, std::memory_order_relaxed);
  flooder.join();
  for (std::thread& thread : publishers) thread.join();
  EXPECT_GT(CounterValue(registry, "apcm_net_backpressure_events_total"), 0u);

  // Every ACKed event matches the catch-all, so the subscriber must see a
  // MATCH for each — acknowledged means admitted, paused or not.
  std::set<uint64_t> expected;
  for (const auto& ids : acked) expected.insert(ids.begin(), ids.end());
  std::set<uint64_t> seen;
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (seen.size() < expected.size() &&
         std::chrono::steady_clock::now() < drain_deadline) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/100);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (match->has_value()) seen.insert((*match)->event_id);
  }
  EXPECT_EQ(seen.size(), expected.size());
  for (uint64_t id : expected) {
    ASSERT_TRUE(seen.contains(id)) << "ACKed event " << id << " lost";
  }
  server.Stop();
}

// Stop() during live traffic: everything ACKed before shutdown is matched
// and its notifications are flushed to the subscriber before sockets close.
TEST(NetServerTest, StopDuringTrafficDrainsAcceptedEvents) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(subscriber.Subscribe(1, "a0 >= 0").ok());

  constexpr int kPublishers = 2;
  std::vector<std::vector<uint64_t>> acked(kPublishers);
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      for (int i = 0; i < 100000; ++i) {
        auto id =
            client.Publish(Event::Create({{0, i % 50}, {1, i % 7}}).value());
        if (!id.ok()) return;  // server shut down mid-publish
        acked[p].push_back(*id);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();
  for (std::thread& thread : publishers) thread.join();

  std::set<uint64_t> expected;
  for (const auto& ids : acked) expected.insert(ids.begin(), ids.end());
  ASSERT_FALSE(expected.empty());  // traffic did flow before the stop

  // The server flushed every write queue before closing, so all owed MATCH
  // frames are in (or on their way to) our socket buffer; drain until the
  // close marker (IOError) surfaces.
  std::set<uint64_t> seen;
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/1000);
    if (!match.ok() || !match->has_value()) break;
    seen.insert((*match)->event_id);
  }
  for (uint64_t id : expected) {
    ASSERT_TRUE(seen.contains(id)) << "ACKed event " << id
                                   << " lost in shutdown";
  }
}

TEST(NetServerTest, SlowConsumerIsDisconnected) {
  EventServerOptions options = SmallServerOptions();
  options.max_write_queue_bytes = 4096;
  EventServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client lagger;
  ASSERT_TRUE(lagger.Connect("127.0.0.1", server.port()).ok());
  // 100 catch-all subscriptions make each MATCH frame ~800 bytes, so the
  // outbox bound trips after the kernel socket buffer fills instead of
  // needing hundreds of thousands of events.
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(lagger.Subscribe(i, "a0 >= 0").ok());
  }

  Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  // The lagger never reads: its kernel buffer and then its server-side
  // outbox fill until the bound trips. Publish until the server reaps it.
  const MetricsRegistry& registry = server.engine().metrics_registry();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  int64_t i = 0;
  while (CounterValue(registry,
                      "apcm_net_slow_consumer_disconnects_total") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    auto id = publisher.Publish(Event::Create({{0, i++ % 100}}).value());
    ASSERT_TRUE(id.ok());
  }
  EXPECT_GE(
      CounterValue(registry, "apcm_net_slow_consumer_disconnects_total"), 1u);

  // The lagger's subscription died with it: new publishes keep flowing and
  // the publisher connection is unaffected.
  ASSERT_TRUE(publisher.Ping().ok());
  ASSERT_TRUE(publisher.Publish(Event::Create({{0, 1}}).value()).ok());
  server.Stop();
}

/// Connects a raw TCP socket, sends `bytes`, and returns everything the
/// server sends back until it closes the connection.
std::string RawExchange(int port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetServerTest, GarbageBytesCloseTheConnection) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawExchange(server.port(), "GET / HTTP/1.0\r\n\r\n");
  // Bad magic is fatal before any response frame exists.
  EXPECT_TRUE(response.empty());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.num_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.num_connections(), 0);
}

TEST(NetServerTest, ServerToClientFrameTypesAreRejected) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Frame ack;
  ack.type = FrameType::kAck;
  ack.seq = 5;
  const std::string response = RawExchange(server.port(), EncodeFrame(ack));
  // The server answers with an ERROR frame, then closes.
  FrameDecoder decoder;
  decoder.Append(response.data(), response.size());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kError);
  EXPECT_EQ((*frame)->seq, 5u);
  EXPECT_EQ((*frame)->code, StatusCode::kInvalidArgument);
}

TEST(NetServerTest, StartTwiceFailsAndStopIsIdempotent) {
  EventServer server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
  server.Stop();
  // A stopped server can be started again on a fresh port.
  ASSERT_TRUE(server.Start().ok());
  Client client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

}  // namespace
}  // namespace apcm::net
