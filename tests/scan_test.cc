#include "src/index/scan.h"

#include <gtest/gtest.h>

#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

TEST(ScanTest, HandWorkloadSemantics) {
  const workload::Workload workload = HandWorkload();
  index::ScanMatcher scan;
  const auto results = RunMatcher(scan, workload);
  // Event 0: price=80, category=2, stock=5, brand=1.
  //   sub0 (price<=100 & cat=2): yes. sub1 (price>100): no.
  //   sub2 (cat in {1,2,3} & stock>=1): yes.
  //   sub3 (price in [50,150] & brand!=7): yes. sub4 (match-all): yes.
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0, 2, 3, 4}));
  // Event 1: price=200, category=2 → sub1 and match-all; sub2 lacks stock,
  // sub3's brand is absent.
  EXPECT_EQ(results[1], (std::vector<SubscriptionId>{1, 4}));
  // Event 2: price=100, category=9, stock=0, brand=7 → only match-all
  // (sub0 cat, sub1 price, sub2 stock, sub3 brand all fail).
  EXPECT_EQ(results[2], (std::vector<SubscriptionId>{4}));
  // Event 3: stock=3, category=1 → sub2 and match-all.
  EXPECT_EQ(results[3], (std::vector<SubscriptionId>{2, 4}));
  // Event 4: empty → only match-all.
  EXPECT_EQ(results[4], (std::vector<SubscriptionId>{4}));
}

TEST(ScanTest, StatsAreCounted) {
  const workload::Workload workload = HandWorkload();
  index::ScanMatcher scan;
  RunMatcher(scan, workload);
  const MatcherStats& stats = scan.stats();
  EXPECT_EQ(stats.events_matched, workload.events.size());
  EXPECT_EQ(stats.candidates_checked,
            workload.events.size() * workload.subscriptions.size());
  EXPECT_GT(stats.predicate_evals, 0u);
  EXPECT_EQ(stats.matches_emitted, 4u + 2u + 1u + 2u + 1u);
}

TEST(ScanTest, EmptySubscriptionSet) {
  workload::Workload workload;
  workload.events.push_back(Event::Create({{1, 1}}).value());
  index::ScanMatcher scan;
  const auto results = RunMatcher(scan, workload);
  EXPECT_TRUE(results[0].empty());
}

TEST(ScanTest, DefaultBatchMatchesLoop) {
  const workload::Workload workload =
      workload::Generate(GnarlySpec(5)).value();
  index::ScanMatcher scan;
  scan.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> batch_results;
  scan.MatchBatch(workload.events, &batch_results);
  index::ScanMatcher scan2;
  const auto loop_results = RunMatcher(scan2, workload);
  EXPECT_EQ(batch_results, loop_results);
}

}  // namespace
}  // namespace apcm
