// Golden workload-replay regression. A small seeded workload::Trace is
// checked in under tests/data/ together with a golden digest of the match
// sets the engine must produce when replaying it. Any change to the parser,
// matcher family, sharding, or engine round logic that alters *which*
// matches are delivered shows up as a digest mismatch here — before it shows
// up as a subtle disagreement in production.
//
// The digest depends only on logical content (publish index -> sorted
// subscription indices), never on thread interleaving or delivery order, so
// it is byte-stable across runs, build types, and matcher backends: the
// replay is asserted for the default A-PCM engine, a sharded engine, and the
// SCAN oracle, which must all agree with the checked-in value.
//
// Regenerating after an *intended* matching-semantics change:
//
//     APCM_UPDATE_GOLDEN=1 ./build/tests/workload_replay_test
//
// rewrites tests/data/replay_trace.bin and tests/data/replay_golden.txt in
// the source tree; commit both and explain the semantic change in the PR.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/bitmap/kernels.h"
#include "src/engine/engine.h"
#include "src/workload/generator.h"
#include "src/workload/trace.h"

namespace apcm {
namespace {

using engine::EngineOptions;
using engine::MatcherKind;
using engine::StreamEngine;

#ifndef APCM_TEST_DATA_DIR
#error "APCM_TEST_DATA_DIR must be defined by the build"
#endif

std::string DataPath(const std::string& name) {
  return std::string(APCM_TEST_DATA_DIR) + "/" + name;
}

const char kTracePath[] = "replay_trace.bin";
const char kGoldenPath[] = "replay_golden.txt";

/// The spec behind the checked-in trace. Only consulted when regenerating
/// (APCM_UPDATE_GOLDEN=1) and by the reproducibility guard below; the test
/// proper replays the serialized bytes.
workload::WorkloadSpec GoldenSpec() {
  workload::WorkloadSpec spec;
  spec.seed = 20260806;
  spec.num_subscriptions = 300;
  spec.num_events = 200;
  spec.num_attributes = 24;
  spec.domain_max = 1000;
  spec.min_predicates = 1;
  spec.max_predicates = 5;
  spec.min_event_attrs = 4;
  spec.max_event_attrs = 10;
  spec.in_fraction = 0.2;
  spec.ne_fraction = 0.1;
  return spec;
}

struct ReplayResult {
  /// publish index -> ascending subscription indices that matched.
  std::map<uint64_t, std::vector<uint64_t>> rows;
  uint64_t total_matches = 0;
};

/// FNV-1a over the row map; identical to the chaos-suite digest so the two
/// suites report comparable fingerprints.
uint64_t HashRows(const std::map<uint64_t, std::vector<uint64_t>>& rows) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [key, subs] : rows) {
    mix(key);
    mix(subs.size());
    for (uint64_t s : subs) mix(s);
  }
  return h;
}

std::string HashHex(uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

ReplayResult Replay(const workload::Workload& workload,
                    const EngineOptions& options) {
  std::map<uint64_t, std::vector<uint64_t>> by_event_id;
  std::map<SubscriptionId, uint64_t> sub_index;
  std::mutex mu;
  StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        std::lock_guard<std::mutex> lock(mu);
        if (matches.empty()) return;
        std::vector<uint64_t>& row = by_event_id[event_id];
        for (SubscriptionId id : matches) row.push_back(sub_index.at(id));
      });
  for (size_t i = 0; i < workload.subscriptions.size(); ++i) {
    auto added = engine.AddSubscription(workload.subscriptions[i].predicates());
    EXPECT_TRUE(added.ok()) << "subscription " << i << ": "
                            << added.status().ToString();
    sub_index[*added] = i;
  }
  std::vector<uint64_t> event_ids;
  event_ids.reserve(workload.events.size());
  for (const Event& event : workload.events) {
    event_ids.push_back(engine.Publish(event));
  }
  engine.Flush();

  ReplayResult result;
  std::lock_guard<std::mutex> lock(mu);
  for (size_t k = 0; k < event_ids.size(); ++k) {
    auto it = by_event_id.find(event_ids[k]);
    if (it == by_event_id.end()) continue;
    std::vector<uint64_t> row = it->second;
    std::sort(row.begin(), row.end());
    result.total_matches += row.size();
    result.rows[k] = std::move(row);
  }
  return result;
}

EngineOptions ReplayOptions() {
  EngineOptions options;
  // Small batches + a sub-workload buffer so the replay spans multiple
  // processing rounds instead of one giant flush.
  options.batch_size = 32;
  options.buffer_capacity = 64;
  options.osr.window_size = 0;
  return options;
}

/// Golden-file shape: '#' comments plus key=value lines (subs, events,
/// matches, hash).
std::map<std::string, std::string> ParseGolden(const std::string& text) {
  std::map<std::string, std::string> kv;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool UpdateGoldenRequested() {
  const char* env = std::getenv("APCM_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(WorkloadReplayTest, GoldenTraceMatchesCheckedInDigest) {
  if (UpdateGoldenRequested()) {
    const workload::Workload generated =
        workload::Generate(GoldenSpec()).value();
    ASSERT_TRUE(workload::SaveBinary(generated, DataPath(kTracePath)).ok());
    const ReplayResult result = Replay(generated, ReplayOptions());
    std::FILE* f = std::fopen(DataPath(kGoldenPath).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f,
                 "# Golden digest for tests/data/%s (workload_replay_test).\n"
                 "# Regenerate with APCM_UPDATE_GOLDEN=1 after an intended\n"
                 "# matching-semantics change; commit trace + digest together.\n"
                 "subs=%zu\nevents=%zu\nmatches=%llu\nhash=%s\n",
                 kTracePath, generated.subscriptions.size(),
                 generated.events.size(),
                 static_cast<unsigned long long>(result.total_matches),
                 HashHex(HashRows(result.rows)).c_str());
    std::fclose(f);
    GTEST_SKIP() << "golden files regenerated under " << APCM_TEST_DATA_DIR;
  }

  auto loaded = workload::LoadBinary(DataPath(kTracePath));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString()
                           << " — regenerate with APCM_UPDATE_GOLDEN=1";
  const std::map<std::string, std::string> golden =
      ParseGolden(ReadFileOrEmpty(DataPath(kGoldenPath)));
  ASSERT_TRUE(golden.count("hash"))
      << "missing/corrupt " << kGoldenPath
      << " — regenerate with APCM_UPDATE_GOLDEN=1";
  EXPECT_EQ(golden.at("subs"), std::to_string(loaded->subscriptions.size()));
  EXPECT_EQ(golden.at("events"), std::to_string(loaded->events.size()));

  const ReplayResult result = Replay(*loaded, ReplayOptions());
  EXPECT_EQ(std::to_string(result.total_matches), golden.at("matches"));
  EXPECT_EQ(HashHex(HashRows(result.rows)), golden.at("hash"))
      << "match-set digest drifted from " << kGoldenPath
      << "; if the matching-semantics change is intended, regenerate with "
         "APCM_UPDATE_GOLDEN=1 and commit both files";
}

TEST(WorkloadReplayTest, ShardedAndScanBackendsAgreeWithGolden) {
  if (UpdateGoldenRequested()) GTEST_SKIP() << "regeneration run";
  auto loaded = workload::LoadBinary(DataPath(kTracePath));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::map<std::string, std::string> golden =
      ParseGolden(ReadFileOrEmpty(DataPath(kGoldenPath)));
  ASSERT_TRUE(golden.count("hash"));

  EngineOptions sharded = ReplayOptions();
  sharded.num_shards = 4;
  EXPECT_EQ(HashHex(HashRows(Replay(*loaded, sharded).rows)),
            golden.at("hash"))
      << "sharded replay disagrees with the golden digest";

  EngineOptions scan = ReplayOptions();
  scan.kind = MatcherKind::kScan;
  EXPECT_EQ(HashHex(HashRows(Replay(*loaded, scan).rows)), golden.at("hash"))
      << "SCAN-oracle replay disagrees with the golden digest";
}

TEST(WorkloadReplayTest, GoldenDigestInvariantUnderEveryKernelLevel) {
  // The pinned digest must be a property of matching semantics alone, not of
  // the instruction set: replaying the golden trace with each supported
  // bitmap kernel level forced must reproduce the checked-in hash exactly.
  if (UpdateGoldenRequested()) GTEST_SKIP() << "regeneration run";
  auto loaded = workload::LoadBinary(DataPath(kTracePath));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::map<std::string, std::string> golden =
      ParseGolden(ReadFileOrEmpty(DataPath(kGoldenPath)));
  ASSERT_TRUE(golden.count("hash"));

  for (const bitmap::SimdLevel level : bitmap::SupportedSimdLevels()) {
    EngineOptions options = ReplayOptions();
    options.simd = bitmap::SimdLevelName(level);
    EXPECT_EQ(HashHex(HashRows(Replay(*loaded, options).rows)),
              golden.at("hash"))
        << "replay digest diverges under " << bitmap::SimdLevelName(level)
        << " kernels";
  }
  ASSERT_TRUE(
      bitmap::SetActiveSimdLevel(bitmap::BestSupportedSimdLevel()).ok());
}

TEST(WorkloadReplayTest, CheckedInTraceIsReproducibleFromItsSpec) {
  if (UpdateGoldenRequested()) GTEST_SKIP() << "regeneration run";
  auto loaded = workload::LoadBinary(DataPath(kTracePath));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The binary format stores the generator spec; regenerating from it must
  // reproduce the serialized workload exactly, so the checked-in bytes are
  // auditable (no hand-edited trace can drift from its claimed seed).
  auto regenerated = workload::Generate(loaded->spec);
  ASSERT_TRUE(regenerated.ok()) << regenerated.status().ToString();
  ASSERT_EQ(regenerated->subscriptions.size(), loaded->subscriptions.size());
  for (size_t i = 0; i < loaded->subscriptions.size(); ++i) {
    EXPECT_EQ(regenerated->subscriptions[i].ToString(),
              loaded->subscriptions[i].ToString())
        << "subscription " << i;
  }
  ASSERT_EQ(regenerated->events.size(), loaded->events.size());
  for (size_t i = 0; i < loaded->events.size(); ++i) {
    EXPECT_EQ(regenerated->events[i], loaded->events[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace apcm
