#include "src/base/logging.h"

#include <gtest/gtest.h>

#include "src/base/timer.h"

namespace apcm {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, EmitsWithoutCrashing) {
  // Output goes to stderr; we only verify the calls are safe at every level
  // and that suppressed levels are cheap.
  SetLogLevel(LogLevel::kError);
  LogDebug("suppressed");
  LogInfo("suppressed");
  LogWarning("suppressed");
  LogError("visible during tests (expected)");
  SetLogLevel(LogLevel::kDebug);
  LogDebug("visible during tests (expected)");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy-wait a tiny, bounded amount.
  volatile uint64_t sink = 0;
  while (timer.ElapsedNanos() < 1'000'000) {  // 1ms
    sink = sink + 1;
  }
  EXPECT_GE(timer.ElapsedNanos(), 1'000'000);
  EXPECT_GE(timer.ElapsedSeconds(), 0.001);
  const int64_t before_reset = timer.ElapsedNanos();
  timer.Reset();
  EXPECT_LT(timer.ElapsedNanos(), before_reset);
}

TEST(TimerTest, MonotonicallyNonDecreasing) {
  WallTimer timer;
  int64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = timer.ElapsedNanos();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace apcm
