#include "src/base/logging.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "src/base/timer.h"

namespace apcm {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogLevel(LogLevel::kInfo);
    SetLogSink(nullptr);
  }
};

/// Captures formatted lines for assertions; safe for concurrent emitters.
class CaptureSink {
 public:
  void Install() {
    SetLogSink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(level, line);
    });
  }

  std::vector<std::pair<LogLevel, std::string>> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, EmitsWithoutCrashing) {
  // Output goes to stderr; we only verify the calls are safe at every level
  // and that suppressed levels are cheap.
  SetLogLevel(LogLevel::kError);
  LogDebug("suppressed");
  LogInfo("suppressed");
  LogWarning("suppressed");
  LogError("visible during tests (expected)");
  SetLogLevel(LogLevel::kDebug);
  LogDebug("visible during tests (expected)");
}

TEST_F(LoggingTest, SinkCapturesLines) {
  CaptureSink sink;
  sink.Install();
  LogInfo("hello");
  LogWarning("careful");
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_EQ(lines[0].second, "[INFO] hello");
  EXPECT_EQ(lines[1].second, "[WARN] careful");
}

TEST_F(LoggingTest, SinkRespectsLevel) {
  CaptureSink sink;
  sink.Install();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  LogInfo("suppressed");
  LogError("kept");
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].second, "[ERROR] kept");
}

TEST_F(LoggingTest, StructuredFieldsAppendKeyValues) {
  CaptureSink sink;
  sink.Install();
  LogInfo("round done", {{"round", 7},
                         {"events", uint64_t{256}},
                         {"rate", 12.5},
                         {"matcher", "a-pcm"}});
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].second,
            "[INFO] round done round=7 events=256 rate=12.5 matcher=a-pcm");
}

TEST_F(LoggingTest, StructuredValuesWithSpacesAreQuoted) {
  CaptureSink sink;
  sink.Install();
  LogInfo("state", {{"phase", "rebuild pending"}, {"path", "a=b"}});
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].second,
            "[INFO] state phase=\"rebuild pending\" path=\"a=b\"");
}

TEST_F(LoggingTest, QuotesAndBackslashesAreEscaped) {
  CaptureSink sink;
  sink.Install();
  LogInfo("esc", {{"v", "say \"hi\" \\now"}});
  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].second, "[INFO] esc v=\"say \\\"hi\\\" \\\\now\"");
}

TEST_F(LoggingTest, ConcurrentEmittersAreSafe) {
  CaptureSink sink;
  sink.Install();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        LogInfo("tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.lines().size(), 400u);
}

TEST_F(LoggingTest, ResettingSinkRestoresStderr) {
  CaptureSink sink;
  sink.Install();
  SetLogSink(nullptr);
  LogInfo("goes to stderr, not the sink");
  EXPECT_TRUE(sink.lines().empty());
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy-wait a tiny, bounded amount.
  volatile uint64_t sink = 0;
  while (timer.ElapsedNanos() < 1'000'000) {  // 1ms
    sink = sink + 1;
  }
  EXPECT_GE(timer.ElapsedNanos(), 1'000'000);
  EXPECT_GE(timer.ElapsedSeconds(), 0.001);
  const int64_t before_reset = timer.ElapsedNanos();
  timer.Reset();
  EXPECT_LT(timer.ElapsedNanos(), before_reset);
}

TEST(TimerTest, MonotonicallyNonDecreasing) {
  WallTimer timer;
  int64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = timer.ElapsedNanos();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace apcm
