#include "src/base/histogram.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace apcm {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  // Exponential bucketing has bounded relative error (~6%).
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.5)), 1000.0, 70.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  for (int i = 0; i < 16; ++i) {
    // Quantile q covers the first ceil(q*16) samples.
    EXPECT_EQ(h.ValueAtQuantile((i + 1) / 16.0), i);
  }
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1'000'000)));
  }
  const int64_t p50 = h.ValueAtQuantile(0.50);
  const int64_t p90 = h.ValueAtQuantile(0.90);
  const int64_t p99 = h.ValueAtQuantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Uniform distribution: p50 near 500k within bucket error.
  EXPECT_NEAR(static_cast<double>(p50), 500'000, 500'000 * 0.10);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Record(100);
  for (int i = 0; i < 100; ++i) b.Record(10'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 10'000);
  EXPECT_DOUBLE_EQ(a.Mean(), 5050.0);
  EXPECT_NEAR(static_cast<double>(a.ValueAtQuantile(0.25)), 100, 10);
  EXPECT_NEAR(static_cast<double>(a.ValueAtQuantile(0.75)), 10'000, 700);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1);
  h.Record(1'000'000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const int64_t big = 1LL << 50;
  h.Record(big);
  EXPECT_EQ(h.max(), big);
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(1.0)),
              static_cast<double>(big), static_cast<double>(big) * 0.07);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(5);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace apcm
