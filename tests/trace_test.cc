#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "src/workload/generator.h"

namespace apcm::workload {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("apcm_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

Workload SmallWorkload(uint64_t seed = 3) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 100;
  spec.num_events = 50;
  spec.num_attributes = 20;
  spec.domain_max = 500;
  spec.min_predicates = 1;
  spec.max_predicates = 5;
  spec.min_event_attrs = 3;
  spec.max_event_attrs = 8;
  spec.in_fraction = 0.2;
  spec.ne_fraction = 0.1;
  return Generate(spec).value();
}

void ExpectWorkloadsEqual(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.catalog.size(), b.catalog.size());
  for (AttributeId i = 0; i < a.catalog.size(); ++i) {
    EXPECT_EQ(a.catalog.Name(i), b.catalog.Name(i));
    EXPECT_EQ(a.catalog.Domain(i), b.catalog.Domain(i));
  }
  ASSERT_EQ(a.subscriptions.size(), b.subscriptions.size());
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    EXPECT_EQ(a.subscriptions[i].id(), b.subscriptions[i].id());
    ASSERT_EQ(a.subscriptions[i].size(), b.subscriptions[i].size());
    for (size_t p = 0; p < a.subscriptions[i].size(); ++p) {
      EXPECT_EQ(a.subscriptions[i].predicates()[p],
                b.subscriptions[i].predicates()[p])
          << "sub " << i << " pred " << p;
    }
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
}

TEST_F(TraceTest, BinaryRoundTrip) {
  const Workload original = SmallWorkload();
  ASSERT_TRUE(SaveBinary(original, Path("w.bin")).ok());
  auto loaded = LoadBinary(Path("w.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectWorkloadsEqual(original, *loaded);
}

TEST_F(TraceTest, BinaryPreservesSpecForRegeneration) {
  const Workload original = SmallWorkload(11);
  ASSERT_TRUE(SaveBinary(original, Path("spec.bin")).ok());
  auto loaded = LoadBinary(Path("spec.bin"));
  ASSERT_TRUE(loaded.ok());
  const WorkloadSpec& spec = loaded->spec;
  EXPECT_EQ(spec.seed, original.spec.seed);
  EXPECT_EQ(spec.num_attributes, original.spec.num_attributes);
  EXPECT_EQ(spec.domain_max, original.spec.domain_max);
  EXPECT_DOUBLE_EQ(spec.attribute_zipf, original.spec.attribute_zipf);
  EXPECT_DOUBLE_EQ(spec.in_fraction, original.spec.in_fraction);
  EXPECT_DOUBLE_EQ(spec.seeded_event_fraction,
                   original.spec.seeded_event_fraction);
  // The stored spec regenerates the identical workload.
  const Workload regenerated = Generate(spec).value();
  ASSERT_EQ(regenerated.subscriptions.size(), original.subscriptions.size());
  for (size_t i = 0; i < original.subscriptions.size(); ++i) {
    EXPECT_EQ(regenerated.subscriptions[i].ToString(),
              original.subscriptions[i].ToString());
  }
}

TEST_F(TraceTest, TextRoundTrip) {
  const Workload original = SmallWorkload();
  ASSERT_TRUE(SaveText(original, Path("w.txt")).ok());
  auto loaded = LoadText(Path("w.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectWorkloadsEqual(original, *loaded);
}

TEST_F(TraceTest, EmptyWorkloadRoundTrips) {
  Workload empty;
  ASSERT_TRUE(SaveBinary(empty, Path("e.bin")).ok());
  auto bin = LoadBinary(Path("e.bin"));
  ASSERT_TRUE(bin.ok());
  EXPECT_TRUE(bin->subscriptions.empty());
  EXPECT_TRUE(bin->events.empty());
  ASSERT_TRUE(SaveText(empty, Path("e.txt")).ok());
  auto text = LoadText(Path("e.txt"));
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(text->subscriptions.empty());
}

TEST_F(TraceTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadBinary(Path("nope.bin")).status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadText(Path("nope.txt")).status().code(), StatusCode::kIOError);
}

TEST_F(TraceTest, WrongMagicRejected) {
  {
    std::FILE* f = std::fopen(Path("junk").c_str(), "w");
    std::fputs("this is not a workload file at all, not even close\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadBinary(Path("junk")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadText(Path("junk")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceTest, TruncatedBinaryRejected) {
  const Workload original = SmallWorkload();
  ASSERT_TRUE(SaveBinary(original, Path("full.bin")).ok());
  // Truncate to half size.
  const auto full_size = std::filesystem::file_size(Path("full.bin"));
  std::filesystem::copy_file(Path("full.bin"), Path("half.bin"));
  std::filesystem::resize_file(Path("half.bin"), full_size / 2);
  EXPECT_FALSE(LoadBinary(Path("half.bin")).ok());
}

}  // namespace
}  // namespace apcm::workload
