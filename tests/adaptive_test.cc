#include "src/core/adaptive.h"

#include <gtest/gtest.h>

namespace apcm::core {
namespace {

TEST(AdaptiveTest, WarmupSamplesBothModesFirst) {
  AdaptiveState state(0.1, 0.3);
  Rng rng(1);
  EXPECT_EQ(state.Choose(rng), EvalMode::kCompressed);
  state.Record(EvalMode::kCompressed, 100);
  EXPECT_EQ(state.Choose(rng), EvalMode::kLazy);
  state.Record(EvalMode::kLazy, 10);
}

TEST(AdaptiveTest, ExploitsCheaperMode) {
  AdaptiveState state(0.0, 0.3);  // no exploration
  Rng rng(2);
  state.Record(EvalMode::kCompressed, 100);
  state.Record(EvalMode::kLazy, 10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(state.Choose(rng), EvalMode::kLazy);
  }
  // Flip the costs via repeated observations; EWMA converges.
  for (int i = 0; i < 50; ++i) state.Record(EvalMode::kLazy, 500);
  EXPECT_EQ(state.Choose(rng), EvalMode::kCompressed);
}

TEST(AdaptiveTest, EpsilonExploresOccasionally) {
  AdaptiveState state(0.2, 0.3);
  Rng rng(3);
  state.Record(EvalMode::kCompressed, 1);
  state.Record(EvalMode::kLazy, 1000);
  int lazy_choices = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (state.Choose(rng) == EvalMode::kLazy) ++lazy_choices;
  }
  EXPECT_NEAR(lazy_choices / static_cast<double>(trials), 0.2, 0.03);
}

TEST(AdaptiveTest, EwmaTracksDrift) {
  AdaptiveState state(0.0, 0.5);
  state.Record(EvalMode::kCompressed, 100);
  EXPECT_DOUBLE_EQ(state.EstimatedCost(EvalMode::kCompressed), 100);
  state.Record(EvalMode::kCompressed, 0);
  EXPECT_DOUBLE_EQ(state.EstimatedCost(EvalMode::kCompressed), 50);
  state.Record(EvalMode::kCompressed, 0);
  EXPECT_DOUBLE_EQ(state.EstimatedCost(EvalMode::kCompressed), 25);
}

TEST(AdaptiveTest, ObservationCounts) {
  AdaptiveState state(0.1, 0.3);
  EXPECT_EQ(state.Observations(EvalMode::kCompressed), 0u);
  state.Record(EvalMode::kCompressed, 5);
  state.Record(EvalMode::kCompressed, 5);
  state.Record(EvalMode::kLazy, 5);
  EXPECT_EQ(state.Observations(EvalMode::kCompressed), 2u);
  EXPECT_EQ(state.Observations(EvalMode::kLazy), 1u);
}

TEST(AdaptiveTest, TieBreaksTowardCompressed) {
  AdaptiveState state(0.0, 0.3);
  Rng rng(4);
  state.Record(EvalMode::kCompressed, 10);
  state.Record(EvalMode::kLazy, 10);
  EXPECT_EQ(state.Choose(rng), EvalMode::kCompressed);
}

TEST(AdaptiveTest, ModeNames) {
  EXPECT_STREQ(EvalModeName(EvalMode::kCompressed), "compressed");
  EXPECT_STREQ(EvalModeName(EvalMode::kLazy), "lazy");
}

}  // namespace
}  // namespace apcm::core
