// Frame codec suite: round-trips for every frame type, header validation
// (magic, version, type, reserved bits, length cap), exact payload
// consumption, reassembly of frames split at every byte offset, and a
// seeded corruption fuzz loop. The decoder faces the network, so every
// rejection path matters.

#include "src/net/frame.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/rng.h"
#include "src/be/event.h"
#include "src/net/net_io.h"

namespace apcm::net {
namespace {

/// Feeds `wire` to a fresh decoder and expects exactly one frame.
Frame DecodeOne(const std::string& wire) {
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  auto first = decoder.Next();
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->has_value());
  auto rest = decoder.Next();
  EXPECT_TRUE(rest.ok());
  EXPECT_FALSE(rest->has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return std::move(**first);
}

std::vector<Frame> SampleFrames() {
  std::vector<Frame> frames;
  {
    Frame frame;
    frame.type = FrameType::kPublish;
    frame.seq = 7;
    frame.event = Event::Create({{0, -5}, {3, 1000}, {9, 0}}).value();
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kPublish;  // empty event
    frame.seq = 8;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kPublish;  // client-chosen trace id
    frame.seq = 14;
    frame.event = Event::Create({{2, 77}}).value();
    frame.trace_id = 0xfeedface12345678ull;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kSubscribe;
    frame.seq = 9;
    frame.sub_id = 42;
    frame.expression = "a0 >= 10 and a1 < 99 or a2 = 5";
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kUnsubscribe;
    frame.seq = 10;
    frame.sub_id = 42;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kMatch;
    frame.event_id = 1234;
    frame.matches = {1, 5, 42, 1u << 30};
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kAck;
    frame.seq = 11;
    frame.value = 777;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kError;
    frame.seq = 12;
    frame.code = StatusCode::kResourceExhausted;
    frame.message = "queue full";
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kPing;
    frame.seq = 13;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kPong;
    frame.seq = 13;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kFollow;
    frame.seq = 15;
    frames.push_back(frame);
  }
  {
    Frame frame;
    frame.type = FrameType::kProgress;
    frame.event_id = 0xabcdef01ull;
    frames.push_back(frame);
  }
  return frames;
}

void ExpectSameFrame(const Frame& got, const Frame& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.raw_type, want.raw_type);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.sub_id, want.sub_id);
  EXPECT_EQ(got.expression, want.expression);
  EXPECT_EQ(got.event_id, want.event_id);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.value, want.value);
  EXPECT_EQ(got.code, want.code);
  EXPECT_EQ(got.message, want.message);
  EXPECT_EQ(got.trace_id, want.trace_id);
  ASSERT_EQ(got.event.size(), want.event.size());
  for (size_t i = 0; i < got.event.size(); ++i) {
    EXPECT_EQ(got.event.entries()[i].attr, want.event.entries()[i].attr);
    EXPECT_EQ(got.event.entries()[i].value, want.event.entries()[i].value);
  }
}

TEST(NetFrameTest, RoundTripsEveryFrameType) {
  for (const Frame& frame : SampleFrames()) {
    SCOPED_TRACE(std::string(FrameTypeName(frame.type)));
    const std::string wire = EncodeFrame(frame);
    ASSERT_GE(wire.size(), kFrameHeaderBytes);
    ExpectSameFrame(DecodeOne(wire), frame);
  }
}

TEST(NetFrameTest, WireFormatIsStable) {
  // Golden bytes for a PING with seq 0x0102030405060708: any codec change
  // that breaks cross-version compatibility must show up here.
  Frame frame;
  frame.type = FrameType::kPing;
  frame.seq = 0x0102030405060708ull;
  const std::string wire = EncodeFrame(frame);
  const uint8_t want[] = {0x41, 0x50, 0x43, 0x4D,  // "APCM"
                          0x01, 0x07, 0x00, 0x00,  // version, type, reserved
                          0x08, 0x00, 0x00, 0x00,  // payload length 8
                          0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  ASSERT_EQ(wire.size(), sizeof(want));
  for (size_t i = 0; i < sizeof(want); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(wire[i]), want[i]) << "byte " << i;
  }
}

TEST(NetFrameTest, ReassemblesFramesSplitAtEveryOffset) {
  std::string stream;
  const std::vector<Frame> frames = SampleFrames();
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    std::vector<Frame> decoded;
    auto drain = [&] {
      for (;;) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok()) << "split " << split << ": "
                               << next.status().ToString();
        if (!next->has_value()) return;
        decoded.push_back(std::move(**next));
      }
    };
    decoder.Append(stream.data(), split);
    drain();
    decoder.Append(stream.data() + split, stream.size() - split);
    drain();
    ASSERT_EQ(decoded.size(), frames.size()) << "split " << split;
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i]);
    }
  }
}

TEST(NetFrameTest, ByteAtATimeDelivery) {
  const std::string wire = EncodeFrame(SampleFrames()[0]);
  FrameDecoder decoder;
  for (size_t i = 0; i < wire.size(); ++i) {
    auto premature = decoder.Next();
    ASSERT_TRUE(premature.ok());
    EXPECT_FALSE(premature->has_value()) << "frame complete after " << i
                                         << " of " << wire.size() << " bytes";
    decoder.Append(&wire[i], 1);
  }
  auto complete = decoder.Next();
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(complete->has_value());
  ExpectSameFrame(**complete, SampleFrames()[0]);
}

TEST(NetFrameTest, RejectsBadMagic) {
  std::string wire = EncodeFrame(SampleFrames()[0]);
  wire[0] = 'X';
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  auto result = decoder.Next();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.failed());
}

TEST(NetFrameTest, RejectsBadVersion) {
  std::string wire = EncodeFrame(SampleFrames()[0]);
  wire[4] = 2;
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  EXPECT_FALSE(decoder.Next().ok());
}

// ---------------------------------------------------------------------------
// Forward compatibility: a frame whose type byte this build does not know is
// consumed (the header is self-delimiting) and surfaced as kUnknown, so the
// receiver can answer ERROR kUnimplemented instead of dropping the stream.
// ---------------------------------------------------------------------------

TEST(NetFrameTest, UnknownTypeIsNotAFramingError) {
  for (const uint8_t raw : {uint8_t{0}, uint8_t{11}, uint8_t{0x7F},
                            uint8_t{0xFF}}) {
    SCOPED_TRACE("type " + std::to_string(raw));
    std::string wire = EncodeFrame(SampleFrames()[8]);  // a kPing, u64 seq
    wire[5] = static_cast<char>(raw);
    FrameDecoder decoder;
    decoder.Append(wire.data(), wire.size());
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ((*next)->type, FrameType::kUnknown);
    EXPECT_EQ((*next)->raw_type, raw);
    EXPECT_EQ((*next)->seq, 13u);  // the PING's leading u64
    EXPECT_FALSE(decoder.failed());
    // The stream resynchronized: a frame behind the alien one decodes fine.
    const std::string good = EncodeFrame(SampleFrames()[0]);
    decoder.Append(good.data(), good.size());
    auto after = decoder.Next();
    ASSERT_TRUE(after.ok());
    ASSERT_TRUE(after->has_value());
    ExpectSameFrame(**after, SampleFrames()[0]);
  }
}

TEST(NetFrameTest, UnknownTypeGoldenBytes) {
  // Golden bytes of a hypothetical future frame: type 0x2A, a flag word this
  // build has never seen, and a payload leading with a u64 seq followed by
  // opaque extension bytes. The decoder must consume exactly these 23 bytes,
  // preserve the raw type, extract the seq, and not validate the alien flag.
  const uint8_t wire[] = {0x41, 0x50, 0x43, 0x4D,  // "APCM"
                          0x01, 0x2A, 0x80, 0x00,  // version, type 42, flags
                          0x0B, 0x00, 0x00, 0x00,  // payload length 11
                          0x21, 0x43, 0x65, 0x87, 0x00, 0x00, 0x00, 0x00,
                          0xDE, 0xAD, 0xBE};
  FrameDecoder decoder;
  decoder.Append(reinterpret_cast<const char*>(wire), sizeof(wire));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kUnknown);
  EXPECT_EQ((*next)->raw_type, 0x2A);
  EXPECT_EQ((*next)->seq, 0x87654321ull);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.failed());
}

TEST(NetFrameTest, UnknownTypeShortPayloadYieldsZeroSeq) {
  // A future frame with fewer than 8 payload bytes cannot carry the
  // conventional seq prefix; it still parses, with seq 0 (the ERROR reply
  // correlates with seq 0, which no live request uses).
  const uint8_t wire[] = {0x41, 0x50, 0x43, 0x4D, 0x01, 0x63, 0x00, 0x00,
                          0x02, 0x00, 0x00, 0x00, 0xAA, 0xBB};
  FrameDecoder decoder;
  decoder.Append(reinterpret_cast<const char*>(wire), sizeof(wire));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kUnknown);
  EXPECT_EQ((*next)->raw_type, 0x63);
  EXPECT_EQ((*next)->seq, 0u);
}

TEST(NetFrameTest, UnknownTypeStillEnforcesThePayloadCap) {
  // Tolerance does not extend to the length field: an alien frame claiming
  // a payload over the cap is indistinguishable from corruption and kills
  // the stream exactly as before.
  FrameDecoder decoder(/*max_payload=*/64);
  const uint8_t wire[] = {0x41, 0x50, 0x43, 0x4D, 0x01, 0x2A, 0x00, 0x00,
                          0x41, 0x00, 0x00, 0x00};  // length 65 > cap 64
  decoder.Append(reinterpret_cast<const char*>(wire), sizeof(wire));
  EXPECT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.failed());
}

TEST(NetFrameTest, FollowAndProgressGoldenBytes) {
  Frame follow;
  follow.type = FrameType::kFollow;
  follow.seq = 0x1122334455667788ull;
  const std::string follow_wire = EncodeFrame(follow);
  const uint8_t follow_want[] = {0x41, 0x50, 0x43, 0x4D,  // "APCM"
                                 0x01, 0x09, 0x00, 0x00,  // version, FOLLOW
                                 0x08, 0x00, 0x00, 0x00,  // payload length 8
                                 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22,
                                 0x11};
  ASSERT_EQ(follow_wire.size(), sizeof(follow_want));
  for (size_t i = 0; i < sizeof(follow_want); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(follow_wire[i]), follow_want[i])
        << "byte " << i;
  }

  Frame progress;
  progress.type = FrameType::kProgress;
  progress.event_id = 0x0102030405060708ull;
  const std::string progress_wire = EncodeFrame(progress);
  const uint8_t progress_want[] = {0x41, 0x50, 0x43, 0x4D,  // "APCM"
                                   0x01, 0x0A, 0x00, 0x00,  // version, PROGRESS
                                   0x08, 0x00, 0x00, 0x00,  // payload length 8
                                   0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02,
                                   0x01};
  ASSERT_EQ(progress_wire.size(), sizeof(progress_want));
  for (size_t i = 0; i < sizeof(progress_want); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(progress_wire[i]), progress_want[i])
        << "byte " << i;
  }
}

TEST(NetFrameTest, RejectsReservedBits) {
  // The trace-id flag is only meaningful on PUBLISH; on any other type it is
  // a reserved bit and kills the stream.
  std::string ping = EncodeFrame(SampleFrames()[9]);  // a kPong
  ping[6] = 1;
  FrameDecoder decoder;
  decoder.Append(ping.data(), ping.size());
  EXPECT_FALSE(decoder.Next().ok());
  // Undefined higher bits are rejected even on PUBLISH.
  std::string publish = EncodeFrame(SampleFrames()[0]);
  publish[6] = 2;
  FrameDecoder decoder2;
  decoder2.Append(publish.data(), publish.size());
  EXPECT_FALSE(decoder2.Next().ok());
  publish[6] = 0;
  publish[7] = 1;  // high byte of the flag word
  FrameDecoder decoder3;
  decoder3.Append(publish.data(), publish.size());
  EXPECT_FALSE(decoder3.Next().ok());
}

TEST(NetFrameTest, PublishTraceIdRidesAFlaggedPrefix) {
  Frame frame;
  frame.type = FrameType::kPublish;
  frame.seq = 21;
  frame.event = Event::Create({{0, 1}}).value();
  frame.trace_id = 0x0123456789abcdefull;
  const std::string wire = EncodeFrame(frame);
  EXPECT_EQ(wire[6], 1) << "trace flag must be set in the header";
  const Frame decoded = DecodeOne(wire);
  EXPECT_EQ(decoded.trace_id, frame.trace_id);

  // A flagged frame whose payload is too short for the prefix is rejected.
  std::string torn = wire;
  const uint32_t payload =
      static_cast<uint32_t>(wire.size() - kFrameHeaderBytes) - 8;
  torn[8] = static_cast<char>(payload & 0xFF);
  torn[9] = static_cast<char>((payload >> 8) & 0xFF);
  torn.resize(kFrameHeaderBytes + payload);
  FrameDecoder decoder;
  decoder.Append(torn.data(), torn.size());
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(NetFrameTest, ZeroTraceIdKeepsLegacyWireBytes) {
  // trace_id == 0 must encode byte-identically to the pre-flag protocol, so
  // old peers interoperate and the golden bytes above stay valid.
  Frame frame;
  frame.type = FrameType::kPublish;
  frame.seq = 7;
  frame.event = Event::Create({{0, -5}, {3, 1000}, {9, 0}}).value();
  const std::string wire = EncodeFrame(frame);
  EXPECT_EQ(wire[6], 0);
  EXPECT_EQ(wire[7], 0);
  const Frame decoded = DecodeOne(wire);
  EXPECT_EQ(decoded.trace_id, 0u);
}

TEST(NetFrameTest, RejectsOversizedPayloadBeforeBuffering) {
  // A header advertising a payload over the cap must fail immediately, from
  // the header alone — the decoder must not wait for (or allocate) the body.
  FrameDecoder decoder(/*max_payload=*/64);
  Frame frame;
  frame.type = FrameType::kSubscribe;
  frame.expression = std::string(65, 'x');
  const std::string wire = EncodeFrame(frame);  // 85-byte payload
  decoder.Append(wire.data(), kFrameHeaderBytes);  // header only
  auto result = decoder.Next();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cap"), std::string::npos);
}

TEST(NetFrameTest, RejectsTruncatedAndPaddedPayloads) {
  for (const Frame& frame : SampleFrames()) {
    SCOPED_TRACE(std::string(FrameTypeName(frame.type)));
    std::string wire = EncodeFrame(frame);
    const uint32_t payload = static_cast<uint32_t>(wire.size()) -
                             static_cast<uint32_t>(kFrameHeaderBytes);
    if (payload > 0) {
      // Shrink the advertised length: the payload decoder sees a short or
      // internally inconsistent buffer.
      std::string truncated = wire;
      truncated[8] = static_cast<char>((payload - 1) & 0xFF);
      truncated[9] = static_cast<char>(((payload - 1) >> 8) & 0xFF);
      FrameDecoder decoder;
      decoder.Append(truncated.data(), truncated.size() - 1);
      EXPECT_FALSE(decoder.Next().ok());
    }
    // Grow the advertised length and pad: trailing bytes are a framing
    // error, never silently ignored.
    std::string padded = wire;
    const uint32_t grown = payload + 1;
    padded[8] = static_cast<char>(grown & 0xFF);
    padded[9] = static_cast<char>((grown >> 8) & 0xFF);
    padded.push_back('\0');
    FrameDecoder decoder;
    decoder.Append(padded.data(), padded.size());
    EXPECT_FALSE(decoder.Next().ok());
  }
}

TEST(NetFrameTest, RejectsNonAscendingPublishEntries) {
  Frame frame;
  frame.type = FrameType::kPublish;
  frame.event = Event::Create({{3, 1}, {5, 2}}).value();
  std::string wire = EncodeFrame(frame);
  // Payload: u64 seq, u32 count, then (u32 attr, i64 value) entries; the
  // second entry's attr starts at header + 8 + 4 + 12.
  wire[kFrameHeaderBytes + 24] = 3;  // duplicate of the first attr
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  EXPECT_FALSE(decoder.Next().ok());
  wire[kFrameHeaderBytes + 24] = 1;  // now descending
  FrameDecoder decoder2;
  decoder2.Append(wire.data(), wire.size());
  EXPECT_FALSE(decoder2.Next().ok());
}

TEST(NetFrameTest, FailureIsSticky) {
  std::string bad = EncodeFrame(SampleFrames()[0]);
  bad[0] = 'X';
  FrameDecoder decoder;
  decoder.Append(bad.data(), bad.size());
  const Status first = decoder.Next().status();
  EXPECT_FALSE(first.ok());
  // Even valid bytes appended afterwards cannot resurrect the stream.
  const std::string good = EncodeFrame(SampleFrames()[0]);
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Next().status(), first);
}

// Seeded corruption fuzz: flip random bytes of a valid multi-frame stream
// and require the decoder to either produce well-formed frames or fail with
// InvalidArgument — never crash, hang, or over-read.
TEST(NetFrameTest, FuzzedCorruptionNeverCrashes) {
  std::string stream;
  for (const Frame& frame : SampleFrames()) stream += EncodeFrame(frame);

  Rng rng(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string corrupted = stream;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t at = rng.Uniform(corrupted.size());
      corrupted[at] = static_cast<char>(rng.Uniform(256));
    }
    FrameDecoder decoder;
    // Feed in random-sized chunks to exercise reassembly under corruption.
    size_t fed = 0;
    while (fed < corrupted.size()) {
      const size_t chunk =
          std::min(corrupted.size() - fed, 1 + rng.Uniform(40));
      decoder.Append(corrupted.data() + fed, chunk);
      fed += chunk;
      for (;;) {
        auto next = decoder.Next();
        if (!next.ok()) {
          EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
          break;
        }
        if (!next->has_value()) break;
        // A surviving frame must be internally consistent enough to
        // re-encode (EncodeFrame CHECKs the payload bound). kUnknown frames
        // are decoder-only (a corrupted type byte lands here) and have no
        // encoding.
        if ((*next)->type != FrameType::kUnknown) (void)EncodeFrame(**next);
      }
      if (decoder.failed()) break;
    }
  }
}

// Random valid frames through random re-chunking: lossless, in order.
TEST(NetFrameTest, FuzzedRoundTripPreservesFrames) {
  Rng rng(977);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Frame> frames;
    std::string stream;
    const int count = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < count; ++i) {
      Frame frame;
      frame.type = static_cast<FrameType>(1 + rng.Uniform(10));
      // kMatch and kProgress are unsolicited: no seq on the wire.
      if (frame.type != FrameType::kMatch &&
          frame.type != FrameType::kProgress) {
        frame.seq = rng();
      }
      switch (frame.type) {
        case FrameType::kPublish: {
          std::vector<Event::Entry> entries;
          uint32_t attr = 0;
          const int n = static_cast<int>(rng.Uniform(6));
          for (int e = 0; e < n; ++e) {
            attr += 1 + static_cast<uint32_t>(rng.Uniform(10));
            entries.push_back(
                {attr, rng.UniformInt(-1'000'000, 1'000'000)});
          }
          frame.event = Event::FromSorted(std::move(entries));
          if (rng.Uniform(2) == 1) frame.trace_id = rng();
          break;
        }
        case FrameType::kSubscribe:
          frame.sub_id = rng();
          frame.expression.assign(rng.Uniform(64), 'a');
          break;
        case FrameType::kUnsubscribe:
          frame.sub_id = rng();
          break;
        case FrameType::kMatch: {
          frame.event_id = rng();
          const int n = static_cast<int>(rng.Uniform(8));
          for (int m = 0; m < n; ++m) frame.matches.push_back(rng());
          break;
        }
        case FrameType::kAck:
          frame.value = rng();
          break;
        case FrameType::kError:
          frame.code = static_cast<StatusCode>(1 + rng.Uniform(9));
          frame.message.assign(rng.Uniform(32), 'e');
          break;
        case FrameType::kPing:
        case FrameType::kPong:
        case FrameType::kFollow:
          break;
        case FrameType::kProgress:
          frame.event_id = rng();
          break;
        case FrameType::kUnknown:
          break;  // never generated (types are drawn from [1, 10])
      }
      frames.push_back(frame);
      stream += EncodeFrame(frame);
    }

    FrameDecoder decoder;
    std::vector<Frame> decoded;
    size_t fed = 0;
    while (fed < stream.size()) {
      const size_t chunk = std::min(stream.size() - fed, 1 + rng.Uniform(24));
      decoder.Append(stream.data() + fed, chunk);
      fed += chunk;
      for (;;) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        decoded.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Failpoint-injected short I/O over a real socketpair (chaos builds; these
// skip when failpoints are compiled out). The codec contract — reassembly
// under any re-chunking, sticky failure after corruption — must hold when
// the chunking is imposed by the transport itself through the instrumented
// syscall wrappers the server and client actually use.
// ---------------------------------------------------------------------------

class NetFrameFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out; build with -DAPCM_FAILPOINTS=ON";
    }
    failpoint::DisarmAll();
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  /// Writes all of `bytes` through the client-side instrumented send —
  /// armed short-write failpoints tear the stream exactly where told to.
  void SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = InstrumentedSend(IoSide::kClient, fds_[0],
                                         bytes.data() + sent,
                                         bytes.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  int fds_[2] = {-1, -1};
};

TEST_F(NetFrameFailpointTest, ShortIoAtEverySplitOffsetReassembles) {
  const std::vector<Frame> frames = SampleFrames();
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  for (size_t split = 1; split < stream.size(); ++split) {
    SCOPED_TRACE("split " + std::to_string(split));
    // The first send of this round is clamped to exactly `split` bytes (the
    // failpoint exhausts after one fire), and the first recv to 3, so every
    // frame boundary gets torn on both sides of the socket over the sweep.
    ASSERT_TRUE(failpoint::Configure("net.client.send.short",
                                     "1*return(" + std::to_string(split) + ")")
                    .ok());
    ASSERT_TRUE(
        failpoint::Configure("net.server.recv.short", "1*return(3)").ok());
    SendAll(stream);

    FrameDecoder decoder;
    std::vector<Frame> decoded;
    size_t received = 0;
    char buf[4096];
    while (received < stream.size()) {
      const ssize_t n =
          InstrumentedRecv(IoSide::kServer, fds_[1], buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      received += static_cast<size_t>(n);
      decoder.Append(buf, static_cast<size_t>(n));
      for (;;) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        decoded.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i]);
    }
  }
  EXPECT_GT(failpoint::Hits("net.client.send.short"), 0u);
  EXPECT_GT(failpoint::Hits("net.server.recv.short"), 0u);
}

TEST_F(NetFrameFailpointTest, GatheredWritevClampedAtEveryOffsetReassembles) {
  // The reactor drains each connection's outbox with one gathered writev per
  // wakeup, one iovec entry per batched frame (reactor.h). This replays that
  // exact shape through the instrumented wrapper with the write clamped at
  // every byte offset of the coalesced batch, so the first torn syscall
  // lands mid-entry — i.e. mid-frame — at every possible position, and the
  // tail-replay loop must resume without losing or duplicating a byte.
  const std::vector<Frame> frames = SampleFrames();
  std::vector<std::string> encoded;
  size_t total = 0;
  for (const Frame& frame : frames) {
    encoded.push_back(EncodeFrame(frame));
    total += encoded.back().size();
  }

  for (size_t clamp = 1; clamp < total; ++clamp) {
    SCOPED_TRACE("clamp " + std::to_string(clamp));
    ASSERT_TRUE(failpoint::Configure("net.reactor.writev.short",
                                     "1*return(" + std::to_string(clamp) + ")")
                    .ok());

    // Outbox drain: gather everything unsent into one iovec array (the
    // first entry possibly mid-frame), writev, advance by whatever the
    // socket — or the armed clamp — actually took, repeat.
    size_t sent = 0;
    while (sent < total) {
      struct iovec iov[64];
      int cnt = 0;
      size_t skip = sent;
      for (const std::string& bytes : encoded) {
        if (skip >= bytes.size()) {
          skip -= bytes.size();
          continue;
        }
        iov[cnt].iov_base = const_cast<char*>(bytes.data()) + skip;
        iov[cnt].iov_len = bytes.size() - skip;
        skip = 0;
        if (++cnt == 64) break;
      }
      const ssize_t n = InstrumentedWritev(IoSide::kServer, fds_[0], iov, cnt);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }

    FrameDecoder decoder;
    std::vector<Frame> decoded;
    size_t received = 0;
    char buf[4096];
    while (received < total) {
      const ssize_t n = ::recv(fds_[1], buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      received += static_cast<size_t>(n);
      decoder.Append(buf, static_cast<size_t>(n));
      for (;;) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        decoded.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i]);
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
  EXPECT_GT(failpoint::Hits("net.reactor.writev.short"), 0u);
}

TEST_F(NetFrameFailpointTest, CorruptionUnderTornIoKeepsStickyError) {
  const std::vector<Frame> frames = SampleFrames();
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  Rng rng(4242);
  for (int iter = 0; iter < 64; ++iter) {
    SCOPED_TRACE("iter " + std::to_string(iter));
    std::string corrupted = stream;
    corrupted[rng.Uniform(corrupted.size())] =
        static_cast<char>(rng.Uniform(256));
    // Seeded probabilistic tearing on both sides: the same corrupted bytes
    // arrive in transport-imposed shreds.
    const std::string seed = std::to_string(1000 + iter);
    ASSERT_TRUE(failpoint::Configure("net.client.send.short",
                                     "50%return(5)@" + seed)
                    .ok());
    ASSERT_TRUE(failpoint::Configure("net.server.recv.short",
                                     "50%return(3)@" + seed)
                    .ok());
    SendAll(corrupted);

    FrameDecoder decoder;
    Status first_error;
    size_t received = 0;
    char buf[4096];
    while (received < corrupted.size()) {
      const ssize_t n =
          InstrumentedRecv(IoSide::kServer, fds_[1], buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      received += static_cast<size_t>(n);
      decoder.Append(buf, static_cast<size_t>(n));
      for (;;) {
        auto next = decoder.Next();
        if (!next.ok()) {
          EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
          if (first_error.ok()) {
            first_error = next.status();
          } else {
            // Sticky-error contract: the stream reports the same failure no
            // matter how many more shredded bytes arrive.
            EXPECT_EQ(next.status(), first_error);
          }
          break;
        }
        if (!next->has_value()) break;
        // A surviving frame must be internally consistent enough to
        // re-encode (EncodeFrame CHECKs the payload bound). kUnknown frames
        // are decoder-only (a corrupted type byte lands here) and have no
        // encoding.
        if ((*next)->type != FrameType::kUnknown) (void)EncodeFrame(**next);
      }
    }
    if (!first_error.ok()) {
      EXPECT_TRUE(decoder.failed());
      EXPECT_EQ(decoder.Next().status(), first_error);
    }
    failpoint::DisarmAll();
  }
}

}  // namespace
}  // namespace apcm::net
