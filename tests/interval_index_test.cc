#include "src/index/interval_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/base/rng.h"

namespace apcm::index {
namespace {

std::vector<uint32_t> StabSorted(const IntervalIndex& index, Value v) {
  std::vector<uint32_t> hits;
  index.Stab(v, [&](uint32_t payload) { hits.push_back(payload); });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(IntervalIndexTest, EmptyIndex) {
  IntervalIndex index;
  index.Build();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(StabSorted(index, 0).empty());
}

TEST(IntervalIndexTest, PointIntervals) {
  IntervalIndex index;
  index.Add({5, 5}, 1);
  index.Add({5, 5}, 2);
  index.Add({7, 7}, 3);
  index.Build();
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(StabSorted(index, 5), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(StabSorted(index, 7), (std::vector<uint32_t>{3}));
  EXPECT_TRUE(StabSorted(index, 6).empty());
}

TEST(IntervalIndexTest, SpanIntervals) {
  IntervalIndex index;
  index.Add({0, 10}, 1);
  index.Add({5, 15}, 2);
  index.Add({20, 30}, 3);
  index.Build();
  EXPECT_EQ(StabSorted(index, 0), (std::vector<uint32_t>{1}));
  EXPECT_EQ(StabSorted(index, 5), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(StabSorted(index, 10), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(StabSorted(index, 11), (std::vector<uint32_t>{2}));
  EXPECT_EQ(StabSorted(index, 16), (std::vector<uint32_t>{}));
  EXPECT_EQ(StabSorted(index, 25), (std::vector<uint32_t>{3}));
}

TEST(IntervalIndexTest, MixedPointsAndSpans) {
  IntervalIndex index;
  index.Add({10, 10}, 1);   // point inside span
  index.Add({0, 20}, 2);
  index.Build();
  EXPECT_EQ(StabSorted(index, 10), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(StabSorted(index, 11), (std::vector<uint32_t>{2}));
}

TEST(IntervalIndexTest, EmptyIntervalIgnored) {
  IntervalIndex index;
  index.Add({10, 5}, 1);
  index.Build();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(StabSorted(index, 7).empty());
}

TEST(IntervalIndexTest, NegativeValues) {
  IntervalIndex index;
  index.Add({-100, -50}, 1);
  index.Add({-60, 10}, 2);
  index.Build();
  EXPECT_EQ(StabSorted(index, -55), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(StabSorted(index, -70), (std::vector<uint32_t>{1}));
  EXPECT_EQ(StabSorted(index, 0), (std::vector<uint32_t>{2}));
}

TEST(IntervalIndexTest, NestedAndIdenticalIntervals) {
  IntervalIndex index;
  for (uint32_t i = 0; i < 10; ++i) {
    index.Add({Value{10} - i, Value{10} + i}, i);  // nested around 10
  }
  index.Add({5, 15}, 100);
  index.Add({5, 15}, 101);  // identical twin
  index.Build();
  const auto at_center = StabSorted(index, 10);
  EXPECT_EQ(at_center.size(), 12u);  // all nested + both twins
  const auto at_5 = StabSorted(index, 5);
  // Intervals {10-i, 10+i} with i >= 5 contain 5, plus the twins.
  EXPECT_EQ(at_5.size(), 7u);
}

// Property test: random intervals vs. brute force over a sweep of values.
class IntervalIndexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalIndexRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int num_intervals = 200;
  const Value domain = 500;
  std::vector<ValueInterval> intervals;
  IntervalIndex index;
  for (int i = 0; i < num_intervals; ++i) {
    Value lo = rng.UniformInt(0, domain);
    Value hi = rng.Bernoulli(0.3) ? lo : rng.UniformInt(lo, domain);
    intervals.push_back({lo, hi});
    index.Add({lo, hi}, static_cast<uint32_t>(i));
  }
  index.Build();
  for (Value v = -5; v <= domain + 5; ++v) {
    std::vector<uint32_t> expected;
    for (int i = 0; i < num_intervals; ++i) {
      if (intervals[static_cast<size_t>(i)].Contains(v)) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    EXPECT_EQ(StabSorted(index, v), expected) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalIndexRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IntervalIndexTest, MemoryBytesNonZeroAfterBuild) {
  IntervalIndex index;
  index.Add({0, 10}, 1);
  index.Add({5, 5}, 2);
  index.Build();
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace apcm::index
