// Deterministic robustness fuzzing: random and mutated inputs must produce
// Status errors (or valid results), never crashes, hangs, or invariant
// violations. Complements the structured unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/file_io.h"
#include "src/base/rng.h"
#include "src/be/parser.h"
#include "src/bitmap/bitmap.h"
#include "src/bitmap/container.h"
#include "src/bitmap/kernels.h"
#include "src/engine/engine.h"
#include "src/index/scan.h"
#include "src/index/sharded.h"
#include "src/store/checkpoint.h"
#include "src/store/durable_store.h"
#include "src/store/wal.h"
#include "src/workload/generator.h"
#include "src/workload/trace.h"

namespace apcm {
namespace {

std::string RandomString(Rng& rng, size_t max_len) {
  // Biased toward the grammar's alphabet so parsing gets past the first
  // character often enough to explore deep paths.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 _=<>!{}[],-and or between in";
  const size_t len = rng.Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.Bernoulli(0.02)) {
      s += static_cast<char>(rng.Uniform(256));  // occasional raw byte
    } else {
      s += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
  }
  return s;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomInputNeverCrashes) {
  Rng rng(GetParam());
  Catalog catalog;
  Parser parser(&catalog);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomString(rng, 80);
    // Any of ok / error is fine; the process must survive and any parsed
    // artifact must be internally consistent.
    auto pred = parser.ParsePredicate(input);
    auto expr = parser.ParseExpression(1, input);
    if (expr.ok()) {
      for (size_t p = 1; p < expr->predicates().size(); ++p) {
        ASSERT_LT(expr->predicates()[p - 1].attribute(),
                  expr->predicates()[p].attribute());
      }
    }
    auto event = parser.ParseEvent(input);
    if (event.ok()) {
      for (size_t e = 1; e < event->entries().size(); ++e) {
        ASSERT_LT(event->entries()[e - 1].attr, event->entries()[e].attr);
      }
    }
    auto dnf = parser.ParseDisjunction(input);
    (void)pred;
    (void)dnf;
  }
}

TEST_P(ParserFuzzTest, MutatedValidInputNeverCrashes) {
  Rng rng(GetParam() ^ 0xF00D);
  Catalog catalog;
  Parser parser(&catalog);
  const std::string valid =
      "price <= 100 and category in {1, 2, 3} and age between [20, 30]";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    (void)parser.ParseExpression(0, mutated);
    (void)parser.ParseEvent(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1001, 1002, 1003, 1004));

// ---------------------------------------------------------------------------
// Differential soak: seeded random subscribe / unsubscribe / match
// interleavings, with SCAN over the live subscription set as the oracle.
// Runs a short budget by default; scale it up with APCM_SOAK_OPS (the ctest
// label "soak" marks this binary for long runs). Every assertion carries the
// seed, so a failure reproduces with a single-value --gtest_filter run.

size_t SoakOps() {
  if (const char* env = std::getenv("APCM_SOAK_OPS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 250;  // short default: keeps the tier-1 suite fast
}

workload::WorkloadSpec SoakPoolSpec(uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 500;
  spec.num_events = 200;
  spec.num_attributes = 16;
  spec.domain_min = 0;
  spec.domain_max = 400;
  spec.min_predicates = 1;
  spec.max_predicates = 5;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 8;
  spec.seeded_event_fraction = 0.6;
  return spec;
}

class DifferentialSoakTest : public ::testing::TestWithParam<uint64_t> {};

// Engine-level soak: random mutation bursts interleaved with event batches.
// Each batch is published against a quiesced subscription set, so SCAN over
// the model's live set is an exact per-event oracle; the mutation bursts in
// between still drive the delta path, per-shard rebuilds, and compactions.
TEST_P(DifferentialSoakTest, EngineAgreesWithScanUnderChurn) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("reproduce with: --gtest_filter='*EngineAgreesWithScan*' "
               "(failing seed = " +
               std::to_string(seed) + ", ops = " + std::to_string(SoakOps()) +
               ")");
  Rng rng(seed);
  const auto pool = workload::Generate(SoakPoolSpec(seed)).value();

  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  // Vary the engine shape per seed: shard count, fan-out threads, and
  // whether the incremental path is enabled at all.
  const uint32_t shard_choices[] = {1, 2, 4, 7};
  options.num_shards = shard_choices[rng.Uniform(4)];
  options.shard_threads = 1 + static_cast<int>(rng.Uniform(2));
  options.matcher.pcm.clustering.cluster_size = 32;
  options.batch_size = 8;
  options.osr.window_size = rng.Bernoulli(0.5) ? 16 : 0;
  options.buffer_capacity = 32;
  options.incremental_rebuild_threshold = rng.Bernoulli(0.25) ? 0.0 : 0.25;

  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  engine::StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        by_event[event_id] = matches;
      });

  // The model: live subscriptions by engine-assigned id.
  std::map<SubscriptionId, BooleanExpression> live;
  std::vector<SubscriptionId> live_ids;
  size_t next_pool_sub = 0;
  uint64_t published = 0;
  auto subscribe = [&] {
    const auto& sub =
        pool.subscriptions[next_pool_sub++ % pool.subscriptions.size()];
    auto id = engine.AddSubscription(sub.predicates());
    ASSERT_TRUE(id.ok());
    live.emplace(*id, BooleanExpression::Create(*id, sub.predicates()).value());
    live_ids.push_back(*id);
  };
  for (int i = 0; i < 30; ++i) subscribe();

  const size_t ops = SoakOps();
  for (size_t op = 0; op < ops; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45) {
      subscribe();
    } else if (dice < 70 && !live_ids.empty()) {
      const size_t pick = rng.Uniform(live_ids.size());
      const SubscriptionId id = live_ids[pick];
      live_ids.erase(live_ids.begin() + static_cast<ptrdiff_t>(pick));
      live.erase(id);
      ASSERT_TRUE(engine.RemoveSubscription(id).ok()) << "id " << id;
    } else {
      // Match burst: quiesce, then publish a small batch with no
      // interleaved mutations and check it exactly against scan.
      engine.Flush();
      std::vector<BooleanExpression> subs;
      subs.reserve(live.size());
      for (const auto& [id, sub] : live) subs.push_back(sub);
      index::ScanMatcher scan;
      scan.Build(subs);
      const size_t burst = 1 + rng.Uniform(8);
      std::vector<uint64_t> ids;
      std::vector<const Event*> events;
      for (size_t e = 0; e < burst; ++e) {
        const Event& event =
            pool.events[rng.Uniform(pool.events.size())];
        events.push_back(&event);
        ids.push_back(engine.Publish(event));
        ++published;
      }
      engine.Flush();
      std::vector<SubscriptionId> expected;
      for (size_t e = 0; e < burst; ++e) {
        scan.Match(*events[e], &expected);
        ASSERT_EQ(by_event.at(ids[e]), expected)
            << "event " << ids[e] << " (" << events[e]->ToString() << ") with "
            << options.num_shards << " shards, threshold "
            << options.incremental_rebuild_threshold;
      }
    }
  }
  engine.Flush();
  // Exactly-once delivery across the whole interleaving.
  EXPECT_EQ(by_event.size(), published);
  EXPECT_EQ(engine.stats().events_processed, published);
}

// Matcher-level soak: ShardedMatcher absorbing incremental adds/removes must
// agree with a scan oracle rebuilt from the model at every checkpoint.
TEST_P(DifferentialSoakTest, ShardedIncrementalAgreesWithScanOracle) {
  const uint64_t seed = GetParam() ^ 0x50AC;
  SCOPED_TRACE("reproduce with seed = " + std::to_string(GetParam()));
  Rng rng(seed);
  const auto pool = workload::Generate(SoakPoolSpec(seed)).value();

  index::ShardedOptions sharded;
  const uint32_t shard_choices[] = {1, 3, 8};
  sharded.num_shards = shard_choices[rng.Uniform(3)];
  sharded.num_threads = 2;
  engine::MatcherConfig config;
  config.pcm.clustering.cluster_size = 32;
  auto matcher =
      engine::CreateShardedMatcher(engine::MatcherKind::kAPcm, config, sharded);

  // Ids must be unique forever (engine semantics): allocate monotonically.
  SubscriptionId next_id = 0;
  std::map<SubscriptionId, BooleanExpression> live;
  std::vector<SubscriptionId> live_ids;
  std::vector<BooleanExpression> base;
  for (int i = 0; i < 40; ++i) {
    const auto& sub = pool.subscriptions[i];
    base.push_back(BooleanExpression::Create(next_id, sub.predicates()).value());
    live.emplace(next_id, base.back());
    live_ids.push_back(next_id);
    ++next_id;
  }
  matcher->Build(base);

  const size_t ops = SoakOps();
  for (size_t op = 0; op < ops; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45) {
      const auto& sub =
          pool.subscriptions[rng.Uniform(pool.subscriptions.size())];
      auto expr = BooleanExpression::Create(next_id, sub.predicates()).value();
      matcher->AddIncremental(expr);
      live.emplace(next_id, std::move(expr));
      live_ids.push_back(next_id);
      ++next_id;
    } else if (dice < 70 && !live_ids.empty()) {
      const size_t pick = rng.Uniform(live_ids.size());
      const SubscriptionId id = live_ids[pick];
      live_ids.erase(live_ids.begin() + static_cast<ptrdiff_t>(pick));
      live.erase(id);
      ASSERT_TRUE(matcher->RemoveIncremental(id).ok()) << "id " << id;
    } else {
      std::vector<BooleanExpression> subs;
      subs.reserve(live.size());
      for (const auto& [id, sub] : live) subs.push_back(sub);
      index::ScanMatcher scan;
      scan.Build(subs);
      std::vector<SubscriptionId> expected;
      std::vector<SubscriptionId> actual;
      for (size_t e = 0; e < 4; ++e) {
        const Event& event = pool.events[rng.Uniform(pool.events.size())];
        scan.Match(event, &expected);
        matcher->Match(event, &actual);
        ASSERT_EQ(actual, expected)
            << event.ToString() << " with " << sharded.num_shards
            << " shards after " << op << " ops";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSoakTest,
                         ::testing::Values(2001, 2002, 2003, 2004));

// ---------------------------------------------------------------------------
// Kernel fuzz: random word spans through every supported SIMD variant, with
// the scalar table as the oracle. Complements the exhaustive alignment/tail
// sweep in bitmap_kernel_test.cc with long random spans and random lengths;
// scales with APCM_SOAK_OPS like the other soak tests.

class KernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelFuzzTest, AllVariantsAgreeOnRandomSpans) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("failing seed = " + std::to_string(seed));
  Rng rng(seed);
  const auto& oracle = bitmap::ScalarKernels();
  const auto levels = bitmap::SupportedSimdLevels();
  const size_t rounds = SoakOps();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t words = rng.Uniform(300);
    const uint64_t offset = rng.Uniform(8);
    std::vector<uint64_t> a(words + offset);
    std::vector<uint64_t> b(words + offset);
    for (auto& w : a) w = rng.Bernoulli(0.2) ? 0 : rng();
    for (auto& w : b) w = rng.Bernoulli(0.2) ? ~0ULL : rng();
    const uint64_t* pa = a.data() + offset;
    const uint64_t* pb = b.data() + offset;

    for (const bitmap::SimdLevel level : levels) {
      const auto& table = bitmap::KernelsFor(level);
      for (int op = 0; op < 3; ++op) {
        std::vector<uint64_t> want(pa, pa + words);
        std::vector<uint64_t> got(pa, pa + words);
        if (op == 0) {
          oracle.and_words(want.data(), pb, words);
          table.and_words(got.data(), pb, words);
        } else if (op == 1) {
          oracle.and_not_words(want.data(), pb, words);
          table.and_not_words(got.data(), pb, words);
        } else {
          oracle.or_words(want.data(), pb, words);
          table.or_words(got.data(), pb, words);
        }
        ASSERT_EQ(got, want) << "op " << op << " level "
                             << bitmap::SimdLevelName(level) << " words "
                             << words << " offset " << offset;
      }
      ASSERT_EQ(table.popcount_words(pa, words),
                oracle.popcount_words(pa, words));
      ASSERT_EQ(table.is_zero_words(pa, words),
                oracle.is_zero_words(pa, words));
      ASSERT_EQ(table.first_set_bit(pa, words),
                oracle.first_set_bit(pa, words));
      const uint64_t bits = oracle.popcount_words(pa, words);
      std::vector<uint32_t> want_idx(bits + 1, ~0u);
      std::vector<uint32_t> got_idx(bits + 1, ~0u);
      ASSERT_EQ(table.collect_set_bits(pa, words, 0, got_idx.data()),
                oracle.collect_set_bits(pa, words, 0, want_idx.data()));
      ASSERT_EQ(got_idx, want_idx);
    }
  }
}

TEST_P(KernelFuzzTest, ContainerChurnTracksOracle) {
  // Random promote/demote churn on the hybrid container with a Bitmap as
  // oracle; random Optimize() calls force transitions through all three
  // representations.
  const uint64_t seed = GetParam() ^ 0xC0117;
  SCOPED_TRACE("failing seed = " + std::to_string(seed));
  Rng rng(seed);
  const uint32_t universe =
      64 + static_cast<uint32_t>(rng.Uniform(2000));
  bitmap::HybridBitmap h(universe);
  Bitmap oracle(universe);
  const size_t steps = SoakOps() * 20;
  for (size_t step = 0; step < steps; ++step) {
    const auto i = static_cast<uint32_t>(rng.Uniform(universe));
    if (rng.Bernoulli(0.6)) {
      h.Add(i);
      oracle.Set(i);
    } else if (rng.Bernoulli(0.1)) {
      // Contiguous block add — steers the set toward run-friendly shapes.
      const uint32_t len =
          static_cast<uint32_t>(rng.Uniform(64)) + 1;
      for (uint32_t k = i; k < std::min(universe, i + len); ++k) {
        h.Add(k);
        oracle.Set(k);
      }
    } else {
      h.Remove(i);
      oracle.Clear(i);
    }
    if (rng.Bernoulli(0.01)) h.Optimize();
    if (step % 256 == 0) {
      ASSERT_EQ(h.Count(), oracle.Count()) << "step " << step;
      const auto got = h.ToIndices();
      const auto want = oracle.ToIndices();
      ASSERT_EQ(got.size(), want.size()) << "step " << step;
      for (size_t k = 0; k < got.size(); ++k) {
        ASSERT_EQ(got[k], want[k]) << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzzTest,
                         ::testing::Values(3001, 3002, 3003, 3004));

TEST(TraceFuzzTest, CorruptBinaryNeverCrashes) {
  // Serialize a valid workload, then flip bytes and reload: every outcome
  // must be a Status or a structurally valid workload (the loader validates
  // expressions), never a crash or unbounded allocation.
  workload::WorkloadSpec spec;
  spec.num_subscriptions = 50;
  spec.num_events = 20;
  spec.num_attributes = 10;
  spec.max_predicates = 4;
  spec.min_predicates = 1;
  spec.min_event_attrs = 1;
  spec.max_event_attrs = 5;
  const auto workload = workload::Generate(spec).value();
  const std::string path = "/tmp/apcm_fuzz_trace.bin";
  ASSERT_TRUE(workload::SaveBinary(workload, path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      corrupted[rng.Uniform(corrupted.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    const std::string corrupt_path = "/tmp/apcm_fuzz_trace_corrupt.bin";
    std::FILE* out = std::fopen(corrupt_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(corrupted.data(), 1, corrupted.size(), out);
    std::fclose(out);
    auto loaded = workload::LoadBinary(corrupt_path);
    (void)loaded;  // either outcome is acceptable
  }
  std::remove(path.c_str());
  std::remove("/tmp/apcm_fuzz_trace_corrupt.bin");
}

// ---------------------------------------------------------------------------
// Durable-store codecs: the WAL frame and checkpoint formats must absorb
// torn tails and arbitrary corruption without crashing, and checksums must
// never let a damaged record through as valid.

/// A small WAL stream exercising every record kind, with the cumulative
/// frame boundary after each record (boundaries[0] == 0).
struct WalSample {
  std::vector<store::WalRecord> records;
  std::vector<size_t> boundaries;
  std::string bytes;
};

WalSample MakeWalSample() {
  WalSample sample;
  sample.boundaries.push_back(0);
  uint64_t seq = 0;
  auto push = [&sample, &seq](store::WalRecord record) {
    record.seq = ++seq;
    store::EncodeWalRecord(record, &sample.bytes);
    sample.boundaries.push_back(sample.bytes.size());
    sample.records.push_back(std::move(record));
  };
  store::WalRecord add;
  add.kind = store::WalRecord::Kind::kAdd;
  add.id = 0;
  add.disjuncts.push_back({Predicate(0, Op::kGe, 5), Predicate(3, -7, 12),
                           Predicate(5, std::vector<Value>{1, 9, 4})});
  push(add);
  store::WalRecord dnf;
  dnf.kind = store::WalRecord::Kind::kAddDnf;
  dnf.id = 1;
  dnf.disjuncts.push_back({Predicate(1, Op::kLt, 3)});
  dnf.disjuncts.push_back({Predicate(2, Op::kNe, -1)});
  push(dnf);
  store::WalRecord prio;
  prio.kind = store::WalRecord::Kind::kPriority;
  prio.id = 1;
  prio.priority = 2.5;
  push(prio);
  store::WalRecord remove;
  remove.kind = store::WalRecord::Kind::kRemove;
  remove.id = 0;
  push(remove);
  store::WalRecord wide;
  wide.kind = store::WalRecord::Kind::kAdd;
  wide.id = 3;
  std::vector<Predicate> conj;
  for (AttributeId attr = 0; attr < 12; ++attr) {
    conj.push_back(Predicate(attr, Op::kLe, static_cast<Value>(attr) * 7));
  }
  wide.disjuncts.push_back(std::move(conj));
  push(wide);
  return sample;
}

std::string EncodeOne(const store::WalRecord& record) {
  std::string out;
  store::EncodeWalRecord(record, &out);
  return out;
}

TEST(WalFuzzTest, TruncationAtEveryByteOffsetDecodesAnExactPrefix) {
  const WalSample sample = MakeWalSample();
  for (size_t len = 0; len <= sample.bytes.size(); ++len) {
    const auto result =
        store::DecodeWalBuffer(std::string_view(sample.bytes).substr(0, len));
    // Expected: every record whose frame ends at or before the cut.
    size_t expect = 0;
    while (expect + 1 < sample.boundaries.size() &&
           sample.boundaries[expect + 1] <= len) {
      ++expect;
    }
    ASSERT_EQ(result.records.size(), expect) << "cut at " << len;
    ASSERT_EQ(result.valid_bytes, sample.boundaries[expect]);
    ASSERT_EQ(result.torn, len != sample.boundaries[expect]);
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_EQ(EncodeOne(result.records[i]), EncodeOne(sample.records[i]));
    }
  }
}

TEST(WalFuzzTest, EverySingleBitFlipIsDetected) {
  const WalSample sample = MakeWalSample();
  for (size_t bit = 0; bit < sample.bytes.size() * 8; ++bit) {
    std::string corrupted = sample.bytes;
    corrupted[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    const auto result = store::DecodeWalBuffer(corrupted);
    // The flipped frame must not survive; everything before it must.
    ASSERT_LT(result.records.size(), sample.records.size()) << "bit " << bit;
    ASSERT_TRUE(result.torn);
    for (size_t i = 0; i < result.records.size(); ++i) {
      ASSERT_EQ(EncodeOne(result.records[i]), EncodeOne(sample.records[i]));
    }
  }
}

TEST(WalFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(77);
  for (int trial = 0; trial < 400; ++trial) {
    std::string garbage(rng.Uniform(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    const auto result = store::DecodeWalBuffer(garbage);
    ASSERT_LE(result.valid_bytes, garbage.size());
  }
}

/// Torn tails at the store level: truncate a segment at every byte offset
/// and recover. Recovery must never crash, must replay the exact frame
/// prefix, and must count the torn tail.
TEST(WalFuzzTest, StoreRecoversFromTruncationAtEveryByteOffset) {
  const WalSample sample = MakeWalSample();
  const std::string dir = "/tmp/apcm_fuzz_wal_store";
  store::StoreOptions options;
  options.dir = dir;
  for (size_t len = 0; len <= sample.bytes.size(); ++len) {
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(CreateDirIfMissing(dir).ok());
    ASSERT_TRUE(AtomicWriteFile(dir + "/" + store::WalSegmentName(0),
                                sample.bytes.substr(0, len))
                    .ok());
    store::RecoveryInfo info;
    auto opened = store::DurableStore::Open(options, &info);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    size_t expect = 0;
    while (expect + 1 < sample.boundaries.size() &&
           sample.boundaries[expect + 1] <= len) {
      ++expect;
    }
    ASSERT_EQ(info.records.size(), expect) << "cut at " << len;
    ASSERT_EQ(info.torn_tails, len == sample.boundaries[expect] ? 0u : 1u);
    ASSERT_EQ((*opened)->last_seq(), expect);
  }
  std::filesystem::remove_all(dir);
}

store::CheckpointState SampleCheckpoint() {
  store::CheckpointState state;
  state.wal_seq = 42;
  state.next_sub_id = 7;
  state.subscriptions.push_back(
      {0, {Predicate(0, Op::kGe, 5), Predicate(2, -3, 3)}});
  state.subscriptions.push_back({2, {Predicate(1, Op::kEq, 9)}});
  state.subscriptions.push_back(
      {5, {Predicate(4, std::vector<Value>{2, 4, 8})}});
  state.priorities.push_back({2, 1.5});
  state.dnf_groups.push_back({3, {3, 4}});
  state.index_kind = "a-pcm";
  state.index_image = std::string("\x01\x02pretend-index\x00\x7f", 17);
  return state;
}

TEST(CheckpointFuzzTest, TruncationsAndBitFlipsAreAlwaysRejected) {
  const std::string bytes = store::EncodeCheckpoint(SampleCheckpoint());
  ASSERT_TRUE(store::DecodeCheckpoint(bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    ASSERT_FALSE(
        store::DecodeCheckpoint(std::string_view(bytes).substr(0, len)).ok())
        << "truncation at " << len;
  }
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string corrupted = bytes;
    corrupted[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    ASSERT_FALSE(store::DecodeCheckpoint(corrupted).ok()) << "bit " << bit;
  }
}

TEST(CheckpointFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(88);
  for (int trial = 0; trial < 400; ++trial) {
    std::string garbage(rng.Uniform(768), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    (void)store::DecodeCheckpoint(garbage);
  }
  // Valid magic with a garbage body exercises the structural validators
  // behind the magic check.
  for (int trial = 0; trial < 400; ++trial) {
    std::string garbage = "APCMCKP1";
    const size_t body = rng.Uniform(256);
    for (size_t i = 0; i < body; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)store::DecodeCheckpoint(garbage);
  }
}

}  // namespace
}  // namespace apcm
