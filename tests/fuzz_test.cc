// Deterministic robustness fuzzing: random and mutated inputs must produce
// Status errors (or valid results), never crashes, hangs, or invariant
// violations. Complements the structured unit tests.

#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/be/parser.h"
#include "src/workload/trace.h"

namespace apcm {
namespace {

std::string RandomString(Rng& rng, size_t max_len) {
  // Biased toward the grammar's alphabet so parsing gets past the first
  // character often enough to explore deep paths.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 _=<>!{}[],-and or between in";
  const size_t len = rng.Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.Bernoulli(0.02)) {
      s += static_cast<char>(rng.Uniform(256));  // occasional raw byte
    } else {
      s += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
  }
  return s;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomInputNeverCrashes) {
  Rng rng(GetParam());
  Catalog catalog;
  Parser parser(&catalog);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomString(rng, 80);
    // Any of ok / error is fine; the process must survive and any parsed
    // artifact must be internally consistent.
    auto pred = parser.ParsePredicate(input);
    auto expr = parser.ParseExpression(1, input);
    if (expr.ok()) {
      for (size_t p = 1; p < expr->predicates().size(); ++p) {
        ASSERT_LT(expr->predicates()[p - 1].attribute(),
                  expr->predicates()[p].attribute());
      }
    }
    auto event = parser.ParseEvent(input);
    if (event.ok()) {
      for (size_t e = 1; e < event->entries().size(); ++e) {
        ASSERT_LT(event->entries()[e - 1].attr, event->entries()[e].attr);
      }
    }
    auto dnf = parser.ParseDisjunction(input);
    (void)pred;
    (void)dnf;
  }
}

TEST_P(ParserFuzzTest, MutatedValidInputNeverCrashes) {
  Rng rng(GetParam() ^ 0xF00D);
  Catalog catalog;
  Parser parser(&catalog);
  const std::string valid =
      "price <= 100 and category in {1, 2, 3} and age between [20, 30]";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    (void)parser.ParseExpression(0, mutated);
    (void)parser.ParseEvent(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1001, 1002, 1003, 1004));

TEST(TraceFuzzTest, CorruptBinaryNeverCrashes) {
  // Serialize a valid workload, then flip bytes and reload: every outcome
  // must be a Status or a structurally valid workload (the loader validates
  // expressions), never a crash or unbounded allocation.
  workload::WorkloadSpec spec;
  spec.num_subscriptions = 50;
  spec.num_events = 20;
  spec.num_attributes = 10;
  spec.max_predicates = 4;
  spec.min_predicates = 1;
  spec.min_event_attrs = 1;
  spec.max_event_attrs = 5;
  const auto workload = workload::Generate(spec).value();
  const std::string path = "/tmp/apcm_fuzz_trace.bin";
  ASSERT_TRUE(workload::SaveBinary(workload, path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      corrupted[rng.Uniform(corrupted.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    const std::string corrupt_path = "/tmp/apcm_fuzz_trace_corrupt.bin";
    std::FILE* out = std::fopen(corrupt_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(corrupted.data(), 1, corrupted.size(), out);
    std::fclose(out);
    auto loaded = workload::LoadBinary(corrupt_path);
    (void)loaded;  // either outcome is acceptable
  }
  std::remove(path.c_str());
  std::remove("/tmp/apcm_fuzz_trace_corrupt.bin");
}

}  // namespace
}  // namespace apcm
