#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace apcm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  Rng rng2(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Bernoulli(0.0));
    EXPECT_TRUE(rng2.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child and parent streams should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
  // Fork is deterministic: same parent state forks the same child.
  Rng parent2(31);
  Rng child2 = parent2.Fork();
  Rng parent3(31);
  Rng child3 = parent3.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child2(), child3());
  }
}

}  // namespace
}  // namespace apcm
