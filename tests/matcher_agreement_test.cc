// The keystone property test of the repository: every matching algorithm —
// the four baselines and every PCM configuration — must produce *identical*
// match sets on randomized workloads sweeping all generator knobs. SCAN is
// the executable specification.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "src/bitmap/kernels.h"
#include "src/engine/engine.h"
#include "src/engine/matcher_factory.h"
#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

using engine::CreateMatcher;
using engine::MatcherConfig;
using engine::MatcherKind;

struct AgreementCase {
  const char* name;
  workload::WorkloadSpec spec;
};

workload::WorkloadSpec BaseSpec(uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_subscriptions = 300;
  spec.num_events = 100;
  spec.num_attributes = 25;
  spec.domain_min = 0;
  spec.domain_max = 1000;
  spec.min_predicates = 1;
  spec.max_predicates = 6;
  spec.min_event_attrs = 2;
  spec.max_event_attrs = 10;
  spec.seeded_event_fraction = 0.5;
  return spec;
}

std::vector<AgreementCase> MakeCases() {
  std::vector<AgreementCase> cases;
  cases.push_back({"default", BaseSpec(1)});

  auto spec = BaseSpec(2);
  spec.equality_fraction = 1.0;
  spec.in_fraction = spec.ne_fraction = spec.inequality_fraction = 0;
  cases.push_back({"equality_only", spec});

  spec = BaseSpec(3);
  spec.equality_fraction = 0;
  spec.in_fraction = 0;
  spec.ne_fraction = 0;
  spec.inequality_fraction = 0;  // all between
  cases.push_back({"ranges_only", spec});

  spec = BaseSpec(4);
  spec.ne_fraction = 0.5;
  spec.in_fraction = 0.3;
  spec.equality_fraction = 0.1;
  spec.inequality_fraction = 0.1;
  cases.push_back({"ne_and_in_heavy", spec});

  spec = BaseSpec(5);
  spec.attribute_zipf = 2.0;
  cases.push_back({"zipf_attributes", spec});

  spec = BaseSpec(6);
  spec.value_zipf = 1.2;
  cases.push_back({"zipf_values", spec});

  spec = BaseSpec(7);
  spec.domain_min = -500;
  spec.domain_max = 500;
  cases.push_back({"negative_domain", spec});

  spec = BaseSpec(8);
  spec.domain_min = 0;
  spec.domain_max = 1;  // tiny domain: heavy predicate collisions
  spec.equality_fraction = 0.6;
  spec.in_fraction = 0;
  cases.push_back({"binary_domain", spec});

  spec = BaseSpec(9);
  spec.seeded_event_fraction = 1.0;  // high match probability
  cases.push_back({"all_seeded", spec});

  spec = BaseSpec(10);
  spec.seeded_event_fraction = 0.0;  // near-zero match probability
  cases.push_back({"none_seeded", spec});

  spec = BaseSpec(11);
  spec.min_predicates = 1;
  spec.max_predicates = 1;  // single-predicate subscriptions
  cases.push_back({"single_predicate", spec});

  spec = BaseSpec(12);
  spec.num_attributes = 8;
  spec.min_predicates = 6;
  spec.max_predicates = 8;
  spec.min_event_attrs = 6;
  spec.max_event_attrs = 8;  // dense: most attrs in both
  cases.push_back({"dense_overlap", spec});

  spec = BaseSpec(13);
  spec.event_locality = 0.9;  // bursty stream (exercises phase sharing)
  cases.push_back({"bursty_stream", spec});

  spec = BaseSpec(14);
  spec.predicate_width = 0.9;  // very wide predicates, many matches
  cases.push_back({"wide_predicates", spec});

  return cases;
}

class AgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AgreementTest, AllMatchersAgree) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();

  MatcherConfig config;
  config.domain = {test_case.spec.domain_min, test_case.spec.domain_max};
  config.pcm.clustering.cluster_size = 64;
  config.pcm.num_threads = 2;

  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  for (MatcherKind kind :
       {MatcherKind::kCounting, MatcherKind::kKIndex, MatcherKind::kBETree,
        MatcherKind::kPcm, MatcherKind::kPcmLazy, MatcherKind::kAPcm}) {
    std::unique_ptr<Matcher> matcher = CreateMatcher(kind, config);
    const auto actual = RunMatcher(*matcher, workload);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << matcher->Name() << " disagrees with scan on event " << i
          << " of case '" << test_case.name
          << "': " << workload.events[i].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AgreementTest, ::testing::Range<size_t>(0, MakeCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return MakeCases()[info.param].name;
    });

// The engine facade (batched processing + OSR reordering + top-k delivery)
// must agree with the plain single-event matchers on the same randomized
// workloads. Subscriptions are added in workload order, so engine-assigned
// subscription ids and event ids coincide with workload indices.
class EngineAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EngineAgreementTest, EngineFacadeAgreesWithPlainMatchers) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();

  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  for (MatcherKind kind :
       {MatcherKind::kCounting, MatcherKind::kBETree, MatcherKind::kAPcm}) {
    engine::EngineOptions options;
    options.kind = kind;
    options.matcher.domain = {test_case.spec.domain_min,
                              test_case.spec.domain_max};
    options.matcher.pcm.clustering.cluster_size = 64;
    options.batch_size = 16;
    options.osr.window_size = 32;
    options.buffer_capacity = 48;

    std::map<uint64_t, std::vector<SubscriptionId>> by_event;
    engine::StreamEngine engine(
        options, [&](uint64_t event_id,
                     const std::vector<SubscriptionId>& matches) {
          by_event[event_id] = matches;
        });
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    for (const Event& event : workload.events) engine.Publish(event);
    engine.Flush();

    ASSERT_EQ(by_event.size(), workload.events.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(by_event.at(i), expected[i])
          << MatcherKindName(kind) << " engine disagrees with scan on event "
          << i << " of case '" << test_case.name << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineAgreementTest,
    ::testing::Range<size_t>(0, MakeCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return MakeCases()[info.param].name;
    });

// Top-k truncation through the engine must equal truncating the scan ground
// truth by (priority desc, id asc) — on a workload with real priorities.
TEST(EngineAgreementTest, TopKDeliveryEqualsTruncatedGroundTruth) {
  const auto workload = workload::Generate(BaseSpec(77)).value();
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  options.matcher.pcm.clustering.cluster_size = 64;
  options.batch_size = 16;
  options.osr.window_size = 32;
  options.buffer_capacity = 48;
  options.top_k = 3;

  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  engine::StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        by_event[event_id] = matches;
      });
  std::vector<double> priorities(workload.subscriptions.size(), 0.0);
  for (size_t s = 0; s < workload.subscriptions.size(); ++s) {
    ASSERT_TRUE(
        engine.AddSubscription(workload.subscriptions[s].predicates()).ok());
    priorities[s] = static_cast<double>((s * 7) % 11);
    ASSERT_TRUE(engine.SetPriority(s, priorities[s]).ok());
  }
  for (const Event& event : workload.events) engine.Publish(event);
  engine.Flush();

  for (size_t i = 0; i < expected.size(); ++i) {
    std::vector<SubscriptionId> want = expected[i];
    std::stable_sort(want.begin(), want.end(),
                     [&](SubscriptionId a, SubscriptionId b) {
                       if (priorities[a] != priorities[b]) {
                         return priorities[a] > priorities[b];
                       }
                       return a < b;
                     });
    if (want.size() > 3) want.resize(3);
    std::sort(want.begin(), want.end());
    std::vector<SubscriptionId> got = by_event.at(i);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, want) << "event " << i;
  }
}

// Sharded differential oracle: for every workload spec and every shard
// count, ShardedMatcher must produce byte-identical sorted match sets to the
// SCAN ground truth, through the single-event API and the batch API, with
// incremental (a-pcm) and non-incremental (counting) inner matchers.
constexpr uint32_t kShardCounts[] = {1, 2, 7, 16};

class ShardedAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedAgreementTest, ShardedAgreesWithScanForAllShardCounts) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();

  MatcherConfig config;
  config.domain = {test_case.spec.domain_min, test_case.spec.domain_max};
  config.pcm.clustering.cluster_size = 64;

  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  for (uint32_t num_shards : kShardCounts) {
    for (MatcherKind kind : {MatcherKind::kAPcm, MatcherKind::kCounting}) {
      index::ShardedOptions sharded;
      sharded.num_shards = num_shards;
      sharded.num_threads = 2;  // exercise the fan-out pool
      auto matcher = engine::CreateShardedMatcher(kind, config, sharded);
      const auto actual = RunMatcher(*matcher, workload);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i], expected[i])
            << matcher->Name() << " disagrees with scan on event " << i
            << " of case '" << test_case.name
            << "': " << workload.events[i].ToString();
      }
    }
  }
}

TEST_P(ShardedAgreementTest, ShardedBatchEqualsSingle) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();
  MatcherConfig config;
  config.domain = {test_case.spec.domain_min, test_case.spec.domain_max};
  config.pcm.clustering.cluster_size = 64;
  for (uint32_t num_shards : kShardCounts) {
    index::ShardedOptions sharded;
    sharded.num_shards = num_shards;
    sharded.num_threads = 2;
    auto batch_matcher =
        engine::CreateShardedMatcher(MatcherKind::kAPcm, config, sharded);
    batch_matcher->Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> batch_results;
    batch_matcher->MatchBatch(workload.events, &batch_results);

    auto single_matcher =
        engine::CreateShardedMatcher(MatcherKind::kAPcm, config, sharded);
    const auto single_results = RunMatcher(*single_matcher, workload);
    EXPECT_EQ(batch_results, single_results)
        << num_shards << " shards, case " << test_case.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ShardedAgreementTest,
    ::testing::Range<size_t>(0, MakeCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return MakeCases()[info.param].name;
    });

// The acceptance-criterion bulk run: >= 10k generated events through every
// shard count, each batch result compared byte-for-byte against SCAN.
TEST(ShardedAgreementTest, TenThousandEventDifferentialRun) {
  auto spec = BaseSpec(99);
  spec.num_subscriptions = 400;
  spec.num_events = 10'000;
  const auto workload = workload::Generate(spec).value();

  MatcherConfig config;
  config.domain = {spec.domain_min, spec.domain_max};
  config.pcm.clustering.cluster_size = 64;

  index::ScanMatcher scan;
  scan.Build(workload.subscriptions);
  std::vector<std::vector<SubscriptionId>> expected;
  scan.MatchBatch(workload.events, &expected);

  for (uint32_t num_shards : kShardCounts) {
    index::ShardedOptions sharded;
    sharded.num_shards = num_shards;
    sharded.num_threads = 2;
    auto matcher =
        engine::CreateShardedMatcher(MatcherKind::kAPcm, config, sharded);
    matcher->Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> actual;
    matcher->MatchBatch(workload.events, &actual);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << matcher->Name() << " disagrees with scan on event " << i;
    }
  }
}

// The engine facade with a sharded backend must agree with scan on every
// workload spec — batching, OSR, and the per-shard merge all composed.
class ShardedEngineAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedEngineAgreementTest, ShardedEngineAgreesWithScan) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();

  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  struct Variant {
    MatcherKind kind;
    uint32_t num_shards;
  };
  for (const Variant v : {Variant{MatcherKind::kAPcm, 4},
                          Variant{MatcherKind::kCounting, 3}}) {
    engine::EngineOptions options;
    options.kind = v.kind;
    options.num_shards = v.num_shards;
    options.shard_threads = 2;
    options.matcher.domain = {test_case.spec.domain_min,
                              test_case.spec.domain_max};
    options.matcher.pcm.clustering.cluster_size = 64;
    options.batch_size = 16;
    options.osr.window_size = 32;
    options.buffer_capacity = 48;

    std::map<uint64_t, std::vector<SubscriptionId>> by_event;
    engine::StreamEngine engine(
        options, [&](uint64_t event_id,
                     const std::vector<SubscriptionId>& matches) {
          by_event[event_id] = matches;
        });
    for (const auto& sub : workload.subscriptions) {
      ASSERT_TRUE(engine.AddSubscription(sub.predicates()).ok());
    }
    for (const Event& event : workload.events) engine.Publish(event);
    engine.Flush();

    ASSERT_EQ(by_event.size(), workload.events.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(by_event.at(i), expected[i])
          << MatcherKindName(v.kind) << " engine with " << v.num_shards
          << " shards disagrees with scan on event " << i << " of case '"
          << test_case.name << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ShardedEngineAgreementTest,
    ::testing::Range<size_t>(0, MakeCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return MakeCases()[info.param].name;
    });

// Top-k truncation must be shard-oblivious: the per-shard merge feeds the
// same full match set into the top-k stage as the unsharded matcher would.
TEST(ShardedEngineAgreementTest, TopKDeliveryWithShardsEqualsGroundTruth) {
  const auto workload = workload::Generate(BaseSpec(78)).value();
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);

  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  options.num_shards = 5;
  options.shard_threads = 2;
  options.matcher.pcm.clustering.cluster_size = 64;
  options.batch_size = 16;
  options.osr.window_size = 32;
  options.buffer_capacity = 48;
  options.top_k = 3;

  std::map<uint64_t, std::vector<SubscriptionId>> by_event;
  engine::StreamEngine engine(
      options,
      [&](uint64_t event_id, const std::vector<SubscriptionId>& matches) {
        by_event[event_id] = matches;
      });
  std::vector<double> priorities(workload.subscriptions.size(), 0.0);
  for (size_t s = 0; s < workload.subscriptions.size(); ++s) {
    ASSERT_TRUE(
        engine.AddSubscription(workload.subscriptions[s].predicates()).ok());
    priorities[s] = static_cast<double>((s * 5) % 13);
    ASSERT_TRUE(engine.SetPriority(s, priorities[s]).ok());
  }
  for (const Event& event : workload.events) engine.Publish(event);
  engine.Flush();

  for (size_t i = 0; i < expected.size(); ++i) {
    std::vector<SubscriptionId> want = expected[i];
    std::stable_sort(want.begin(), want.end(),
                     [&](SubscriptionId a, SubscriptionId b) {
                       if (priorities[a] != priorities[b]) {
                         return priorities[a] > priorities[b];
                       }
                       return a < b;
                     });
    if (want.size() > 3) want.resize(3);
    std::sort(want.begin(), want.end());
    ASSERT_EQ(by_event.at(i), want) << "event " << i;
  }
}

// SIMD-forced agreement: the same workload through A-PCM, the sharded
// backend, and SCAN under every supported kernel level must produce
// byte-identical match sets — and identical FNV-1a digests, the same
// fingerprint the golden replay uses, so a cross-level divergence is
// directly comparable against the pinned goldens.
uint64_t DigestRows(const std::vector<std::vector<SubscriptionId>>& rows) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& row : rows) {
    mix(row.size());
    for (SubscriptionId id : row) mix(id);
  }
  return h;
}

class SimdAgreementTest : public ::testing::TestWithParam<size_t> {
 protected:
  void TearDown() override {
    ASSERT_TRUE(
        bitmap::SetActiveSimdLevel(bitmap::BestSupportedSimdLevel()).ok());
  }
};

TEST_P(SimdAgreementTest, MatchDigestsIdenticalUnderEveryKernelLevel) {
  const AgreementCase test_case = MakeCases()[GetParam()];
  SCOPED_TRACE(test_case.name);
  const auto workload = workload::Generate(test_case.spec).value();

  MatcherConfig config;
  config.domain = {test_case.spec.domain_min, test_case.spec.domain_max};
  config.pcm.clustering.cluster_size = 64;

  // Ground truth under the scalar reference kernels.
  ASSERT_TRUE(bitmap::SetActiveSimdLevel(bitmap::SimdLevel::kScalar).ok());
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);
  const uint64_t expected_digest = DigestRows(expected);

  for (const bitmap::SimdLevel level : bitmap::SupportedSimdLevels()) {
    ASSERT_TRUE(bitmap::SetActiveSimdLevel(level).ok());
    for (MatcherKind kind :
         {MatcherKind::kPcm, MatcherKind::kPcmLazy, MatcherKind::kAPcm}) {
      auto matcher = CreateMatcher(kind, config);
      const auto actual = RunMatcher(*matcher, workload);
      ASSERT_EQ(DigestRows(actual), expected_digest)
          << matcher->Name() << " digest diverges under "
          << bitmap::SimdLevelName(level) << " kernels on case '"
          << test_case.name << "'";
      ASSERT_EQ(actual, expected);
    }
    index::ShardedOptions sharded;
    sharded.num_shards = 4;
    sharded.num_threads = 2;
    auto matcher =
        engine::CreateShardedMatcher(MatcherKind::kAPcm, config, sharded);
    const auto actual = RunMatcher(*matcher, workload);
    ASSERT_EQ(DigestRows(actual), expected_digest)
        << "sharded a-pcm digest diverges under "
        << bitmap::SimdLevelName(level) << " kernels on case '"
        << test_case.name << "'";
    // SCAN itself also runs through Bitmap word ops; include it.
    index::ScanMatcher rescan;
    ASSERT_EQ(DigestRows(RunMatcher(rescan, workload)), expected_digest)
        << "scan digest diverges under " << bitmap::SimdLevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimdAgreementTest,
    ::testing::Range<size_t>(0, MakeCases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return MakeCases()[info.param].name;
    });

// Batch-API agreement for the PCM family, which overrides MatchBatch.
TEST(AgreementBatchTest, BatchEqualsSingleForAllPcmKinds) {
  const auto workload = workload::Generate(BaseSpec(42)).value();
  MatcherConfig config;
  config.pcm.clustering.cluster_size = 32;
  for (MatcherKind kind :
       {MatcherKind::kPcm, MatcherKind::kPcmLazy, MatcherKind::kAPcm}) {
    auto batch_matcher = CreateMatcher(kind, config);
    batch_matcher->Build(workload.subscriptions);
    std::vector<std::vector<SubscriptionId>> batch_results;
    batch_matcher->MatchBatch(workload.events, &batch_results);

    auto single_matcher = CreateMatcher(kind, config);
    const auto single_results = RunMatcher(*single_matcher, workload);
    EXPECT_EQ(batch_results, single_results) << MatcherKindName(kind);
  }
}

}  // namespace
}  // namespace apcm
