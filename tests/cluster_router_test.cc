// Cluster-tier suite: the router in front of N backend EventServers must be
// observationally identical to one engine fed the same request stream. The
// differential oracle runs the same subscriptions and events through a
// single server and through clusters of size 1/2/3/5 — including across
// live AddBackend/RemoveBackend — and asserts the delivered match digests
// agree exactly. Failpoint scenarios (ctest -L chaos) sever backend
// connections mid-stream and require the resync replay to keep the digest
// unchanged.

#include "src/cluster/router.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/rng.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace apcm::cluster {
namespace {

net::EventServerOptions SmallBackendOptions() {
  net::EventServerOptions options;
  options.engine.batch_size = 16;
  options.engine.osr.window_size = 0;
  options.engine.buffer_capacity = 16;
  options.engine.matcher.pcm.clustering.cluster_size = 32;
  // Every backend (and the single-engine oracle) must share one attribute
  // schema: each backend parses only its own partitions' subscription text,
  // so without a declared schema the on-demand name→id registration order
  // would diverge across backends while events carry raw attribute ids.
  for (int a = 0; a < 8; ++a) {
    options.attributes.push_back("a" + std::to_string(a));
  }
  return options;
}

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

/// Backends plus a router over them, torn down in dependency order.
class ClusterHarness {
 public:
  /// Starts one more backend EventServer and returns its port.
  int SpawnBackend() {
    auto server = std::make_unique<net::EventServer>(SmallBackendOptions());
    EXPECT_TRUE(server->Start().ok());
    const int port = server->port();
    servers_.push_back(std::move(server));
    return port;
  }

  /// Starts `n` backends and the router over them.
  Status StartCluster(int n, ClusterOptions options = ClusterOptions()) {
    for (int i = 0; i < n; ++i) {
      options.backends.push_back({"127.0.0.1", SpawnBackend()});
    }
    router_ = std::make_unique<ClusterRouter>(std::move(options));
    return router_->Start();
  }

  ~ClusterHarness() {
    if (router_) router_->Stop();
    for (auto& server : servers_) server->Stop();
  }

  ClusterRouter& router() { return *router_; }
  net::EventServer& server(size_t i) { return *servers_[i]; }
  size_t num_servers() const { return servers_.size(); }

 private:
  std::vector<std::unique_ptr<net::EventServer>> servers_;
  std::unique_ptr<ClusterRouter> router_;
};

/// Delivered match stream digest: publish index -> sorted client sub ids.
using Digest = std::map<size_t, std::vector<uint64_t>>;

/// Runs one scenario against any frame-protocol endpoint (single server or
/// router — the whole point is that both speak the same protocol): register
/// `expressions` under client sub ids 0..n-1, publish `batches` in order,
/// and collect the delivered matches into `digest`. `between(b)` runs
/// before batch `b` with the stream fully drained — the hook for topology
/// changes. Completion is watermark-driven (FOLLOW/PROGRESS), never
/// sleep-driven.
void RunScenario(int port, const std::vector<std::string>& expressions,
                 const std::vector<std::vector<Event>>& batches,
                 Digest* digest,
                 const std::function<void(size_t)>& between = {}) {
  net::Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(subscriber.Follow().ok());
  for (size_t i = 0; i < expressions.size(); ++i) {
    ASSERT_TRUE(subscriber.Subscribe(i, expressions[i]).ok())
        << expressions[i];
  }
  net::Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", port).ok());

  std::map<uint64_t, size_t> index_of;  // endpoint event id -> publish index
  size_t published = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  uint64_t watermark_goal = 0;  // events that must be fully delivered
  uint64_t watermarked = 0;     // events the watermark has covered so far
  auto drain_to_watermark = [&] {
    // Endpoint event ids are dense from 0 on both sides, so "the watermark
    // covers k events" is `last PROGRESS id + 1 >= k`.
    while (watermarked < watermark_goal) {
      auto progress = subscriber.PollProgress(/*timeout_ms=*/100);
      ASSERT_TRUE(progress.ok()) << progress.status().ToString();
      if (progress->has_value()) {
        watermarked = std::max(watermarked, **progress + 1);
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "stream never drained to watermark " << watermark_goal;
    }
  };

  for (size_t b = 0; b < batches.size(); ++b) {
    if (between) {
      drain_to_watermark();
      between(b);
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (const Event& event : batches[b]) {
      auto id = publisher.Publish(event);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      index_of[*id] = published++;
    }
    watermark_goal = published;
    drain_to_watermark();
  }

  // Every owed MATCH was enqueued before the watermark's PROGRESS frame on
  // this connection: drain what is buffered locally.
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/0);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (!match->has_value()) break;
    auto indexed = index_of.find((*match)->event_id);
    ASSERT_TRUE(indexed != index_of.end())
        << "MATCH for unknown event id " << (*match)->event_id;
    std::vector<uint64_t>& row = (*digest)[indexed->second];
    row.insert(row.end(), (*match)->sub_ids.begin(), (*match)->sub_ids.end());
  }
  for (auto& [index, subs] : *digest) {
    std::sort(subs.begin(), subs.end());
    ASSERT_TRUE(std::adjacent_find(subs.begin(), subs.end()) == subs.end())
        << "duplicate match delivered for event " << index;
  }
}

/// Random subscription expressions and events in the shared a0..a7 space
/// (the net_server_test oracle's generator, seeded per scenario).
void MakeWorkload(uint64_t seed, int num_subs, int num_events,
                  std::vector<std::string>* expressions,
                  std::vector<Event>* events) {
  Rng rng(seed);
  auto make_conjunction = [&rng]() {
    static const char* kOps[] = {">=", "<=", ">", "<", "=", "!="};
    std::string text;
    std::set<uint64_t> used;
    const int preds = 1 + static_cast<int>(rng.Uniform(3));
    for (int p = 0; p < preds; ++p) {
      uint64_t attr = rng.Uniform(8);
      if (!used.insert(attr).second) continue;
      if (!text.empty()) text += " and ";
      text += "a" + std::to_string(attr) + " " + kOps[rng.Uniform(6)] + " " +
              std::to_string(rng.Uniform(100));
    }
    return text;
  };
  for (int i = 0; i < num_subs; ++i) {
    std::string text = make_conjunction();
    if (rng.Bernoulli(0.3)) text += " or " + make_conjunction();
    expressions->push_back(std::move(text));
  }
  for (int i = 0; i < num_events; ++i) {
    std::vector<Event::Entry> entries;
    uint64_t attr = rng.Uniform(3);
    while (attr < 8) {
      entries.push_back({static_cast<AttributeId>(attr),
                         static_cast<int64_t>(rng.Uniform(100))});
      attr += 1 + rng.Uniform(4);
    }
    events->push_back(Event::FromSorted(std::move(entries)));
  }
}

TEST(ClusterRouterTest, RoundTripAcrossThreeBackends) {
  ClusterHarness cluster;
  ASSERT_TRUE(cluster.StartCluster(3).ok());
  ASSERT_GT(cluster.router().port(), 0);

  net::Client subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", cluster.router().port()).ok());
  ASSERT_TRUE(subscriber.Ping().ok());
  ASSERT_TRUE(subscriber.Follow().ok());
  ASSERT_TRUE(subscriber.Subscribe(7, "a0 >= 10 and a1 < 50").ok());
  ASSERT_TRUE(subscriber.Subscribe(8, "a0 >= 100 or a1 = 3").ok());
  Status duplicate = subscriber.Subscribe(7, "a0 >= 0");
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  net::Client publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", cluster.router().port()).ok());
  // Global event ids are dense from 0 in publish order — the single-engine
  // numbering, assigned by the router.
  auto id0 = publisher.Publish(Event::Create({{0, 20}, {1, 30}}).value());
  ASSERT_TRUE(id0.ok()) << id0.status().ToString();
  EXPECT_EQ(*id0, 0u);
  auto id1 = publisher.Publish(Event::Create({{0, 20}, {1, 3}}).value());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 1u);
  auto id2 = publisher.Publish(Event::Create({{0, 5}, {1, 60}}).value());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, 2u);

  // The frontier covers all three once every backend notified them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    auto progress = subscriber.PollProgress(/*timeout_ms=*/100);
    ASSERT_TRUE(progress.ok());
    if (progress->has_value() && **progress >= *id2) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  std::map<uint64_t, std::vector<uint64_t>> received;
  for (;;) {
    auto match = subscriber.PollMatch(/*timeout_ms=*/0);
    ASSERT_TRUE(match.ok());
    if (!match->has_value()) break;
    received[(*match)->event_id] = (*match)->sub_ids;
  }
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received.at(*id0), (std::vector<uint64_t>{7}));
  EXPECT_EQ(received.at(*id1), (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ(received.count(*id2), 0u);

  // Unsubscribe stops future matches; unknown ids are per-request errors.
  ASSERT_TRUE(subscriber.Unsubscribe(7).ok());
  ASSERT_TRUE(subscriber.Unsubscribe(8).ok());
  EXPECT_EQ(subscriber.Unsubscribe(99).code(), StatusCode::kNotFound);
  auto id3 = publisher.Publish(Event::Create({{0, 20}, {1, 3}}).value());
  ASSERT_TRUE(id3.ok());
  for (;;) {
    auto progress = subscriber.PollProgress(/*timeout_ms=*/100);
    ASSERT_TRUE(progress.ok());
    if (progress->has_value() && **progress >= *id3) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
  }
  auto late = subscriber.PollMatch(/*timeout_ms=*/0);
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late->has_value());

  const ClusterStatus status = cluster.router().Snapshot();
  ASSERT_EQ(status.backends.size(), 3u);
  uint64_t partitions = 0;
  for (const auto& backend : status.backends) {
    EXPECT_TRUE(backend.in_topology);
    EXPECT_TRUE(backend.connected);
    partitions += backend.partitions;
  }
  EXPECT_EQ(partitions, 64u);  // every partition owned exactly once
  EXPECT_EQ(status.next_global_event, 4u);
  EXPECT_EQ(status.released_count, 4u);
  EXPECT_EQ(status.subscriptions, 0u);
  EXPECT_EQ(status.unacked_publishes, 0u);

  const MetricsRegistry& registry = cluster.router().metrics_registry();
  EXPECT_EQ(CounterValue(registry, "apcm_cluster_publishes_total"), 4u);
  EXPECT_EQ(CounterValue(registry, "apcm_cluster_fanout_frames_total"), 12u);
  EXPECT_EQ(CounterValue(registry, "apcm_cluster_publish_acks_total"), 4u);
  EXPECT_GE(CounterValue(registry, "apcm_cluster_matches_merged_total"), 3u);
}

// The tentpole acceptance: cluster-of-N delivers the exact match stream of
// a single engine, for N in {1, 2, 3, 5}.
TEST(ClusterRouterTest, DifferentialOracleAcrossClusterSizes) {
  std::vector<std::string> expressions;
  std::vector<Event> events;
  MakeWorkload(/*seed=*/42, /*num_subs=*/40, /*num_events=*/200,
               &expressions, &events);
  const std::vector<std::vector<Event>> batches = {events};

  Digest oracle;
  {
    net::EventServer single(SmallBackendOptions());
    ASSERT_TRUE(single.Start().ok());
    RunScenario(single.port(), expressions, batches, &oracle);
    single.Stop();
  }
  ASSERT_FALSE(oracle.empty());  // the workload does produce matches

  for (int n : {1, 2, 3, 5}) {
    SCOPED_TRACE("cluster of " + std::to_string(n));
    ClusterHarness cluster;
    ASSERT_TRUE(cluster.StartCluster(n).ok());
    Digest got;
    RunScenario(cluster.router().port(), expressions, batches, &got);
    EXPECT_EQ(got, oracle);
  }
}

// Live topology changes: grow 2 -> 3, then shrink away the original slot 0,
// with traffic before, between, and after. The digest must still equal the
// single-engine run — re-partitioning moves subscriptions, never matches.
TEST(ClusterRouterTest, LiveAddAndRemoveKeepTheStreamExact) {
  std::vector<std::string> expressions;
  std::vector<Event> events;
  MakeWorkload(/*seed=*/7, /*num_subs=*/30, /*num_events=*/180,
               &expressions, &events);
  std::vector<std::vector<Event>> batches(3);
  for (size_t i = 0; i < events.size(); ++i) {
    batches[i % 3].push_back(events[i]);
  }

  Digest oracle;
  {
    net::EventServer single(SmallBackendOptions());
    ASSERT_TRUE(single.Start().ok());
    RunScenario(single.port(), expressions, batches, &oracle);
    single.Stop();
  }
  ASSERT_FALSE(oracle.empty());

  ClusterHarness cluster;
  ASSERT_TRUE(cluster.StartCluster(2).ok());
  Digest got;
  RunScenario(
      cluster.router().port(), expressions, batches, &got,
      [&](size_t batch) {
        if (batch == 1) {
          // Grow mid-stream: the joining backend takes over ~1/3 of the
          // partitions (and their subscriptions).
          const int port = cluster.SpawnBackend();
          ASSERT_TRUE(cluster.router().AddBackend({"127.0.0.1", port}).ok());
        } else if (batch == 2) {
          // Shrink mid-stream: slot 0's partitions deal to the survivors.
          ASSERT_TRUE(cluster.router().RemoveBackend(0).ok());
        }
      });
  EXPECT_EQ(got, oracle);

  const ClusterStatus status = cluster.router().Snapshot();
  ASSERT_EQ(status.backends.size(), 3u);
  EXPECT_FALSE(status.backends[0].in_topology);
  EXPECT_TRUE(status.backends[1].in_topology);
  EXPECT_TRUE(status.backends[2].in_topology);
  EXPECT_EQ(status.repartitions, 2u);
  EXPECT_GT(status.change_seq, 0u);
  uint64_t partitions = 0;
  for (const auto& backend : status.backends) partitions += backend.partitions;
  EXPECT_EQ(partitions, 64u);
  const MetricsRegistry& registry = cluster.router().metrics_registry();
  EXPECT_EQ(CounterValue(registry, "apcm_cluster_repartitions_total"), 2u);
}

// Chaos: sever backend connections mid-stream (cluster.backend.recv) and
// let the resync replay regenerate the tail — the digest must not change.
// Resync duplicates must dedupe in the merge buffer, never double-deliver.
TEST(ClusterRouterTest, BackendLossResyncsWithoutDivergence) {
  if (!failpoint::kEnabled) {
    GTEST_SKIP() << "failpoints compiled out; build with -DAPCM_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  std::vector<std::string> expressions;
  std::vector<Event> events;
  MakeWorkload(/*seed=*/1234, /*num_subs=*/25, /*num_events=*/120,
               &expressions, &events);
  std::vector<std::vector<Event>> batches(2);
  for (size_t i = 0; i < events.size(); ++i) {
    batches[i / (events.size() / 2 + 1)].push_back(events[i]);
  }

  Digest oracle;
  {
    net::EventServer single(SmallBackendOptions());
    ASSERT_TRUE(single.Start().ok());
    RunScenario(single.port(), expressions, batches, &oracle);
    single.Stop();
  }
  ASSERT_FALSE(oracle.empty());

  ClusterHarness cluster;
  ASSERT_TRUE(cluster.StartCluster(3).ok());
  Digest got;
  RunScenario(cluster.router().port(), expressions, batches, &got,
              [&](size_t batch) {
                if (batch == 1) {
                  // The next two backend reads doom their connections; the
                  // router reconnects, re-registers, and replays.
                  ASSERT_TRUE(failpoint::Configure("cluster.backend.recv",
                                                   "2*return")
                                  .ok());
                }
              });
  failpoint::DisarmAll();
  EXPECT_EQ(got, oracle);
  EXPECT_GE(failpoint::Hits("cluster.backend.recv"), 2u);

  const MetricsRegistry& registry = cluster.router().metrics_registry();
  EXPECT_GE(CounterValue(registry, "apcm_cluster_backend_reconnects_total"),
            2u);
  uint64_t reconnects = 0;
  for (const auto& backend : cluster.router().Snapshot().backends) {
    reconnects += backend.reconnects;
  }
  EXPECT_GE(reconnects, 2u);
}

/// Connects a raw TCP socket and performs one HTTP/1.0 GET.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ClusterRouterTest, AdminEndpointServesClusterState) {
  ClusterOptions options;
  options.admin_port = -1;  // kernel-assigned, for tests
  ClusterHarness cluster;
  ASSERT_TRUE(cluster.StartCluster(2, std::move(options)).ok());
  const int admin_port = cluster.router().admin_port();
  ASSERT_GT(admin_port, 0);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", cluster.router().port()).ok());
  ASSERT_TRUE(client.Subscribe(1, "a0 >= 0").ok());
  ASSERT_TRUE(client.Publish(Event::Create({{0, 1}}).value()).ok());

  const std::string health = HttpGet(admin_port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string topology = HttpGet(admin_port, "/cluster");
  EXPECT_NE(topology.find("200 OK"), std::string::npos);
  EXPECT_NE(topology.find("application/json"), std::string::npos);
  EXPECT_NE(topology.find("\"backends\":["), std::string::npos);
  EXPECT_NE(topology.find("\"connected\":true"), std::string::npos);
  EXPECT_NE(topology.find("\"subscriptions\":1"), std::string::npos);

  const std::string metrics = HttpGet(admin_port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("apcm_cluster_backends 2"), std::string::npos);
  EXPECT_NE(metrics.find("apcm_cluster_publishes_total"), std::string::npos);

  const std::string json = HttpGet(admin_port, "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("apcm_cluster_subscriptions"), std::string::npos);
}

TEST(ClusterRouterTest, TopologyGuardRails) {
  // An unreachable backend fails Start (bounded by the retry policy).
  {
    int dead_port;
    {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      socklen_t len = sizeof(addr);
      ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                0);
      ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
                0);
      dead_port = ntohs(addr.sin_port);
      ::close(fd);  // nothing listens here now
    }
    ClusterOptions options;
    options.backends.push_back({"127.0.0.1", dead_port});
    options.backend_retry.max_attempts = 2;
    options.backend_retry.initial_backoff_ms = 1;
    ClusterRouter router(options);
    Status started = router.Start();
    EXPECT_FALSE(started.ok());
  }

  // Config validation before any connect.
  {
    ClusterRouter router(ClusterOptions{});
    EXPECT_EQ(router.Start().code(), StatusCode::kInvalidArgument);
  }
  {
    ClusterOptions options;
    options.backends.resize(65);
    ClusterRouter router(std::move(options));
    EXPECT_EQ(router.Start().code(), StatusCode::kInvalidArgument);
  }

  ClusterHarness cluster;
  ASSERT_TRUE(cluster.StartCluster(2).ok());
  // Removing an unknown or already-removed slot and removing the last
  // backend are rejected without touching the topology.
  EXPECT_EQ(cluster.router().RemoveBackend(9).code(), StatusCode::kNotFound);
  ASSERT_TRUE(cluster.router().RemoveBackend(1).ok());
  EXPECT_EQ(cluster.router().RemoveBackend(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster.router().RemoveBackend(0).code(),
            StatusCode::kFailedPrecondition);

  cluster.router().Stop();
  cluster.router().Stop();  // idempotent
  EXPECT_EQ(cluster.router().AddBackend({"127.0.0.1", 1}).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace apcm::cluster
