// Durable-subscription recovery matrix (ctest label: recovery). The core
// property: after ANY crash, the recovered engine's observable behavior —
// match sets over a probe stream, live-subscription count, priorities via
// top-k delivery — is byte-identical to an in-memory oracle that applied
// exactly the acknowledged mutations. Crashes are simulated by the
// `store.*` failpoint seams (process kill vs. power loss; see
// src/store/durable_store.h), so the kill-matrix suites need a build with
// -DAPCM_FAILPOINTS=ON and GTEST_SKIP otherwise; the clean-restart,
// checkpoint, and codec suites run everywhere.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/crc32c.h"
#include "src/base/failpoint.h"
#include "src/base/file_io.h"
#include "src/base/rng.h"
#include "src/engine/engine.h"
#include "src/store/checkpoint.h"
#include "src/store/durable_store.h"

namespace apcm {
namespace {

using engine::EngineOptions;
using engine::MatcherKind;
using engine::StreamEngine;

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return 0;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/apcm_recovery_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Deterministic mutation scripts. Every op appends exactly one WAL record
// (removals and priorities always target a live registration), so "arm the
// kill seam before op K" is the same cut point on every run.
// ---------------------------------------------------------------------------

struct ScriptOp {
  enum Kind { kAdd, kAddDnf, kRemove, kPriority };
  Kind kind;
  std::vector<std::vector<Predicate>> disjuncts;  // kAdd: one entry
  size_t target = 0;  // registration index, for kRemove / kPriority
  double priority = 0;
};

std::vector<Predicate> RandomConjunction(Rng& rng) {
  std::vector<Predicate> preds;
  uint64_t attr = rng.Uniform(2);
  const int n = 1 + static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < n && attr < 8; ++i) {
    const auto id = static_cast<AttributeId>(attr);
    const auto v = static_cast<Value>(rng.Uniform(100));
    switch (rng.Uniform(4)) {
      case 0:
        preds.emplace_back(id, Op::kGe, v);
        break;
      case 1:
        preds.emplace_back(id, Op::kLe, v);
        break;
      case 2:
        preds.emplace_back(id, v, v + static_cast<Value>(rng.Uniform(30)));
        break;
      default:
        preds.emplace_back(
            id, std::vector<Value>{v, v + 1,
                                   static_cast<Value>(rng.Uniform(100))});
        break;
    }
    attr += 1 + rng.Uniform(3);
  }
  return preds;
}

std::vector<ScriptOp> MakeScript(uint64_t seed, size_t nops) {
  Rng rng(seed);
  std::vector<ScriptOp> ops;
  std::vector<size_t> live;  // live registration indices
  size_t reg_count = 0;
  for (size_t i = 0; i < nops; ++i) {
    const uint64_t pick = rng.Uniform(10);
    ScriptOp op;
    if (live.size() < 2 || pick < 4) {
      op.kind = ScriptOp::kAdd;
      op.disjuncts.push_back(RandomConjunction(rng));
      live.push_back(reg_count++);
    } else if (pick < 6) {
      op.kind = ScriptOp::kAddDnf;
      const int nd = 2 + static_cast<int>(rng.Uniform(2));
      for (int d = 0; d < nd; ++d) {
        op.disjuncts.push_back(RandomConjunction(rng));
      }
      live.push_back(reg_count++);
    } else if (pick < 8) {
      op.kind = ScriptOp::kRemove;
      const size_t idx = rng.Uniform(live.size());
      op.target = live[idx];
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      op.kind = ScriptOp::kPriority;
      op.target = live[rng.Uniform(live.size())];
      op.priority = 1 + static_cast<double>(rng.Uniform(9));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<Event> MakeProbes(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Event::Entry> entries;
    uint64_t attr = rng.Uniform(2);
    while (attr < 8) {
      entries.push_back({static_cast<AttributeId>(attr),
                         static_cast<Value>(rng.Uniform(120))});
      attr += 1 + rng.Uniform(3);
    }
    events.push_back(Event::FromSorted(std::move(entries)));
  }
  return events;
}

struct ScriptState {
  std::vector<SubscriptionId> ids;  // per registration index
  std::vector<bool> acked;          // per op
  int first_failure = -1;
};

/// Applies `ops` in order (skipping indices where `mask` is false, when
/// given); just before op `arm_at`, arms `seam` with `1*return(arg)`.
/// Engine ids are recorded per registration index, so removals/priorities
/// resolve their targets identically on the durable run, the oracle, and
/// the recovered engine (WAL ids are contiguous in registration order).
/// `seed_ids` carries registration ids from an earlier partial application,
/// so a script may be split across calls (targets index the full script's
/// registration space).
ScriptState ApplyScript(StreamEngine& engine, const std::vector<ScriptOp>& ops,
                        const std::vector<bool>* mask = nullptr,
                        const char* seam = nullptr, uint64_t arg = 0,
                        int arm_at = -1,
                        std::vector<SubscriptionId> seed_ids = {}) {
  ScriptState st;
  st.ids = std::move(seed_ids);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (seam != nullptr && static_cast<int>(i) == arm_at) {
      const std::string spec = "1*return(" + std::to_string(arg) + ")";
      EXPECT_TRUE(failpoint::Configure(seam, spec).ok());
    }
    const ScriptOp& op = ops[i];
    const bool skip = mask != nullptr && !(*mask)[i];
    bool ok = false;
    switch (op.kind) {
      case ScriptOp::kAdd: {
        st.ids.push_back(kInvalidSubscriptionId);
        if (skip) break;
        auto added = engine.AddSubscription(op.disjuncts[0]);
        if (added.ok()) {
          st.ids.back() = *added;
          ok = true;
        }
        break;
      }
      case ScriptOp::kAddDnf: {
        st.ids.push_back(kInvalidSubscriptionId);
        if (skip) break;
        auto added = engine.AddDisjunctiveSubscription(op.disjuncts);
        if (added.ok()) {
          st.ids.back() = *added;
          ok = true;
        }
        break;
      }
      case ScriptOp::kRemove: {
        if (skip) break;
        const SubscriptionId id = st.ids[op.target];
        ok = id != kInvalidSubscriptionId &&
             engine.RemoveSubscription(id).ok();
        break;
      }
      case ScriptOp::kPriority: {
        if (skip) break;
        const SubscriptionId id = st.ids[op.target];
        ok = id != kInvalidSubscriptionId &&
             engine.SetPriority(id, op.priority).ok();
        break;
      }
    }
    st.acked.push_back(ok);
    if (!ok && !skip && st.first_failure < 0) {
      st.first_failure = static_cast<int>(i);
    }
  }
  return st;
}

/// FNV-1a over publish-index -> ascending match ids. Depends only on
/// logical content: both engines assign the same dense event ids (fresh
/// engines, identical probe order) and the same subscription ids
/// (registration order is the id order on both sides).
uint64_t HashRows(const std::map<uint64_t, std::vector<SubscriptionId>>& rows) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [key, subs] : rows) {
    mix(key);
    mix(subs.size());
    for (SubscriptionId s : subs) mix(s);
  }
  return h;
}

/// Engine plus match collector. Member order matters: the callback writes
/// rows/mu, so the engine (declared last) is destroyed first.
struct Harness {
  explicit Harness(EngineOptions options)
      : engine(std::move(options),
               [this](uint64_t event_id,
                      const std::vector<SubscriptionId>& matches) {
                 std::lock_guard<std::mutex> lock(mu);
                 if (!matches.empty()) rows[event_id] = matches;
               }) {}

  uint64_t Probe(const std::vector<Event>& probes) {
    for (const Event& event : probes) engine.Publish(event);
    engine.Flush();
    std::lock_guard<std::mutex> lock(mu);
    return HashRows(rows);
  }

  std::mutex mu;
  std::map<uint64_t, std::vector<SubscriptionId>> rows;
  StreamEngine engine;
};

EngineOptions BaseOptions() {
  EngineOptions options;
  options.batch_size = 16;
  options.buffer_capacity = 16;
  options.osr.window_size = 0;
  options.matcher.pcm.clustering.cluster_size = 32;
  options.top_k = 2;  // priorities shape deliveries -> the digest sees them
  options.trace_sample_every = 0;
  return options;
}

EngineOptions DurableOptions(const std::string& dir) {
  EngineOptions options = BaseOptions();
  options.data_dir = dir;
  options.wal_sync_every = 1;
  options.checkpoint_every_ops = 5;
  return options;
}

/// Digest + live count of the oracle: a fresh in-memory engine that applies
/// exactly the ops where `mask` is true.
std::pair<uint64_t, size_t> OracleDigest(const std::vector<ScriptOp>& script,
                                         const std::vector<bool>& mask,
                                         const std::vector<Event>& probes,
                                         EngineOptions options = BaseOptions()) {
  options.data_dir.clear();
  Harness oracle(options);
  const ScriptState st = ApplyScript(oracle.engine, script, &mask);
  for (size_t i = 0; i < mask.size(); ++i) {
    EXPECT_TRUE(!mask[i] || st.acked[i]) << "oracle rejected op " << i;
  }
  return {oracle.Probe(probes), oracle.engine.num_subscriptions()};
}

// ---------------------------------------------------------------------------
// Codec sanity (runs in every build).
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectorsAndMasking) {
  // RFC 3720 test vectors for CRC32C.
  EXPECT_EQ(Crc32c(0, "", 0), 0x00000000u);
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(0, zeros.data(), zeros.size()), 0x8A9136AAu);
  // Incremental == one-shot.
  const std::string data = "hello, durable subscriptions";
  uint32_t split = Crc32c(0, data.data(), 10);
  split = Crc32c(split, data.data() + 10, data.size() - 10);
  EXPECT_EQ(split, Crc32c(0, data.data(), data.size()));
  // Masking round-trips and moves the value (stored CRCs of CRCs stay sane).
  const uint32_t crc = Crc32c(0, data.data(), data.size());
  EXPECT_NE(MaskCrc32c(crc), crc);
  EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
}

TEST(WalCodecTest, AllRecordKindsRoundTrip) {
  std::vector<store::WalRecord> originals;
  {
    store::WalRecord add;
    add.seq = 1;
    add.kind = store::WalRecord::Kind::kAdd;
    add.id = 0;
    add.disjuncts.push_back(
        {Predicate(0, Op::kGe, 5), Predicate(3, -7, 12),
         Predicate(5, std::vector<Value>{1, 9, 4})});
    originals.push_back(add);
    store::WalRecord dnf;
    dnf.seq = 2;
    dnf.kind = store::WalRecord::Kind::kAddDnf;
    dnf.id = 1;
    dnf.disjuncts.push_back({Predicate(1, Op::kLt, 3)});
    dnf.disjuncts.push_back({Predicate(2, Op::kNe, -1)});
    originals.push_back(dnf);
    store::WalRecord prio;
    prio.seq = 3;
    prio.kind = store::WalRecord::Kind::kPriority;
    prio.id = 1;
    prio.priority = 2.5;
    originals.push_back(prio);
    store::WalRecord remove;
    remove.seq = 4;
    remove.kind = store::WalRecord::Kind::kRemove;
    remove.id = 0;
    originals.push_back(remove);
  }
  std::string buffer;
  for (const store::WalRecord& record : originals) {
    EncodeWalRecord(record, &buffer);
  }
  const store::WalDecodeResult decoded = store::DecodeWalBuffer(buffer);
  EXPECT_FALSE(decoded.torn);
  EXPECT_EQ(decoded.valid_bytes, buffer.size());
  ASSERT_EQ(decoded.records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    const store::WalRecord& a = originals[i];
    const store::WalRecord& b = decoded.records[i];
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.priority, b.priority);
    ASSERT_EQ(a.disjuncts.size(), b.disjuncts.size());
    for (size_t d = 0; d < a.disjuncts.size(); ++d) {
      EXPECT_EQ(a.disjuncts[d], b.disjuncts[d]) << "record " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Clean restart and checkpoint behavior (runs in every build).
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CleanRestartReplaysEveryAcknowledgedOp) {
  const auto script = MakeScript(0xA11CE, 24);
  const auto probes = MakeProbes(0xBEEF, 32);
  TempDir dir;
  {
    Harness durable(DurableOptions(dir.path()));
    const ScriptState st = ApplyScript(durable.engine, script);
    for (size_t i = 0; i < st.acked.size(); ++i) {
      EXPECT_TRUE(st.acked[i]) << "op " << i;
    }
    EXPECT_TRUE(durable.engine.durable());
  }
  Harness recovered(DurableOptions(dir.path()));
  const std::vector<bool> all(script.size(), true);
  const auto [oracle_digest, oracle_subs] =
      OracleDigest(script, all, probes);
  EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
  EXPECT_EQ(recovered.Probe(probes), oracle_digest);
  // New mutations keep working against the recovered id allocator.
  EXPECT_TRUE(
      recovered.engine.AddSubscription({Predicate(0, Op::kGe, 0)}).ok());
}

TEST(RecoveryTest, ExplicitCheckpointTruncatesLogAndBoundsReplay) {
  const auto script = MakeScript(0xC0FFEE, 20);
  const auto probes = MakeProbes(0xF00D, 32);
  const size_t cut = 12;  // ops [0, cut) before the checkpoint, rest after
  TempDir dir;
  EngineOptions options = DurableOptions(dir.path());
  options.checkpoint_every_ops = 0;  // explicit Checkpoint() only
  {
    // Checkpoint() without a data_dir has nothing to persist.
    Harness ephemeral(BaseOptions());
    EXPECT_EQ(ephemeral.engine.Checkpoint().code(),
              StatusCode::kFailedPrecondition);
  }
  {
    Harness durable(options);
    const std::vector<ScriptOp> before(script.begin(),
                                       script.begin() + cut);
    const std::vector<ScriptOp> after(script.begin() + cut, script.end());
    const auto head = ApplyScript(durable.engine, before);
    ASSERT_TRUE(durable.engine.Checkpoint().ok());
    // Wait: Checkpoint() is synchronous, so the log is already truncated:
    // exactly one checkpoint file, no segment based below it.
    const auto names = ListDir(dir.path()).value();
    size_t checkpoints = 0;
    for (const std::string& name : names) {
      if (name.ends_with(".ckpt")) ++checkpoints;
      EXPECT_FALSE(name == store::WalSegmentName(0))
          << "pre-checkpoint segment survived truncation";
    }
    EXPECT_EQ(checkpoints, 1u);
    const auto tail = ApplyScript(durable.engine, after, nullptr, nullptr,
                                  /*arg=*/0, /*arm_at=*/-1, head.ids);
    for (const bool acked : tail.acked) EXPECT_TRUE(acked);
  }
  {
    Harness recovered(options);
    // Replay was bounded to the WAL tail behind the checkpoint.
    EXPECT_EQ(CounterValue(recovered.engine.metrics_registry(),
                           "apcm_recovery_records_total"),
              script.size() - cut);
    const std::vector<bool> all(script.size(), true);
    const auto [oracle_digest, oracle_subs] =
        OracleDigest(script, all, probes);
    EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
    EXPECT_EQ(recovered.Probe(probes), oracle_digest);
  }
}

/// Satellite property: snapshot + WAL round-trip across matcher backends —
/// the checkpoint image embeds a PCM index only for unsharded PCM-family
/// configs, everything else recovers through pure state + replay, and both
/// paths must agree with the oracle.
TEST(RecoveryTest, RoundTripAcrossMatcherBackends) {
  const auto script = MakeScript(0x5EED, 22);
  const auto probes = MakeProbes(0x5EED2, 32);
  struct Backend {
    MatcherKind kind;
    uint32_t num_shards;
  };
  const Backend backends[] = {{MatcherKind::kAPcm, 1},
                              {MatcherKind::kPcm, 1},
                              {MatcherKind::kPcmLazy, 1},
                              {MatcherKind::kScan, 1},
                              {MatcherKind::kAPcm, 4}};
  for (const Backend& backend : backends) {
    SCOPED_TRACE(std::string(MatcherKindName(backend.kind)) + "/" +
                 std::to_string(backend.num_shards) + " shards");
    TempDir dir;
    EngineOptions options = DurableOptions(dir.path());
    options.kind = backend.kind;
    options.num_shards = backend.num_shards;
    // Explicit Checkpoint() only, so it cannot race a background one.
    options.checkpoint_every_ops = 0;
    {
      Harness durable(options);
      ApplyScript(durable.engine, script);
      ASSERT_TRUE(durable.engine.Checkpoint().ok());
    }
    Harness recovered(options);
    const std::vector<bool> all(script.size(), true);
    const auto [oracle_digest, oracle_subs] =
        OracleDigest(script, all, probes, options);
    EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
    EXPECT_EQ(recovered.Probe(probes), oracle_digest);
  }
}

/// Sharded engines embed one index image per shard in the checkpoint (index
/// form 2) and recovery rehydrates every shard from its image instead of
/// rebuilding: the restored engine answers probes with zero shard rebuilds.
TEST(RecoveryTest, ShardedCheckpointEmbedsAndRestoresPerShardImages) {
  const auto script = MakeScript(0x51AED, 26);
  const auto probes = MakeProbes(0x51AED2, 32);
  TempDir dir;
  EngineOptions options = DurableOptions(dir.path());
  options.kind = MatcherKind::kAPcm;
  options.num_shards = 4;
  options.checkpoint_every_ops = 0;  // explicit Checkpoint() only
  {
    Harness durable(options);
    ApplyScript(durable.engine, script);
    ASSERT_TRUE(durable.engine.Checkpoint().ok());
  }
  // The on-disk image carries the sharded index section: the inner kind
  // plus one non-empty image per shard (decoded through the public codec).
  std::string ckpt_path;
  const auto names = ListDir(dir.path()).value();
  for (const std::string& name : names) {
    if (name.ends_with(".ckpt")) ckpt_path = dir.path() + "/" + name;
  }
  ASSERT_FALSE(ckpt_path.empty());
  const auto bytes = ReadFileToString(ckpt_path);
  ASSERT_TRUE(bytes.ok());
  const auto decoded = store::DecodeCheckpoint(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->index_kind, MatcherKindName(MatcherKind::kAPcm));
  EXPECT_TRUE(decoded->index_image.empty());
  ASSERT_EQ(decoded->shard_images.size(), 4u);
  for (const std::string& image : decoded->shard_images) {
    EXPECT_FALSE(image.empty());
  }

  Harness recovered(options);
  const std::vector<bool> all(script.size(), true);
  const auto [oracle_digest, oracle_subs] =
      OracleDigest(script, all, probes, options);
  EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
  EXPECT_EQ(recovered.Probe(probes), oracle_digest);
  // The probes ran entirely on the rehydrated shards: nothing was rebuilt.
  EXPECT_EQ(CounterValue(recovered.engine.metrics_registry(),
                         "apcm_shard_rebuilds_total"),
            0u);
}

TEST(RecoveryTest, ForeignFilesInDataDirAreIgnored) {
  TempDir dir;
  ASSERT_TRUE(
      AtomicWriteFile(dir.path() + "/README.not-a-segment", "hello").ok());
  ASSERT_TRUE(AtomicWriteFile(dir.path() + "/wal-zz.log", "junk").ok());
  ASSERT_TRUE(AtomicWriteFile(dir.path() + "/stray.tmp", "junk").ok());
  Harness durable(DurableOptions(dir.path()));
  EXPECT_TRUE(durable.engine.AddSubscription({Predicate(0, Op::kGe, 1)}).ok());
  // Stray .tmp files are reclaimed, foreign names left alone.
  const auto names = ListDir(dir.path()).value();
  bool saw_readme = false;
  for (const std::string& name : names) {
    EXPECT_FALSE(name.ends_with(".tmp")) << name;
    saw_readme |= name == "README.not-a-segment";
  }
  EXPECT_TRUE(saw_readme);
}

// ---------------------------------------------------------------------------
// Store-level crash semantics (runs in every build: SimulateCrash needs no
// failpoints).
// ---------------------------------------------------------------------------

store::WalRecord SimpleRecord(SubscriptionId id) {
  store::WalRecord record;
  record.kind = store::WalRecord::Kind::kAdd;
  record.id = id;
  record.disjuncts.push_back({Predicate(0, Op::kGe, static_cast<Value>(id))});
  return record;
}

TEST(DurableStoreTest, PowerLossRollsBackToTheSyncedPrefix) {
  TempDir dir;
  store::StoreOptions options;
  options.dir = dir.path();
  options.sync_every = 0;  // no append-path syncs: only the explicit Sync()
  store::RecoveryInfo recovery;
  {
    auto store = store::DurableStore::Open(options, &recovery).value();
    for (SubscriptionId i = 0; i < 6; ++i) {
      store::WalRecord record = SimpleRecord(i);
      ASSERT_TRUE(store->Append(&record).ok());
    }
    ASSERT_TRUE(store->Sync().ok());
    for (SubscriptionId i = 6; i < 10; ++i) {
      store::WalRecord record = SimpleRecord(i);
      ASSERT_TRUE(store->Append(&record).ok());
    }
    EXPECT_EQ(store->stats().unsynced_records, 4u);
    store->SimulateCrash(/*power_loss=*/true);
    EXPECT_TRUE(store->dead());
    store::WalRecord record = SimpleRecord(99);
    EXPECT_EQ(store->Append(&record).code(), StatusCode::kIOError);
  }
  auto reopened = store::DurableStore::Open(options, &recovery).value();
  EXPECT_EQ(recovery.records.size(), 6u) << "exactly the synced prefix";
  EXPECT_FALSE(recovery.had_checkpoint);
  EXPECT_EQ(reopened->last_seq(), 6u);
}

TEST(DurableStoreTest, ProcessKillKeepsWrittenUnsyncedRecords) {
  TempDir dir;
  store::StoreOptions options;
  options.dir = dir.path();
  options.sync_every = 0;
  store::RecoveryInfo recovery;
  {
    auto store = store::DurableStore::Open(options, &recovery).value();
    for (SubscriptionId i = 0; i < 5; ++i) {
      store::WalRecord record = SimpleRecord(i);
      ASSERT_TRUE(store->Append(&record).ok());
    }
    store->SimulateCrash(/*power_loss=*/false);
  }
  store::DurableStore::Open(options, &recovery).value();
  EXPECT_EQ(recovery.records.size(), 5u)
      << "page-cache survivors replay after a plain process kill";
}

TEST(DurableStoreTest, CorruptNewestCheckpointFallsBackToFullReplay) {
  // Hand-craft the crash-between-write-and-truncate layout: a checkpoint
  // covering seq 4 exists, but so do the pre-rotation segment (records 1-4)
  // and the fresh one. With the checkpoint corrupted, recovery must fall
  // back to replaying the whole log rather than fail or lose data.
  TempDir dir;
  std::string log;
  for (SubscriptionId i = 0; i < 4; ++i) {
    store::WalRecord record = SimpleRecord(i);
    record.seq = i + 1;
    EncodeWalRecord(record, &log);
  }
  ASSERT_TRUE(
      AtomicWriteFile(dir.path() + "/" + store::WalSegmentName(0), log).ok());
  ASSERT_TRUE(
      AtomicWriteFile(dir.path() + "/" + store::WalSegmentName(4), "").ok());
  ASSERT_TRUE(AtomicWriteFile(
                  dir.path() + "/" + store::CheckpointFileName(4),
                  "this is not a checkpoint image").ok());
  store::StoreOptions options;
  options.dir = dir.path();
  store::RecoveryInfo recovery;
  store::DurableStore::Open(options, &recovery).value();
  EXPECT_FALSE(recovery.had_checkpoint);
  EXPECT_EQ(recovery.skipped_checkpoints, 1u);
  EXPECT_EQ(recovery.records.size(), 4u);
}

TEST(DurableStoreTest, TornTailIsClippedSoTheNextRecoveryIsClean) {
  TempDir dir;
  std::string log;
  for (SubscriptionId i = 0; i < 3; ++i) {
    store::WalRecord record = SimpleRecord(i);
    record.seq = i + 1;
    EncodeWalRecord(record, &log);
  }
  const size_t intact = log.size();
  store::WalRecord torn = SimpleRecord(3);
  torn.seq = 4;
  EncodeWalRecord(torn, &log);
  log.resize(intact + (log.size() - intact) / 2);  // half the last frame
  ASSERT_TRUE(
      AtomicWriteFile(dir.path() + "/" + store::WalSegmentName(0), log).ok());
  store::StoreOptions options;
  options.dir = dir.path();
  store::RecoveryInfo recovery;
  {
    store::DurableStore::Open(options, &recovery).value();
    EXPECT_EQ(recovery.records.size(), 3u);
    EXPECT_EQ(recovery.torn_tails, 1u);
  }
  // The torn bytes were clipped: a second recovery sees a clean log.
  store::DurableStore::Open(options, &recovery).value();
  EXPECT_EQ(recovery.records.size(), 3u);
  EXPECT_EQ(recovery.torn_tails, 0u);
}

// ---------------------------------------------------------------------------
// The chaos kill matrix (needs -DAPCM_FAILPOINTS=ON).
// ---------------------------------------------------------------------------

class RecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kEnabled) {
      GTEST_SKIP()
          << "failpoints compiled out; build with -DAPCM_FAILPOINTS=ON";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override {
    if (failpoint::kEnabled) failpoint::DisarmAll();
  }
};

/// One kill-matrix cell: crash via `seam` (arg 0 = process kill, 1 = power
/// loss) armed immediately before op `arm_at`, then recover and compare
/// against the oracle of exactly the acknowledged ops. `survivor_on_keep`:
/// at the post-write fsync seam with process-kill semantics, the in-flight
/// op's frame is already in the file, so recovery legitimately resurrects
/// an op that was never acknowledged — the one allowed asymmetry.
void RunKillCase(const char* seam, uint64_t arg, int arm_at,
                 const std::vector<ScriptOp>& script,
                 const std::vector<Event>& probes, bool survivor_on_keep) {
  SCOPED_TRACE(std::string(seam) + " arg=" + std::to_string(arg) +
               " arm_at=" + std::to_string(arm_at));
  TempDir dir;
  ScriptState st;
  {
    Harness durable(DurableOptions(dir.path()));
    st = ApplyScript(durable.engine, script, nullptr, seam, arg, arm_at);
  }
  EXPECT_GT(failpoint::Hits(seam), 0u) << "seam never fired";
  failpoint::DisarmAll();

  std::vector<bool> mask = st.acked;
  if (survivor_on_keep && arg == 0 && st.first_failure >= 0) {
    mask[st.first_failure] = true;
  }
  const auto [oracle_digest, oracle_subs] = OracleDigest(script, mask, probes);
  Harness recovered(DurableOptions(dir.path()));
  EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
  EXPECT_EQ(recovered.Probe(probes), oracle_digest);
}

TEST_F(RecoveryChaosTest, KillMatrixAtEveryAppendSeam) {
  const auto script = MakeScript(0xDEAD01, 18);
  const auto probes = MakeProbes(0xDEAD02, 28);
  for (const uint64_t arg : {0u, 1u}) {
    for (size_t k = 0; k < script.size(); ++k) {
      RunKillCase("store.wal.append", arg, static_cast<int>(k), script,
                  probes, /*survivor_on_keep=*/false);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(RecoveryChaosTest, KillMatrixAtEveryFsyncSeam) {
  const auto script = MakeScript(0xDEAD03, 18);
  const auto probes = MakeProbes(0xDEAD04, 28);
  for (const uint64_t arg : {0u, 1u}) {
    for (size_t k = 0; k < script.size(); ++k) {
      // The frame is written before this seam: on a process kill the
      // in-flight (unacknowledged) op survives into recovery.
      RunKillCase("store.wal.fsync", arg, static_cast<int>(k), script, probes,
                  /*survivor_on_keep=*/true);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(RecoveryChaosTest, KillMatrixAtCheckpointSeams) {
  const auto script = MakeScript(0xDEAD05, 24);
  const auto probes = MakeProbes(0xDEAD06, 28);
  // These seams fire on the background checkpoint thread (first trigger at
  // checkpoint_every_ops = 5 appends); arming from op 0 exercises them, and
  // no acknowledged op may be lost regardless of where the death lands.
  for (const char* seam :
       {"store.wal.rotate", "store.checkpoint.write",
        "store.checkpoint.truncate"}) {
    for (const uint64_t arg : {0u, 1u}) {
      RunKillCase(seam, arg, /*arm_at=*/0, script, probes,
                  /*survivor_on_keep=*/false);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(RecoveryChaosTest, TornWriteMatrixClipsTheTailExactly) {
  const auto script = MakeScript(0xDEAD07, 16);
  const auto probes = MakeProbes(0xDEAD08, 28);
  const int arm_at = 10;
  for (const uint64_t prefix_bytes : {1u, 3u, 7u, 8u, 9u, 12u, 20u, 4096u}) {
    SCOPED_TRACE("prefix=" + std::to_string(prefix_bytes));
    TempDir dir;
    ScriptState st;
    {
      Harness durable(DurableOptions(dir.path()));
      st = ApplyScript(durable.engine, script, nullptr,
                       "store.wal.append.torn", prefix_bytes, arm_at);
    }
    EXPECT_GT(failpoint::Hits("store.wal.append.torn"), 0u);
    failpoint::DisarmAll();
    const auto [oracle_digest, oracle_subs] =
        OracleDigest(script, st.acked, probes);
    Harness recovered(DurableOptions(dir.path()));
    EXPECT_EQ(CounterValue(recovered.engine.metrics_registry(),
                           "apcm_wal_torn_tail_total"),
              1u);
    EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
    EXPECT_EQ(recovered.Probe(probes), oracle_digest);
  }
}

TEST_F(RecoveryChaosTest, GroupSyncPowerLossLosesAtMostTheUnsyncedWindow) {
  const auto script = MakeScript(0xDEAD09, 16);
  const auto probes = MakeProbes(0xDEAD0A, 28);
  TempDir dir;
  EngineOptions options = DurableOptions(dir.path());
  options.wal_sync_every = 8;       // group sync: ack N, fsync every 8th
  options.checkpoint_every_ops = 0; // no rotation-triggered syncs
  const int arm_at = 13;
  ScriptState st;
  {
    Harness durable(options);
    st = ApplyScript(durable.engine, script, nullptr, "store.wal.fsync",
                     /*arg=power loss*/ 1, arm_at);
  }
  failpoint::DisarmAll();
  // Ops 0..12 were acknowledged; the one sync so far covered the first 8.
  // Power loss is allowed to take the acknowledged-but-unsynced window
  // (that is exactly the wal_sync_every contract) — and nothing more.
  ASSERT_EQ(st.first_failure, arm_at);
  std::vector<bool> mask(script.size(), false);
  for (size_t i = 0; i < 8; ++i) mask[i] = true;
  const auto [oracle_digest, oracle_subs] = OracleDigest(script, mask, probes);
  Harness recovered(options);
  EXPECT_EQ(CounterValue(recovered.engine.metrics_registry(),
                         "apcm_recovery_records_total"),
            8u);
  EXPECT_EQ(recovered.engine.num_subscriptions(), oracle_subs);
  EXPECT_EQ(recovered.Probe(probes), oracle_digest);
}

TEST_F(RecoveryChaosTest, WalWriteErrorPoisonsTheStoreFailStop) {
  TempDir dir;
  Harness durable(DurableOptions(dir.path()));
  ASSERT_TRUE(durable.engine.AddSubscription({Predicate(0, Op::kGe, 1)}).ok());
  ASSERT_TRUE(
      failpoint::Configure("store.file.write.error", "1*return").ok());
  const auto failed = durable.engine.AddSubscription({Predicate(0, Op::kGe, 2)});
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  failpoint::DisarmAll();
  // Fail-stop: the store stays dead even though the fault is gone — no
  // silently-non-durable limbo.
  const auto after = durable.engine.AddSubscription({Predicate(0, Op::kGe, 3)});
  EXPECT_EQ(after.status().code(), StatusCode::kIOError);
  EXPECT_GE(CounterValue(durable.engine.metrics_registry(),
                         "apcm_wal_append_errors_total"),
            1u);
  // The pre-fault subscription still matches (in-memory state is intact).
  EXPECT_EQ(durable.engine.num_subscriptions(), 1u);
}

}  // namespace
}  // namespace apcm
