#include "src/base/bit_ops.h"

#include <gtest/gtest.h>

namespace apcm {
namespace {

TEST(BitOpsTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(1), 1);
  EXPECT_EQ(PopCount(0xFF), 8);
  EXPECT_EQ(PopCount(~0ULL), 64);
  EXPECT_EQ(PopCount(0x8000000000000001ULL), 2);
}

TEST(BitOpsTest, CountTrailingZeros) {
  EXPECT_EQ(CountTrailingZeros(1), 0);
  EXPECT_EQ(CountTrailingZeros(2), 1);
  EXPECT_EQ(CountTrailingZeros(0x8000000000000000ULL), 63);
  EXPECT_EQ(CountTrailingZeros(0b101000), 3);
}

TEST(BitOpsTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(0, 8), 0u);
  EXPECT_EQ(RoundUpPow2(1, 8), 8u);
  EXPECT_EQ(RoundUpPow2(8, 8), 8u);
  EXPECT_EQ(RoundUpPow2(9, 8), 16u);
}

TEST(BitOpsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 64), 0u);
  EXPECT_EQ(CeilDiv(1, 64), 1u);
  EXPECT_EQ(CeilDiv(64, 64), 1u);
  EXPECT_EQ(CeilDiv(65, 64), 2u);
  EXPECT_EQ(CeilDiv(128, 64), 2u);
}

TEST(BitOpsTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

TEST(BitOpsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1025), 10);
  EXPECT_EQ(FloorLog2(~0ULL), 63);
}

}  // namespace
}  // namespace apcm
