#include "src/core/cluster_builder.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/matcher_test_util.h"

namespace apcm::core {
namespace {

TEST(ClusterBuilderTest, EverySubscriptionInExactlyOneCluster) {
  const auto workload = workload::Generate(GnarlySpec(81)).value();
  for (ClusterStrategy strategy :
       {ClusterStrategy::kPivot, ClusterStrategy::kSignature,
        ClusterStrategy::kInsertionOrder}) {
    ClusterBuilderOptions options;
    options.cluster_size = 64;
    options.strategy = strategy;
    const auto clusters = BuildClusters(workload.subscriptions, options);
    std::set<SubscriptionId> seen;
    size_t total = 0;
    for (const auto& cluster : clusters) {
      total += cluster.size();
      EXPECT_LE(cluster.size(), 64u);
      for (uint32_t slot = 0; slot < cluster.size(); ++slot) {
        EXPECT_TRUE(seen.insert(cluster.SubIdAt(slot)).second)
            << "duplicate subscription " << cluster.SubIdAt(slot);
      }
    }
    EXPECT_EQ(total, workload.subscriptions.size());
    EXPECT_EQ(seen.size(), workload.subscriptions.size());
  }
}

TEST(ClusterBuilderTest, ClusterCountMatchesSizeForChunkedStrategies) {
  const auto workload = workload::Generate(GnarlySpec(82)).value();
  for (ClusterStrategy strategy :
       {ClusterStrategy::kSignature, ClusterStrategy::kInsertionOrder}) {
    ClusterBuilderOptions options;
    options.cluster_size = 100;
    options.strategy = strategy;
    const auto clusters = BuildClusters(workload.subscriptions, options);
    EXPECT_EQ(clusters.size(), (workload.subscriptions.size() + 99) / 100);
  }
}

TEST(ClusterBuilderTest, PivotClustersShareARequiredAttribute) {
  const auto workload = workload::Generate(GnarlySpec(85)).value();
  ClusterBuilderOptions options;
  options.cluster_size = 64;
  options.strategy = ClusterStrategy::kPivot;
  const auto clusters = BuildClusters(workload.subscriptions, options);
  size_t total = 0;
  for (const auto& cluster : clusters) {
    total += cluster.size();
    // Every subscription has predicates in this workload, so every cluster
    // shares its pivot attribute and the prune is armed.
    EXPECT_FALSE(cluster.required_attributes().empty());
  }
  EXPECT_EQ(total, workload.subscriptions.size());
}

TEST(ClusterBuilderTest, PivotGroupsMatchAllSubscriptionsTogether) {
  std::vector<BooleanExpression> subs;
  subs.push_back(BooleanExpression::Create(0, {}).value());
  subs.push_back(
      BooleanExpression::Create(1, {Predicate(3, Op::kGe, 0)}).value());
  subs.push_back(BooleanExpression::Create(2, {}).value());
  ClusterBuilderOptions options;
  options.strategy = ClusterStrategy::kPivot;
  options.cluster_size = 16;
  const auto clusters = BuildClusters(subs, options);
  // Two clusters: the pivot-3 group and the match-all group.
  ASSERT_EQ(clusters.size(), 2u);
  size_t match_all_clusters = 0;
  for (const auto& cluster : clusters) {
    if (cluster.required_attributes().empty()) {
      ++match_all_clusters;
      EXPECT_EQ(cluster.size(), 2u);
    }
  }
  EXPECT_EQ(match_all_clusters, 1u);
}

TEST(ClusterBuilderTest, SignatureClusteringImprovesCompression) {
  // Construct a workload with heavy sharing potential: few attribute-set
  // templates, shared predicate constants.
  workload::WorkloadSpec spec = GnarlySpec(83);
  spec.num_subscriptions = 2000;
  spec.num_attributes = 12;
  spec.min_predicates = 3;
  spec.max_predicates = 5;
  spec.equality_fraction = 1.0;  // only equality on a tiny domain
  spec.in_fraction = 0;
  spec.ne_fraction = 0;
  spec.inequality_fraction = 0;
  spec.domain_max = spec.domain_min + 9;
  const auto workload = workload::Generate(spec).value();

  auto ratio = [&](ClusterStrategy strategy) {
    ClusterBuilderOptions options;
    options.cluster_size = 128;
    options.strategy = strategy;
    const auto clusters = BuildClusters(workload.subscriptions, options);
    uint64_t total = 0;
    uint64_t distinct = 0;
    for (const auto& cluster : clusters) {
      total += cluster.total_predicates();
      distinct += cluster.distinct_predicates();
    }
    return static_cast<double>(total) / static_cast<double>(distinct);
  };
  const double sig = ratio(ClusterStrategy::kSignature);
  const double ins = ratio(ClusterStrategy::kInsertionOrder);
  EXPECT_GT(sig, 1.0);
  // Signature clustering should compress at least as well as arbitrary
  // grouping, typically much better.
  EXPECT_GE(sig, ins * 0.99);
}

TEST(ClusterBuilderTest, EmptySubscriptions) {
  ClusterBuilderOptions options;
  const auto clusters = BuildClusters({}, options);
  EXPECT_TRUE(clusters.empty());
}

TEST(ClusterBuilderTest, ClusterSizeOne) {
  const auto workload = workload::Generate(GnarlySpec(84)).value();
  ClusterBuilderOptions options;
  options.cluster_size = 1;
  const auto clusters = BuildClusters(workload.subscriptions, options);
  EXPECT_EQ(clusters.size(), workload.subscriptions.size());
  for (const auto& cluster : clusters) EXPECT_EQ(cluster.size(), 1u);
}

TEST(ClusterBuilderTest, StrategyNames) {
  EXPECT_STREQ(ClusterStrategyName(ClusterStrategy::kPivot), "pivot");
  EXPECT_STREQ(ClusterStrategyName(ClusterStrategy::kSignature), "signature");
  EXPECT_STREQ(ClusterStrategyName(ClusterStrategy::kInsertionOrder),
               "insertion-order");
}

}  // namespace
}  // namespace apcm::core
