#include "src/base/status.h"

#include <gtest/gtest.h>

#include <memory>

namespace apcm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "already_exists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "failed_precondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "io_error");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  APCM_RETURN_NOT_OK(FailIfNegative(a));
  APCM_RETURN_NOT_OK(FailIfNegative(b));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kOutOfRange);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoubleIt(int x) {
  APCM_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  StatusOr<int> good = DoubleIt(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(DoubleIt(0).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace apcm
