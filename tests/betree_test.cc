#include "src/index/betree.h"

#include <gtest/gtest.h>

#include "tests/matcher_test_util.h"

namespace apcm {
namespace {

TEST(BETreeTest, HandWorkload) {
  const workload::Workload workload = HandWorkload();
  index::BETreeMatcher betree;
  ExpectAgreesWithScan(betree, workload);
}

class BETreeRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(BETreeRandomTest, AgreesWithScanAcrossCapacities) {
  const auto [seed, capacity] = GetParam();
  const auto spec = GnarlySpec(seed);
  const workload::Workload workload = workload::Generate(spec).value();
  index::BETreeOptions options;
  options.max_leaf_capacity = capacity;
  options.min_partition_size = 2;
  index::BETreeMatcher betree(options);
  ExpectAgreesWithScan(betree, workload);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCapacities, BETreeRandomTest,
    ::testing::Combine(::testing::Values(51, 52, 53),
                       // capacity 1 forces maximal splitting; 1000 never
                       // splits (degenerates to scan of the root list).
                       ::testing::Values(1u, 4u, 16u, 1000u)));

TEST(BETreeTest, SplitsUnderPressure) {
  workload::WorkloadSpec spec = GnarlySpec(61);
  spec.num_subscriptions = 2000;
  const workload::Workload workload = workload::Generate(spec).value();
  index::BETreeOptions options;
  options.max_leaf_capacity = 8;
  index::BETreeMatcher betree(options);
  betree.Build(workload.subscriptions);
  const auto shape = betree.ComputeShape();
  EXPECT_GT(shape.partition_nodes, 0u);
  EXPECT_GT(shape.buckets, 0u);
  EXPECT_GT(shape.cluster_nodes, 1u);
  EXPECT_GT(betree.MemoryBytes(), 0u);
}

TEST(BETreeTest, IndexPrunesCandidates) {
  workload::WorkloadSpec spec = GnarlySpec(62);
  spec.num_subscriptions = 3000;
  spec.num_events = 50;
  const workload::Workload workload = workload::Generate(spec).value();

  index::ScanMatcher scan;
  RunMatcher(scan, workload);
  index::BETreeMatcher betree;
  RunMatcher(betree, workload);
  // The whole point of the index: fewer candidates examined than scan.
  EXPECT_LT(betree.stats().candidates_checked,
            scan.stats().candidates_checked / 2);
}

TEST(BETreeTest, IdenticalExpressionsDoNotLoopSplitting) {
  // 100 copies of the same single-predicate expression: after partitioning
  // on that attribute they all land in the same bucket and no further cut is
  // possible. Build must terminate and match correctly.
  workload::Workload workload;
  for (SubscriptionId i = 0; i < 100; ++i) {
    workload.subscriptions.push_back(
        BooleanExpression::Create(i, {Predicate(0, 10, 20)}).value());
  }
  workload.events.push_back(Event::Create({{0, 15}}).value());
  workload.events.push_back(Event::Create({{0, 25}}).value());
  index::BETreeOptions options;
  options.max_leaf_capacity = 4;
  index::BETreeMatcher betree(options);
  const auto results = RunMatcher(betree, workload);
  EXPECT_EQ(results[0].size(), 100u);
  EXPECT_TRUE(results[1].empty());
}

TEST(BETreeTest, MatchAllExpressions) {
  workload::Workload workload;
  workload.subscriptions.push_back(BooleanExpression::Create(0, {}).value());
  workload.events.push_back(Event());
  workload.events.push_back(Event::Create({{3, 3}}).value());
  index::BETreeMatcher betree;
  const auto results = RunMatcher(betree, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
  EXPECT_EQ(results[1], (std::vector<SubscriptionId>{0}));
}

TEST(BETreeTest, EventValuesOutsideBuildDomain) {
  // The tree derives its domain from subscriptions; event values outside it
  // must be handled by clamping, not crash or miss.
  workload::Workload workload;
  workload.subscriptions.push_back(
      BooleanExpression::Create(0, {Predicate(0, Op::kLe, 100)}).value());
  workload.subscriptions.push_back(
      BooleanExpression::Create(1, {Predicate(0, Op::kGe, 50)}).value());
  workload.events.push_back(Event::Create({{0, -1'000'000}}).value());
  workload.events.push_back(Event::Create({{0, 1'000'000}}).value());
  index::BETreeMatcher betree;
  const auto results = RunMatcher(betree, workload);
  EXPECT_EQ(results[0], (std::vector<SubscriptionId>{0}));
  EXPECT_EQ(results[1], (std::vector<SubscriptionId>{1}));
}

TEST(BETreeTest, EmptySubscriptionSet) {
  workload::Workload workload;
  workload.events.push_back(Event::Create({{0, 1}}).value());
  index::BETreeMatcher betree;
  const auto results = RunMatcher(betree, workload);
  EXPECT_TRUE(results[0].empty());
}

}  // namespace
}  // namespace apcm
