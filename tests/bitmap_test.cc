#include "src/bitmap/bitmap.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"

namespace apcm {
namespace {

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.num_words(), 0u);
  EXPECT_TRUE(b.IsZero());
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, FillOnesKeepsTailClear) {
  for (uint64_t bits : {1ULL, 63ULL, 64ULL, 65ULL, 127ULL, 128ULL, 130ULL}) {
    Bitmap b(bits);
    b.FillOnes();
    EXPECT_EQ(b.Count(), bits) << "bits=" << bits;
    for (uint64_t i = 0; i < bits; ++i) EXPECT_TRUE(b.Test(i));
    // Tail bits beyond size must be zero (word-level invariants).
    if (bits % 64 != 0) {
      const uint64_t last = b.data()[b.num_words() - 1];
      EXPECT_EQ(last >> (bits % 64), 0u) << "bits=" << bits;
    }
  }
}

TEST(BitmapTest, AndNotClearsSharedBits) {
  Bitmap a(100);
  Bitmap b(100);
  a.FillOnes();
  b.Set(3);
  b.Set(99);
  a.AndNot(b);
  EXPECT_EQ(a.Count(), 98u);
  EXPECT_FALSE(a.Test(3));
  EXPECT_FALSE(a.Test(99));
  EXPECT_TRUE(a.Test(0));
}

TEST(BitmapTest, AndOr) {
  Bitmap a(10);
  Bitmap b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitmap a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.ToIndices(), (std::vector<uint64_t>{2}));
  Bitmap a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.ToIndices(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(BitmapTest, ForEachSetBitOrdered) {
  Bitmap b(200);
  const std::vector<uint64_t> indices = {0, 5, 63, 64, 65, 128, 199};
  for (uint64_t i : indices) b.Set(i);
  EXPECT_EQ(b.ToIndices(), indices);
}

TEST(BitmapTest, ToStringLsbFirst) {
  Bitmap b(5);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(b.ToString(), "01001");
}

TEST(BitmapTest, Equality) {
  Bitmap a(70);
  Bitmap b(70);
  EXPECT_EQ(a, b);
  a.Set(69);
  EXPECT_FALSE(a == b);
  b.Set(69);
  EXPECT_EQ(a, b);
  Bitmap c(71);
  EXPECT_FALSE(a == c);  // different sizes
}

TEST(BitmapTest, ResizeZeroes) {
  Bitmap b(10);
  b.FillOnes();
  b.Resize(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.IsZero());
}

TEST(BitmapWordsTest, WordsForBits) {
  EXPECT_EQ(WordsForBits(0), 0u);
  EXPECT_EQ(WordsForBits(1), 1u);
  EXPECT_EQ(WordsForBits(64), 1u);
  EXPECT_EQ(WordsForBits(65), 2u);
}

TEST(BitmapWordsTest, RawKernelsMatchBitmapOps) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t bits = 1 + rng.Uniform(300);
    Bitmap a(bits);
    Bitmap b(bits);
    for (uint64_t i = 0; i < bits; ++i) {
      if (rng.Bernoulli(0.5)) a.Set(i);
      if (rng.Bernoulli(0.5)) b.Set(i);
    }
    // Reference via per-bit ops.
    Bitmap expected(bits);
    for (uint64_t i = 0; i < bits; ++i) {
      if (a.Test(i) && !b.Test(i)) expected.Set(i);
    }
    Bitmap actual = a;
    AndNotWords(actual.data(), b.data(), actual.num_words());
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(PopCountWords(a.data(), a.num_words()), a.Count());
    EXPECT_EQ(IsZeroWords(a.data(), a.num_words()), a.Count() == 0);
  }
}

TEST(BitmapWordsTest, FillOnesWordsPartialTail) {
  std::vector<uint64_t> words(3, 0xDEADBEEFDEADBEEFULL);
  FillOnesWords(words.data(), 130);
  EXPECT_EQ(words[0], ~0ULL);
  EXPECT_EQ(words[1], ~0ULL);
  EXPECT_EQ(words[2], 0b11ULL);
}

}  // namespace
}  // namespace apcm
