// net::Client failure-path suite against a scripted fake server: the client
// must surface request-level errors without breaking the connection, and
// treat every protocol violation or transport failure (close mid-request,
// response timeout, out-of-order correlation, ERROR-with-OK) as fatal for
// the connection — never hang, never mis-correlate. Runs in every build (no
// failpoints required; the chaos suite covers injected syscall faults).

#include "src/net/client.h"

#include <chrono>
#include <memory>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/frame.h"
#include "src/net/server.h"

namespace apcm::net {
namespace {

/// One accepted connection of the fake server, with framed read/write
/// helpers for scripts.
class Conn {
 public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn() { Close(); }

  /// Blocks until one complete frame arrives (fails the test on EOF or a
  /// framing error — scripts only expect well-formed client traffic).
  Frame ReadFrame() {
    for (;;) {
      auto next = decoder_.Next();
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (next.ok() && next->has_value()) return std::move(**next);
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      EXPECT_GT(n, 0) << "client closed before the expected frame";
      if (n <= 0) return Frame{};
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }

  void Send(const Frame& frame) { SendRaw(EncodeFrame(frame)); }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Blocks until the client closes its end.
  void AwaitClose() {
    char buf[256];
    while (::recv(fd_, buf, sizeof(buf), 0) > 0) {
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  FrameDecoder decoder_;
};

/// Listens on an ephemeral loopback port and runs one scripted connection
/// in a background thread.
class FakeServer {
 public:
  FakeServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
  }

  ~FakeServer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int port() const { return port_; }

  void Serve(std::function<void(Conn&)> script) {
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      ASSERT_GE(fd, 0);
      Conn conn(fd);
      script(conn);
    });
  }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

TEST(NetClientFaultTest, ConnectionRefusedSurfacesIOError) {
  Client client;
  // Port 1 is privileged and unbound in the test environment.
  const Status status = client.Connect("127.0.0.1", 1);
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
  EXPECT_FALSE(client.connected());
}

TEST(NetClientFaultTest, ConnectTwiceIsFailedPrecondition) {
  FakeServer server;
  server.Serve([](Conn& conn) { conn.AwaitClose(); });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.Connect("127.0.0.1", server.port()).code(),
            StatusCode::kFailedPrecondition);
  client.Close();
}

TEST(NetClientFaultTest, ServerCloseMidRequestBreaksTheConnection) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    conn.ReadFrame();  // the SUBSCRIBE
    conn.Close();      // ... and no response, ever
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status status = client.Subscribe(1, "a0 >= 0");
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
  EXPECT_NE(status.message().find("closed"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(client.connected());
  // Requests on a broken connection fail fast.
  EXPECT_EQ(client.Ping().code(), StatusCode::kFailedPrecondition);
}

TEST(NetClientFaultTest, ErrorResponseIsSurfacedAndConnectionSurvives) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    const Frame subscribe = conn.ReadFrame();
    EXPECT_EQ(subscribe.type, FrameType::kSubscribe);
    Frame error;
    error.type = FrameType::kError;
    error.seq = subscribe.seq;
    error.code = StatusCode::kInvalidArgument;
    error.message = "expression rejected";
    conn.Send(error);
    const Frame ping = conn.ReadFrame();
    EXPECT_EQ(ping.type, FrameType::kPing);
    Frame pong;
    pong.type = FrameType::kPong;
    pong.seq = ping.seq;
    conn.Send(pong);
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status status = client.Subscribe(1, "a0 >= 0");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "expression rejected");
  // A request-level ERROR is not a connection failure.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
  client.Close();
}

TEST(NetClientFaultTest, PingTimeoutBreaksTheConnection) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    const Frame ping = conn.ReadFrame();
    EXPECT_EQ(ping.type, FrameType::kPing);
    // Never answer; the client's bounded wait must expire.
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status status = client.Ping(/*timeout_ms=*/200);
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
  // A late PONG would be mis-correlated, so the timeout fails the
  // connection rather than leaving it half-synchronized.
  EXPECT_FALSE(client.connected());
}

TEST(NetClientFaultTest, OutOfOrderResponseSeqIsFatal) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    const Frame ping = conn.ReadFrame();
    Frame pong;
    pong.type = FrameType::kPong;
    pong.seq = ping.seq + 999;
    conn.Send(pong);
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status status = client.Ping();
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  EXPECT_NE(status.message().find("out of order"), std::string::npos);
  EXPECT_FALSE(client.connected());
}

TEST(NetClientFaultTest, ErrorFrameCarryingOkCodeIsFatal) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    const Frame subscribe = conn.ReadFrame();
    Frame error;
    error.type = FrameType::kError;
    error.seq = subscribe.seq;
    error.code = StatusCode::kOk;  // nonsense: an error that isn't
    conn.Send(error);
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const Status status = client.Subscribe(1, "a0 >= 0");
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  EXPECT_FALSE(client.connected());
}

TEST(NetClientFaultTest, MatchesArrivingBeforeTheResponseAreQueued) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    const Frame publish = conn.ReadFrame();
    EXPECT_EQ(publish.type, FrameType::kPublish);
    // Two unsolicited MATCH frames land before the ACK.
    for (uint64_t event_id : {10u, 11u}) {
      Frame match;
      match.type = FrameType::kMatch;
      match.event_id = event_id;
      match.matches = {1, 2};
      conn.Send(match);
    }
    Frame ack;
    ack.type = FrameType::kAck;
    ack.seq = publish.seq;
    ack.value = 10;
    conn.Send(ack);
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto id = client.Publish(Event::Create({{0, 1}}).value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 10u);
  for (uint64_t expected : {10u, 11u}) {
    auto match = client.PollMatch(/*timeout_ms=*/0);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    ASSERT_TRUE(match->has_value());
    EXPECT_EQ((*match)->event_id, expected);
    EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{1, 2}));
  }
  client.Close();
}

/// Kill a real backend mid-session, restart it on the same port, and
/// reconnect with the backoff helper while the restart is still in flight:
/// ConnectWithRetry must absorb the refused attempts, and a re-subscribed
/// session must match again (server-side state does not carry over — the
/// caller re-establishes it, exactly the contract the cluster router's
/// resync path builds on).
TEST(NetClientFaultTest, KillBackendThenReconnectResumesService) {
  EventServerOptions options;
  options.engine.batch_size = 4;
  options.engine.osr.window_size = 0;
  auto server = std::make_unique<EventServer>(options);
  ASSERT_TRUE(server->Start().ok());
  const int port = server->port();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Subscribe(7, "a0 >= 5").ok());
  auto id = client.Publish(Event::Create({{0, 9}}).value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto match = client.PollMatch(/*timeout_ms=*/5000);
  ASSERT_TRUE(match.ok() && match->has_value());
  EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{7}));

  // Kill the backend. The next request observes the broken connection.
  server->Stop();
  server.reset();
  EXPECT_FALSE(client.Ping(/*timeout_ms=*/1000).ok());
  EXPECT_FALSE(client.connected());

  // Restart on the same port a beat later, with the reconnect already
  // spinning: the early attempts are refused and backed off, a later one
  // lands once the listener is up.
  std::thread restarter([&server, port, &options] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    options.port = port;
    server = std::make_unique<EventServer>(options);
    ASSERT_TRUE(server->Start().ok());
  });
  RetryOptions retry;
  retry.max_attempts = 50;
  retry.initial_backoff_ms = 5;
  retry.max_backoff_ms = 20;
  const Status reconnected = client.ConnectWithRetry("127.0.0.1", port, retry);
  restarter.join();
  ASSERT_TRUE(reconnected.ok()) << reconnected.ToString();

  // A fresh server holds none of the old session: the subscription must be
  // re-established before matches flow again.
  ASSERT_TRUE(client.Subscribe(7, "a0 >= 5").ok());
  id = client.Publish(Event::Create({{0, 8}}).value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  match = client.PollMatch(/*timeout_ms=*/5000);
  ASSERT_TRUE(match.ok() && match->has_value());
  EXPECT_EQ((*match)->sub_ids, (std::vector<uint64_t>{7}));
  client.Close();
  server->Stop();
}

TEST(NetClientFaultTest, UnsolicitedNonMatchFrameIsFatal) {
  FakeServer server;
  server.Serve([](Conn& conn) {
    Frame ack;  // no request is outstanding
    ack.type = FrameType::kAck;
    ack.seq = 1;
    conn.Send(ack);
    conn.AwaitClose();
  });
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto match = client.PollMatch(/*timeout_ms=*/5000);
  EXPECT_FALSE(match.ok());
  EXPECT_EQ(match.status().code(), StatusCode::kInternal)
      << match.status().ToString();
  EXPECT_FALSE(client.connected());
}

}  // namespace
}  // namespace apcm::net
