// Differential kernel-oracle suite: every SIMD kernel variant the host can
// run must be bit-for-bit identical to the scalar reference on every word
// alignment, tail length, and adversarial bit pattern — plus the hybrid
// container against the plain Bitmap, including promotion boundaries, and
// the dispatch machinery itself (APCM_SIMD startup override, runtime level
// switching). The ctest registrations run this binary once per APCM_SIMD
// value so the wrapper fast paths are exercised under every forced level.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/base/rng.h"
#include "src/bitmap/bitmap.h"
#include "src/bitmap/container.h"
#include "src/bitmap/kernels.h"

namespace apcm::bitmap {
namespace {

/// Word counts covering empty spans, sub-block tails 1..7, exact blocks,
/// and every tail length around one and two blocks.
std::vector<uint64_t> OracleWordCounts() {
  std::vector<uint64_t> counts;
  for (uint64_t w = 0; w <= 40; ++w) counts.push_back(w);
  counts.insert(counts.end(), {63, 64, 65, 127, 128, 129});
  return counts;
}

/// Deterministic adversarial patterns plus seeded random fill.
enum class Pattern { kZeros, kOnes, kAlternating, kSingleBit, kRandom };

std::vector<uint64_t> MakeWords(uint64_t words, Pattern pattern,
                                uint64_t seed) {
  std::vector<uint64_t> data(words, 0);
  Rng rng(seed);
  for (uint64_t i = 0; i < words; ++i) {
    switch (pattern) {
      case Pattern::kZeros:
        data[i] = 0;
        break;
      case Pattern::kOnes:
        data[i] = ~0ULL;
        break;
      case Pattern::kAlternating:
        data[i] = 0xAAAAAAAAAAAAAAAAULL;
        break;
      case Pattern::kSingleBit:
        data[i] = 0;
        break;
      case Pattern::kRandom:
        data[i] = rng();
        break;
    }
  }
  if (pattern == Pattern::kSingleBit && words > 0) {
    const uint64_t bit = rng.Uniform(words * 64);
    data[bit / 64] |= 1ULL << (bit % 64);
  }
  return data;
}

constexpr Pattern kPatterns[] = {Pattern::kZeros, Pattern::kOnes,
                                 Pattern::kAlternating, Pattern::kSingleBit,
                                 Pattern::kRandom};

/// Runs `check(table, a, b)` for every supported non-scalar level against
/// every (word count, offset, pattern pair) combination. Offsets shift the
/// span start within an 8-word slack region so every vector-load alignment
/// is hit.
template <typename Check>
void ForEachOracleCase(const Check& check) {
  constexpr uint64_t kMaxOffset = 8;
  uint64_t seed = 1;
  for (SimdLevel level : SupportedSimdLevels()) {
    if (level == SimdLevel::kScalar) continue;
    const KernelTable& table = KernelsFor(level);
    for (uint64_t words : OracleWordCounts()) {
      for (uint64_t offset = 0; offset < kMaxOffset; ++offset) {
        for (Pattern pa : kPatterns) {
          for (Pattern pb : kPatterns) {
            std::vector<uint64_t> a =
                MakeWords(words + kMaxOffset, pa, ++seed);
            std::vector<uint64_t> b =
                MakeWords(words + kMaxOffset, pb, ++seed);
            check(table, a.data() + offset, b.data() + offset, words);
          }
        }
      }
    }
  }
}

TEST(KernelOracleTest, BinaryOpsMatchScalar) {
  const KernelTable& oracle = ScalarKernels();
  ForEachOracleCase([&](const KernelTable& table, const uint64_t* a,
                        const uint64_t* b, uint64_t words) {
    const std::vector<uint64_t> da(a, a + words);
    std::vector<uint64_t> expect = da;
    std::vector<uint64_t> got = da;
    oracle.and_words(expect.data(), b, words);
    table.and_words(got.data(), b, words);
    ASSERT_EQ(got, expect) << "and_words level "
                           << SimdLevelName(table.level) << " words " << words;
    expect = da;
    got = da;
    oracle.and_not_words(expect.data(), b, words);
    table.and_not_words(got.data(), b, words);
    ASSERT_EQ(got, expect) << "and_not_words level "
                           << SimdLevelName(table.level) << " words " << words;
    expect = da;
    got = da;
    oracle.or_words(expect.data(), b, words);
    table.or_words(got.data(), b, words);
    ASSERT_EQ(got, expect) << "or_words level " << SimdLevelName(table.level)
                           << " words " << words;
  });
}

TEST(KernelOracleTest, ReductionsMatchScalar) {
  const KernelTable& oracle = ScalarKernels();
  ForEachOracleCase([&](const KernelTable& table, const uint64_t* a,
                        const uint64_t* /*b*/, uint64_t words) {
    ASSERT_EQ(table.popcount_words(a, words), oracle.popcount_words(a, words))
        << "popcount level " << SimdLevelName(table.level) << " words "
        << words;
    ASSERT_EQ(table.is_zero_words(a, words), oracle.is_zero_words(a, words))
        << "is_zero level " << SimdLevelName(table.level) << " words "
        << words;
    ASSERT_EQ(table.first_set_bit(a, words), oracle.first_set_bit(a, words))
        << "first_set level " << SimdLevelName(table.level) << " words "
        << words;
  });
}

TEST(KernelOracleTest, CollectMatchesScalar) {
  const KernelTable& oracle = ScalarKernels();
  ForEachOracleCase([&](const KernelTable& table, const uint64_t* a,
                        const uint64_t* /*b*/, uint64_t words) {
    const uint64_t bits = oracle.popcount_words(a, words);
    std::vector<uint32_t> expect(bits + 1, 0xDEADBEEF);
    std::vector<uint32_t> got(bits + 1, 0xDEADBEEF);
    const uint64_t ne = oracle.collect_set_bits(a, words, 100, expect.data());
    const uint64_t ng = table.collect_set_bits(a, words, 100, got.data());
    ASSERT_EQ(ng, ne) << "collect count level " << SimdLevelName(table.level);
    ASSERT_EQ(got, expect) << "collect level " << SimdLevelName(table.level)
                           << " words " << words;
  });
}

TEST(KernelOracleTest, WrapperFunctionsAgreeWithActiveTable) {
  // The bitmap.h wrappers take an inline scalar path below the dispatch
  // threshold; both sides of that branch must agree with the active table.
  Rng rng(7);
  for (uint64_t words :
       {uint64_t{0}, uint64_t{1}, kInlineSpanWords, kInlineSpanWords + 1,
        uint64_t{16}, uint64_t{40}}) {
    std::vector<uint64_t> a(words);
    std::vector<uint64_t> b(words);
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    std::vector<uint64_t> expect = a;
    ActiveKernels().and_not_words(expect.data(), b.data(), words);
    std::vector<uint64_t> got = a;
    AndNotWords(got.data(), b.data(), words);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(PopCountWords(a.data(), words),
              ActiveKernels().popcount_words(a.data(), words));
    EXPECT_EQ(IsZeroWords(a.data(), words),
              ActiveKernels().is_zero_words(a.data(), words));
    EXPECT_EQ(FirstSetBit(a.data(), words),
              ActiveKernels().first_set_bit(a.data(), words));
  }
}

TEST(KernelOracleTest, BitRangeHelpersMatchBitLoops) {
  for (uint64_t bits : {1u, 63u, 64u, 65u, 200u, 512u}) {
    const uint64_t words = WordsForBits(bits);
    for (uint64_t start = 0; start < bits; start += 7) {
      for (uint64_t len : {uint64_t{0}, uint64_t{1}, uint64_t{13},
                           uint64_t{64}, bits - start}) {
        if (start + len > bits) continue;
        Bitmap expect(bits);
        expect.FillOnes();
        for (uint64_t i = start; i < start + len; ++i) expect.Clear(i);
        std::vector<uint64_t> got(words);
        FillOnesWords(got.data(), bits);
        ClearBitRange(got.data(), start, len);
        ASSERT_TRUE(
            std::equal(got.begin(), got.end(), expect.data()))
            << "clear bits=" << bits << " start=" << start << " len=" << len;

        Bitmap expect_set(bits);
        for (uint64_t i = start; i < start + len; ++i) expect_set.Set(i);
        std::vector<uint64_t> got_set(words, 0);
        SetBitRange(got_set.data(), start, len);
        ASSERT_TRUE(
            std::equal(got_set.begin(), got_set.end(), expect_set.data()))
            << "set bits=" << bits << " start=" << start << " len=" << len;
      }
    }
  }
}

TEST(SimdDispatchTest, SupportedLevelsAscendingAndScalarAlways) {
  const auto levels = SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  EXPECT_EQ(BestSupportedSimdLevel(), levels.back());
}

TEST(SimdDispatchTest, StartupLevelHonorsEnvironment) {
  // The ctest registrations run this binary once per APCM_SIMD value; when
  // the variable names a supported level, first-use dispatch must have
  // picked exactly that level (unsupported values fall back to best).
  const char* env = std::getenv("APCM_SIMD");
  if (env == nullptr || std::string(env).empty() ||
      std::string(env) == "auto") {
    EXPECT_EQ(StartupSimdLevel(), BestSupportedSimdLevel());
    return;
  }
  auto requested = ParseSimdLevel(env);
  ASSERT_TRUE(requested.ok()) << "unparseable APCM_SIMD for test: " << env;
  const auto levels = SupportedSimdLevels();
  if (std::find(levels.begin(), levels.end(), *requested) != levels.end()) {
    EXPECT_EQ(StartupSimdLevel(), *requested);
  } else {
    EXPECT_EQ(StartupSimdLevel(), BestSupportedSimdLevel());
  }
}

TEST(SimdDispatchTest, SetActiveSimdLevelRoundTrips) {
  const SimdLevel original = ActiveSimdLevel();
  for (SimdLevel level : SupportedSimdLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(level).ok());
    EXPECT_EQ(ActiveSimdLevel(), level);
    EXPECT_EQ(ActiveKernels().level, level);
  }
  ASSERT_TRUE(SetActiveSimdLevel(original).ok());
}

TEST(SimdDispatchTest, UnsupportedLevelRejected) {
  const auto levels = SupportedSimdLevels();
  if (std::find(levels.begin(), levels.end(), SimdLevel::kAvx512) !=
      levels.end()) {
    GTEST_SKIP() << "every compiled level is supported on this host";
  }
  const Status status = SetActiveSimdLevel(SimdLevel::kAvx512);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SimdDispatchTest, ParseRejectsUnknownNames) {
  EXPECT_FALSE(ParseSimdLevel("sse2").ok());
  EXPECT_FALSE(ParseSimdLevel("").ok());
  EXPECT_FALSE(ParseSimdLevel("AVX2").ok());
  EXPECT_EQ(*ParseSimdLevel("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(*ParseSimdLevel("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(*ParseSimdLevel("avx512"), SimdLevel::kAvx512);
}

// ---------------------------------------------------------------------------
// Hybrid container vs. plain Bitmap oracle.

TEST(HybridBitmapTest, StartsEmptyArray) {
  HybridBitmap h(1000);
  EXPECT_EQ(h.kind(), HybridBitmap::Kind::kArray);
  EXPECT_TRUE(h.Empty());
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_TRUE(h.ToIndices().empty());
}

TEST(HybridBitmapTest, PromotesAtBoundaryAndDemotesWithHysteresis) {
  HybridBitmap h(4096);
  for (uint32_t i = 0; i < HybridBitmap::kArrayMax; ++i) h.Add(i * 3);
  EXPECT_EQ(h.kind(), HybridBitmap::Kind::kArray);
  h.Add(HybridBitmap::kArrayMax * 3);  // one past the array limit
  EXPECT_EQ(h.kind(), HybridBitmap::Kind::kBitset);
  EXPECT_EQ(h.Count(), HybridBitmap::kArrayMax + 1);
  // Removing back to exactly the promote point must NOT demote (hysteresis);
  // dropping below kArrayDemote must.
  while (h.Count() >= HybridBitmap::kArrayDemote) {
    h.Remove(h.ToIndices().back());
    if (h.Count() >= HybridBitmap::kArrayDemote) {
      EXPECT_EQ(h.kind(), HybridBitmap::Kind::kBitset) << h.Count();
    }
  }
  EXPECT_EQ(h.kind(), HybridBitmap::Kind::kArray);
}

TEST(HybridBitmapTest, OptimizePicksRunForContiguousBlocks) {
  HybridBitmap h(10000);
  for (uint32_t i = 500; i < 3000; ++i) h.Add(i);
  ASSERT_EQ(h.kind(), HybridBitmap::Kind::kBitset);
  h.Optimize();
  EXPECT_EQ(h.kind(), HybridBitmap::Kind::kRun);
  EXPECT_EQ(h.Count(), 2500u);
  EXPECT_TRUE(h.Test(500));
  EXPECT_TRUE(h.Test(2999));
  EXPECT_FALSE(h.Test(499));
  EXPECT_FALSE(h.Test(3000));
  // Mutating a run container falls back to bitset, correctly.
  h.Add(5000);
  EXPECT_EQ(h.Count(), 2501u);
  EXPECT_TRUE(h.Test(5000));
}

TEST(HybridBitmapTest, DifferentialAgainstBitmapOracle) {
  // Random add/remove churn across the promotion boundaries with periodic
  // Optimize() repacks; the container must track the Bitmap oracle exactly,
  // and its span ops must equal whole-bitmap ops.
  constexpr uint32_t kUniverse = 700;
  Rng rng(20260808);
  HybridBitmap h(kUniverse);
  Bitmap oracle(kUniverse);
  uint64_t count = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto i = static_cast<uint32_t>(rng.Uniform(kUniverse));
    // Bias toward adds so the set crosses kArrayMax repeatedly.
    if (rng.Uniform(3) != 0) {
      if (!oracle.Test(i)) ++count;
      h.Add(i);
      oracle.Set(i);
    } else {
      if (oracle.Test(i)) --count;
      h.Remove(i);
      oracle.Clear(i);
    }
    if (step % 997 == 0) h.Optimize();
    ASSERT_EQ(h.Count(), count) << "step " << step;
    ASSERT_EQ(h.Test(i), oracle.Test(i));
  }
  // Full membership agreement.
  const auto indices = h.ToIndices();
  const auto expected = oracle.ToIndices();
  ASSERT_EQ(indices.size(), expected.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    ASSERT_EQ(indices[k], expected[k]);
  }

  // Span ops against a random target must equal Bitmap algebra. The span is
  // padded; tail bits beyond the universe stay zero in ToWords output.
  const uint64_t span = PaddedWords(kUniverse);
  for (auto op : {0, 1, 2}) {
    std::vector<uint64_t> target(span);
    Bitmap target_oracle(kUniverse);
    for (uint32_t i = 0; i < kUniverse; ++i) {
      if (rng.Uniform(2) == 0) {
        target[i / 64] |= 1ULL << (i % 64);
        target_oracle.Set(i);
      }
    }
    std::vector<uint64_t> self(span);
    h.ToWords(self.data(), span);
    Bitmap self_bitmap(kUniverse);
    for (uint32_t i : h.ToIndices()) self_bitmap.Set(i);
    switch (op) {
      case 0:
        h.AndNotInto(target.data(), span);
        target_oracle.AndNot(self_bitmap);
        break;
      case 1:
        h.AndInto(target.data(), span);
        target_oracle.And(self_bitmap);
        break;
      case 2:
        h.OrInto(target.data(), span);
        target_oracle.Or(self_bitmap);
        break;
    }
    for (uint32_t i = 0; i < kUniverse; ++i) {
      ASSERT_EQ((target[i / 64] >> (i % 64)) & 1,
                static_cast<uint64_t>(target_oracle.Test(i)))
          << "op " << op << " bit " << i;
    }
  }
}

TEST(HybridBitmapTest, EqualityIsRepresentationIndependent) {
  HybridBitmap a(512);
  HybridBitmap b(512);
  for (uint32_t i = 100; i < 200; ++i) a.Add(i);
  for (uint32_t i = 100; i < 200; ++i) b.Add(i);
  a.Optimize();  // run form
  ASSERT_NE(a.kind(), b.kind());
  EXPECT_TRUE(a == b);
  b.Add(300);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace apcm::bitmap
