// Index persistence: PcmMatcher::SaveIndex/LoadIndex and the underlying
// CompressedCluster binary images. The property: a loaded index matches
// exactly like the index it was saved from, and corrupted or mismatched
// images are rejected with a Status.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "src/base/failpoint.h"
#include "src/core/pcm.h"
#include "tests/matcher_test_util.h"

namespace apcm::core {
namespace {

constexpr char kPath[] = "/tmp/apcm_serialization_test.idx";

class SerializationTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(kPath); }
};

TEST_F(SerializationTest, SaveLoadRoundTripMatchesIdentically) {
  const auto workload = workload::Generate(GnarlySpec(301)).value();
  PcmOptions options;
  options.clustering.cluster_size = 64;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  ASSERT_TRUE(original.SaveIndex(kPath).ok());

  PcmMatcher loaded(options);
  ASSERT_TRUE(
      loaded.LoadIndex(workload.subscriptions, kPath).ok());
  EXPECT_EQ(loaded.clusters().size(), original.clusters().size());
  EXPECT_DOUBLE_EQ(loaded.CompressionRatio(), original.CompressionRatio());

  std::vector<std::vector<SubscriptionId>> expected;
  std::vector<std::vector<SubscriptionId>> actual;
  original.MatchBatch(workload.events, &expected);
  loaded.MatchBatch(workload.events, &actual);
  EXPECT_EQ(actual, expected);
}

TEST_F(SerializationTest, LoadedIndexAgreesWithScan) {
  const auto workload = workload::Generate(GnarlySpec(302)).value();
  PcmOptions options;
  {
    PcmMatcher original(options);
    original.Build(workload.subscriptions);
    ASSERT_TRUE(original.SaveIndex(kPath).ok());
  }
  PcmMatcher loaded(options);
  ASSERT_TRUE(loaded.LoadIndex(workload.subscriptions, kPath).ok());
  // ExpectAgreesWithScan calls Build; compare manually instead.
  index::ScanMatcher scan;
  const auto expected = RunMatcher(scan, workload);
  std::vector<SubscriptionId> matches;
  for (size_t i = 0; i < workload.events.size(); ++i) {
    loaded.Match(workload.events[i], &matches);
    EXPECT_EQ(matches, expected[i]) << "event " << i;
  }
}

TEST_F(SerializationTest, LoadedIndexSupportsIncrementalUpdates) {
  const auto workload = workload::Generate(GnarlySpec(303)).value();
  PcmOptions options;
  {
    PcmMatcher original(options);
    original.Build(workload.subscriptions);
    ASSERT_TRUE(original.SaveIndex(kPath).ok());
  }
  PcmMatcher loaded(options);
  ASSERT_TRUE(loaded.LoadIndex(workload.subscriptions, kPath).ok());
  const auto fresh_id =
      static_cast<SubscriptionId>(workload.subscriptions.size()) + 7;
  loaded.AddIncremental(BooleanExpression::Create(
      fresh_id, {Predicate(0, Op::kGe, workload.spec.domain_min)}).value());
  std::vector<SubscriptionId> matches;
  loaded.Match(Event::Create({{0, workload.spec.domain_max}}).value(),
               &matches);
  EXPECT_TRUE(std::find(matches.begin(), matches.end(), fresh_id) !=
              matches.end());
}

TEST_F(SerializationTest, SaveRequiresBuildAndCleanDelta) {
  PcmOptions options;
  PcmMatcher unbuilt(options);
  EXPECT_EQ(unbuilt.SaveIndex(kPath).code(),
            StatusCode::kFailedPrecondition);

  const auto workload = workload::Generate(GnarlySpec(304)).value();
  PcmMatcher dirty(options);
  dirty.Build(workload.subscriptions);
  dirty.AddIncremental(BooleanExpression::Create(
      static_cast<SubscriptionId>(workload.subscriptions.size()) + 1,
      {Predicate(0, Op::kEq, 1)}).value());
  EXPECT_EQ(dirty.SaveIndex(kPath).code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerializationTest, MismatchedSubscriptionSetRejected) {
  const auto workload = workload::Generate(GnarlySpec(305)).value();
  PcmOptions options;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  ASSERT_TRUE(original.SaveIndex(kPath).ok());

  // Fewer subscriptions than the index covers.
  std::vector<BooleanExpression> truncated(
      workload.subscriptions.begin(),
      workload.subscriptions.begin() +
          static_cast<long>(workload.subscriptions.size() / 2));
  PcmMatcher loaded(options);
  const Status status = loaded.LoadIndex(truncated, kPath);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(SerializationTest, WrongMagicRejected) {
  {
    std::ofstream out(kPath, std::ios::binary);
    out << "definitely not an index file";
  }
  const auto workload = workload::Generate(GnarlySpec(306)).value();
  PcmMatcher loaded{PcmOptions{}};
  EXPECT_EQ(loaded.LoadIndex(workload.subscriptions, kPath).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, CorruptedImagesRejectedNotCrashed) {
  const auto workload = workload::Generate(GnarlySpec(307)).value();
  PcmOptions options;
  options.clustering.cluster_size = 32;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  ASSERT_TRUE(original.SaveIndex(kPath).ok());

  std::string bytes;
  {
    std::ifstream in(kPath, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  Rng rng(308);
  for (int trial = 0; trial < 100; ++trial) {
    std::string corrupted = bytes;
    for (int i = 0; i < 4; ++i) {
      corrupted[rng.Uniform(corrupted.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    {
      std::ofstream out(kPath, std::ios::binary);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    PcmMatcher loaded(options);
    const Status status = loaded.LoadIndex(workload.subscriptions, kPath);
    if (status.ok()) {
      // A flip that survived validation must still produce sane behavior;
      // run one match to shake out memory errors under sanitizers.
      std::vector<SubscriptionId> matches;
      loaded.Match(workload.events.front(), &matches);
    }
  }
}

std::string ReadAll(const char* path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST_F(SerializationTest, StreamAndPathImagesAreIdentical) {
  // The checkpoint path (src/store) embeds index images through the stream
  // form; it must be byte-identical to what SaveIndex(path) persists.
  const auto workload = workload::Generate(GnarlySpec(309)).value();
  PcmOptions options;
  options.clustering.cluster_size = 64;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  ASSERT_TRUE(original.SaveIndex(kPath).ok());
  std::ostringstream stream_image;
  ASSERT_TRUE(original.SaveIndex(stream_image).ok());
  EXPECT_EQ(stream_image.str(), ReadAll(kPath));

  PcmMatcher loaded(options);
  std::istringstream in(stream_image.str());
  ASSERT_TRUE(loaded.LoadIndex(workload.subscriptions, in).ok());
  std::vector<std::vector<SubscriptionId>> expected;
  std::vector<std::vector<SubscriptionId>> actual;
  original.MatchBatch(workload.events, &expected);
  loaded.MatchBatch(workload.events, &actual);
  EXPECT_EQ(actual, expected);
}

TEST_F(SerializationTest, SaveSurvivesInjectedShortWrites) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "needs -DAPCM_FAILPOINTS=ON";
  failpoint::DisarmAll();
  const auto workload = workload::Generate(GnarlySpec(310)).value();
  PcmOptions options;
  options.clustering.cluster_size = 32;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  // Every write(2) is clamped to 7 bytes; WriteAll must keep retrying with
  // the remainder until the full image lands.
  ASSERT_TRUE(
      failpoint::Configure("store.file.write.short", "10000*return(7)").ok());
  const Status saved = original.SaveIndex(kPath);
  failpoint::DisarmAll();
  ASSERT_TRUE(saved.ok()) << saved.message();
  EXPECT_GT(failpoint::Hits("store.file.write.short"), 1u);

  PcmMatcher loaded(options);
  ASSERT_TRUE(loaded.LoadIndex(workload.subscriptions, kPath).ok());
  std::vector<std::vector<SubscriptionId>> expected;
  std::vector<std::vector<SubscriptionId>> actual;
  original.MatchBatch(workload.events, &expected);
  loaded.MatchBatch(workload.events, &actual);
  EXPECT_EQ(actual, expected);
}

TEST_F(SerializationTest, FailedSaveLeavesTheOldIndexIntact) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "needs -DAPCM_FAILPOINTS=ON";
  failpoint::DisarmAll();
  const auto workload = workload::Generate(GnarlySpec(311)).value();
  PcmOptions options;
  options.clustering.cluster_size = 32;
  PcmMatcher original(options);
  original.Build(workload.subscriptions);
  ASSERT_TRUE(original.SaveIndex(kPath).ok());
  const std::string before = ReadAll(kPath);

  for (const char* seam :
       {"store.file.write.error", "store.file.fsync.error"}) {
    SCOPED_TRACE(seam);
    ASSERT_TRUE(failpoint::Configure(seam, "1*return").ok());
    EXPECT_FALSE(original.SaveIndex(kPath).ok());
    failpoint::DisarmAll();
    // Atomic replace: the old image is untouched and no temp file leaks.
    EXPECT_EQ(ReadAll(kPath), before);
    std::ifstream tmp(std::string(kPath) + ".tmp");
    EXPECT_FALSE(tmp.good());
    PcmMatcher loaded(options);
    EXPECT_TRUE(loaded.LoadIndex(workload.subscriptions, kPath).ok());
  }
}

TEST_F(SerializationTest, EmptyIndexRoundTrips) {
  PcmOptions options;
  PcmMatcher original(options);
  original.Build({});
  ASSERT_TRUE(original.SaveIndex(kPath).ok());
  PcmMatcher loaded(options);
  ASSERT_TRUE(loaded.LoadIndex({}, kPath).ok());
  std::vector<SubscriptionId> matches;
  loaded.Match(Event::Create({{0, 1}}).value(), &matches);
  EXPECT_TRUE(matches.empty());
}

}  // namespace
}  // namespace apcm::core
