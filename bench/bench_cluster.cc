// C3: cluster serving tier — router fan-out/merge overhead and scaling.
// The same remote-ingestion workload as bench_net (C2), but pushed through
// a ClusterRouter over N in-process backend EventServers: every publish
// fans out to all N backends and is acknowledged only after each one
// durably admitted it, so the ACK round trip measures the slowest backend
// plus the router's merge bookkeeping. A direct single-EventServer row
// (no router) pins the tier's overhead; the cluster=1 row isolates the
// extra hop, and larger N shows how fan-out costs grow with the topology.
//
// Subscriptions are partitioned across backends by consistent hash, so the
// per-backend matching load shrinks as N grows while the fan-out cost
// rises — the crossover is exactly what this bench charts.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/base/macros.h"
#include "src/base/rng.h"
#include "src/be/parser.h"
#include "src/cluster/router.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace apcm::bench {
namespace {

constexpr int kAttributes = 16;
constexpr int kSubscriptions = 1000;
constexpr int kEventPool = 2048;
constexpr int64_t kDomain = 1000;
constexpr int kPublishers = 4;

/// Same synthetic load as bench_net: one window predicate per subscription,
/// cycling the primary attribute.
std::vector<std::string> MakeSubscriptionTexts(Rng& rng) {
  std::vector<std::string> texts;
  texts.reserve(kSubscriptions);
  for (int i = 0; i < kSubscriptions; ++i) {
    const int attr = i % kAttributes;
    const int64_t lo = rng.UniformInt(0, kDomain - 51);
    texts.push_back("a" + std::to_string(attr) + " between [" +
                    std::to_string(lo) + ", " + std::to_string(lo + 50) + "]");
  }
  return texts;
}

std::vector<Event> MakeEventPool(Parser& parser, Rng& rng) {
  std::vector<Event> events;
  events.reserve(kEventPool);
  for (int i = 0; i < kEventPool; ++i) {
    std::string text;
    for (int attr = 0; attr < kAttributes; ++attr) {
      if (!rng.Bernoulli(0.5)) continue;
      if (!text.empty()) text += ", ";
      text += "a" + std::to_string(attr) + " = " +
              std::to_string(rng.UniformInt(0, kDomain - 1));
    }
    if (text.empty()) text = "a0 = 0";
    events.push_back(parser.ParseEvent(text).value());
  }
  return events;
}

/// Backends must share one attribute schema (each parses only its own
/// partitions' subscription text — see EventServerOptions::attributes).
net::EventServerOptions BackendOptions() {
  net::EventServerOptions options;
  options.engine.batch_size = 256;
  for (int attr = 0; attr < kAttributes; ++attr) {
    options.attributes.push_back("a" + std::to_string(attr));
  }
  return options;
}

struct ClusterResult {
  double events_per_second = 0;
  uint64_t events_acked = 0;
  uint64_t matches = 0;
  Histogram publish_latency_ns;
};

/// Runs the publisher fleet against `port` (a router or a bare server) and
/// drains the subscriber to the progress watermark, so every owed MATCH is
/// counted without sleeps.
ClusterResult RunLoad(int port, const std::vector<std::string>& subs,
                      const std::vector<Event>& events,
                      double budget_seconds) {
  net::Client subscriber;
  APCM_CHECK(subscriber.Connect("127.0.0.1", port).ok());
  APCM_CHECK(subscriber.Follow().ok());
  for (size_t i = 0; i < subs.size(); ++i) {
    APCM_CHECK(subscriber.Subscribe(i, subs[i]).ok());
  }

  std::atomic<uint64_t> matches{0};
  std::atomic<uint64_t> total{0};  // set once the fleet is done
  std::thread drainer([&] {
    uint64_t watermark = 0;
    bool alive = true;
    while (alive) {
      auto match = subscriber.PollMatch(/*timeout_ms=*/5);
      if (!match.ok()) break;
      if (match.value().has_value()) {
        matches.fetch_add(match.value()->sub_ids.size(),
                          std::memory_order_relaxed);
      }
      // Exhaust the queued watermarks (one PROGRESS per event) in a burst;
      // popping one per outer pass would drain far slower than publish.
      while (true) {
        auto progress = subscriber.PollProgress(/*timeout_ms=*/0);
        if (!progress.ok()) {
          alive = false;
          break;
        }
        if (!progress.value().has_value()) break;
        watermark = *progress.value() + 1;
      }
      const uint64_t goal = total.load(std::memory_order_acquire);
      if (goal > 0 && watermark >= goal) break;
    }
  });

  std::vector<Histogram> latencies(kPublishers);
  std::vector<uint64_t> acked(kPublishers, 0);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(budget_seconds);
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      net::Client publisher;
      APCM_CHECK(publisher.Connect("127.0.0.1", port).ok());
      size_t next = static_cast<size_t>(p);
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        auto id = publisher.Publish(events[next % events.size()]);
        APCM_CHECK(id.ok());
        latencies[p].Record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        ++acked[p];
        ++next;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ClusterResult result;
  for (int p = 0; p < kPublishers; ++p) {
    result.events_acked += acked[p];
    result.publish_latency_ns.Merge(latencies[p]);
  }
  total.store(result.events_acked, std::memory_order_release);
  drainer.join();
  result.events_per_second = result.events_acked / seconds;
  result.matches = matches.load();
  return result;
}

void Run(BenchJsonWriter& json) {
  std::printf("C3: cluster serving — router fan-out over N backends\n");
  std::printf(
      "    %d subscriptions, %d publishers, %.1fs per config\n\n",
      kSubscriptions, kPublishers, TimeBudgetSeconds());

  Rng rng(20260808);
  const std::vector<std::string> subs = MakeSubscriptionTexts(rng);
  // Local catalog pinned to the same schema the backends declare, so the
  // binary attribute ids in published events line up with the servers'.
  Catalog catalog;
  for (int attr = 0; attr < kAttributes; ++attr) {
    catalog.GetOrAddAttribute("a" + std::to_string(attr));
  }
  Parser parser(&catalog);
  const std::vector<Event> events = MakeEventPool(parser, rng);

  TablePrinter table({"topology", "events/s", "ack p50 us", "ack p99 us",
                      "events", "matches"});
  auto report = [&](const std::string& label, const ClusterResult& result) {
    const double p50_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.5));
    const double p95_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.95));
    const double p99_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.99));
    table.AddRow({label, Rate(result.events_per_second),
                  Fixed(p50_ns / 1e3, 1), Fixed(p99_ns / 1e3, 1),
                  std::to_string(result.events_acked),
                  std::to_string(result.matches)});
    json.Add({.bench = "bench_cluster",
              .config = label,
              .throughput = result.events_per_second,
              .p50_ns = p50_ns,
              .p95_ns = p95_ns,
              .p99_ns = p99_ns,
              .max_ns =
                  static_cast<double>(result.publish_latency_ns.max()),
              .metrics = {{"events_acked",
                           static_cast<double>(result.events_acked)},
                          {"matches",
                           static_cast<double>(result.matches)}}});
  };

  // Baseline: the same load straight at one EventServer, no router.
  {
    net::EventServer server(BackendOptions());
    APCM_CHECK(server.Start().ok());
    report("direct", RunLoad(server.port(), subs, events,
                             TimeBudgetSeconds()));
    server.Stop();
  }

  const std::vector<int> sizes =
      FullScale() ? std::vector<int>{1, 2, 3, 5} : std::vector<int>{1, 2, 3};
  for (int n : sizes) {
    std::vector<std::unique_ptr<net::EventServer>> backends;
    cluster::ClusterOptions options;
    for (int i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<net::EventServer>(BackendOptions()));
      APCM_CHECK(backends.back()->Start().ok());
      options.backends.push_back({"127.0.0.1", backends.back()->port()});
    }
    cluster::ClusterRouter router(options);
    APCM_CHECK(router.Start().ok());
    report("cluster=" + std::to_string(n),
           RunLoad(router.port(), subs, events, TimeBudgetSeconds()));
    router.Stop();
    for (auto& backend : backends) backend->Stop();
  }

  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: a cluster ACK completes only after every backend admitted "
      "the event, so the round trip is a max over N admissions; the "
      "cluster=1 row vs direct is the router's own hop + merge cost.\n");
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
