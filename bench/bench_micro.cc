// M — microbenchmarks (google-benchmark) for the hot kernels: bitmap
// word operations, predicate evaluation, compressed-cluster matching, and
// cluster construction. These are the unit costs behind the macro numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/base/rng.h"
#include "src/bitmap/bitmap.h"
#include "src/core/cluster.h"
#include "src/core/cluster_builder.h"
#include "src/workload/generator.h"

namespace apcm {
namespace {

void BM_AndNotWords(benchmark::State& state) {
  const auto words = static_cast<uint64_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~0ULL);
  std::vector<uint64_t> src(words, 0x5555555555555555ULL);
  for (auto _ : state) {
    AndNotWords(dst.data(), src.data(), words);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words) * 8);
}
BENCHMARK(BM_AndNotWords)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_PopCountWords(benchmark::State& state) {
  const auto words = static_cast<uint64_t>(state.range(0));
  std::vector<uint64_t> data(words, 0xDEADBEEFDEADBEEFULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PopCountWords(data.data(), words));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words) * 8);
}
BENCHMARK(BM_PopCountWords)->Arg(16)->Arg(256)->Arg(4096);

void BM_ForEachSetBit(benchmark::State& state) {
  const uint64_t words = 256;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(1);
  std::vector<uint64_t> data(words, 0);
  for (uint64_t i = 0; i < words * 64; ++i) {
    if (rng.Bernoulli(density)) data[i / 64] |= 1ULL << (i % 64);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    ForEachSetBit(data.data(), words, [&](uint64_t bit) { sum += bit; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ForEachSetBit)->Arg(1)->Arg(10)->Arg(50);

void BM_PredicateEval(benchmark::State& state) {
  const Predicate between(0, 100, 5'000);
  const Predicate in_set(0, std::vector<Value>{3, 17, 99, 256, 1024});
  Rng rng(2);
  std::vector<Value> values;
  for (int i = 0; i < 1024; ++i) values.push_back(rng.UniformInt(0, 10'000));
  const Predicate& pred = state.range(0) == 0 ? between : in_set;
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.Eval(values[cursor]));
    cursor = (cursor + 1) % values.size();
  }
}
BENCHMARK(BM_PredicateEval)->Arg(0)->Arg(1);

const workload::Workload& MicroWorkload() {
  static const workload::Workload* workload = [] {
    workload::WorkloadSpec spec;
    spec.seed = 77;
    spec.num_subscriptions = 4'096;
    spec.num_events = 512;
    spec.num_attributes = 200;
    spec.domain_max = 10'000;
    spec.min_predicates = 5;
    spec.max_predicates = 15;
    spec.min_event_attrs = 15;
    spec.max_event_attrs = 35;
    return new workload::Workload(workload::Generate(spec).value());
  }();
  return *workload;
}

void BM_ClusterMatchCompressed(benchmark::State& state) {
  const auto& workload = MicroWorkload();
  core::ClusterBuilderOptions options;
  options.cluster_size = static_cast<uint32_t>(state.range(0));
  const auto clusters =
      core::BuildClusters(workload.subscriptions, options);
  std::vector<uint64_t> result(clusters.front().words());
  MatcherStats stats;
  size_t cursor = 0;
  for (auto _ : state) {
    for (const auto& cluster : clusters) {
      result.resize(cluster.words());
      benchmark::DoNotOptimize(cluster.MatchCompressed(
          workload.events[cursor], result.data(), &stats));
    }
    cursor = (cursor + 1) % workload.events.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.subscriptions.size()));
}
BENCHMARK(BM_ClusterMatchCompressed)->Arg(64)->Arg(512)->Arg(4096);

void BM_ClusterMatchLazy(benchmark::State& state) {
  const auto& workload = MicroWorkload();
  core::ClusterBuilderOptions options;
  options.cluster_size = 4'096;
  const auto clusters =
      core::BuildClusters(workload.subscriptions, options);
  std::vector<uint64_t> result(clusters.front().words());
  MatcherStats stats;
  size_t cursor = 0;
  for (auto _ : state) {
    for (const auto& cluster : clusters) {
      benchmark::DoNotOptimize(
          cluster.MatchLazy(workload.events[cursor], result.data(), &stats));
    }
    cursor = (cursor + 1) % workload.events.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.subscriptions.size()));
}
BENCHMARK(BM_ClusterMatchLazy);

void BM_ClusterBuild(benchmark::State& state) {
  const auto& workload = MicroWorkload();
  core::ClusterBuilderOptions options;
  options.cluster_size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BuildClusters(workload.subscriptions, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.subscriptions.size()));
}
BENCHMARK(BM_ClusterBuild)->Arg(256)->Arg(4096);

void BM_ExpressionMatch(benchmark::State& state) {
  const auto& workload = MicroWorkload();
  size_t sub_cursor = 0;
  size_t event_cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.subscriptions[sub_cursor].Matches(
        workload.events[event_cursor]));
    sub_cursor = (sub_cursor + 1) % workload.subscriptions.size();
    if (sub_cursor == 0) {
      event_cursor = (event_cursor + 1) % workload.events.size();
    }
  }
}
BENCHMARK(BM_ExpressionMatch);

}  // namespace
}  // namespace apcm

BENCHMARK_MAIN();
