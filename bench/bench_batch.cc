// F10 — effect of the batch size on compressed matching. Batching keeps a
// cluster's dictionary and masks cache-resident while the whole batch
// streams through it; throughput should climb steeply from batch=1 and
// saturate once the per-cluster fixed costs are fully amortized.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 500'000 : 100'000;
  spec.num_events = 4'096;
  // A bursty stream: batching then amortizes per-cluster state *and* lets
  // equal-signature neighbors share the coverage phase.
  spec.event_locality = 0.9;
  PrintBanner("F10", "PCM throughput vs batch size (bursty stream)", spec);
  const workload::Workload workload = workload::Generate(spec).value();

  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  core::PcmMatcher pcm(options);
  pcm.Build(workload.subscriptions);

  TablePrinter table({"batch size", "events/s", "speedup vs batch=1"});
  double base_rate = 0;
  for (uint32_t batch : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const ThroughputResult result =
        MeasureThroughputPrebuilt(pcm, workload, batch);
    if (batch == 1) base_rate = result.events_per_second;
    table.AddRow({std::to_string(batch), Rate(result.events_per_second),
                  Fixed(result.events_per_second / base_rate, 2) + "x"});
    std::printf("batch=%u done\n", batch);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: steep gains from small batches, saturating around "
      "hundreds of events per batch; batch=1 pays the full per-cluster "
      "traversal cost per event.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
