#ifndef APCM_BENCH_BENCH_UTIL_H_
#define APCM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/status.h"
#include "src/engine/matcher_factory.h"
#include "src/index/matcher.h"
#include "src/workload/generator.h"

namespace apcm::bench {

/// True when APCM_BENCH_FULL=1: run paper-scale workloads (minutes to hours)
/// instead of the scaled-down defaults (seconds). EXPERIMENTS.md records
/// results for both.
bool FullScale();

/// Per-matcher wall-clock budget in seconds (APCM_BENCH_SECONDS, default 2.0
/// scaled / 10.0 full). Slow matchers process as many events as fit in the
/// budget; throughput is still well-defined.
double TimeBudgetSeconds();

/// The evaluation's default workload (BEGen-style defaults reconstructed
/// from the BE-Tree lineage): 400 dimensions, domain [0, 10000], 5-15
/// predicates, Zipf(1) attribute popularity, 50% seeded events.
workload::WorkloadSpec DefaultSpec();

/// Result of one throughput measurement.
struct ThroughputResult {
  double events_per_second = 0;
  double matches_per_event = 0;
  uint64_t events_processed = 0;
  double seconds = 0;
  double build_seconds = 0;
  uint64_t memory_bytes = 0;
  MatcherStats stats;  ///< matcher counter deltas for the measured window
  /// Wall time per MatchBatch call in nanoseconds — the p50/p99 that the
  /// machine-readable results report.
  Histogram batch_latency_ns;
};

/// Builds `matcher` over the workload's subscriptions, then streams the
/// workload's events through MatchBatch in batches of `batch_size`, cycling
/// the event list until the time budget expires (at least one full batch).
ThroughputResult MeasureThroughput(Matcher& matcher,
                                   const workload::Workload& workload,
                                   uint32_t batch_size);

/// Like MeasureThroughput but the matcher is already built (for sweeps that
/// reuse one index).
ThroughputResult MeasureThroughputPrebuilt(Matcher& matcher,
                                           const workload::Workload& workload,
                                           uint32_t batch_size);

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Prints header, separator, and all rows to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12,345" / "1.23M" style formatting helpers for table cells.
std::string Rate(double events_per_second);
std::string Fixed(double value, int decimals);

/// Prints the experiment banner: id, title, and the workload description.
void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const workload::WorkloadSpec& spec);

/// The standard matcher lineup of the comparison benchmarks.
struct Contender {
  engine::MatcherKind kind;
  std::string label;
  int threads = 1;  ///< PCM kinds only
};

/// Baselines + contributions at 1 thread (the honest lineup for this
/// single-CPU host; N-core numbers come from bench_threads' work model).
std::vector<Contender> DefaultContenders();

/// Instantiates a contender for the given workload spec.
std::unique_ptr<Matcher> MakeContender(const Contender& contender,
                                       const workload::WorkloadSpec& spec);

/// Machine-readable benchmark output, enabled by `--json <path>` on a bench
/// binary's command line. Each Add() buffers one result record; Finish()
/// writes the whole run as a JSON array of
///   {"bench": ..., "config": ..., "throughput": ..., "p50": ..., "p95": ...,
///    "p99": ..., "max": ..., "metrics": {...}}
/// so CI can diff runs without scraping the human tables. A writer
/// constructed without a path swallows records and writes nothing.
class BenchJsonWriter {
 public:
  /// Parses `--json <path>` out of argv. Any other argument is an
  /// InvalidArgument — the bench binaries take no other flags, and silently
  /// ignoring a typo like `--jsonn` would drop the baseline write the CI
  /// perf gate depends on.
  static StatusOr<BenchJsonWriter> Parse(int argc, char** argv);

  /// Parse, but exits with status 2 (and a usage line on stderr) on bad
  /// arguments — the main() wrapper.
  static BenchJsonWriter FromArgs(int argc, char** argv);

  BenchJsonWriter() = default;
  explicit BenchJsonWriter(std::string path) : path_(std::move(path)) {}

  struct Record {
    std::string bench;   ///< binary name, e.g. "bench_headline"
    std::string config;  ///< row label, e.g. "a-pcm" or "publishers=4"
    double throughput = 0;  ///< events per second
    double p50_ns = 0;      ///< median per-batch latency (0 if not measured)
    double p95_ns = 0;
    double p99_ns = 0;
    double max_ns = 0;      ///< worst single observation in the window
    /// Extra numeric facts (build seconds, memory bytes, matcher counters...).
    std::vector<std::pair<std::string, double>> metrics;
  };

  void Add(Record record);
  /// Adds a record derived from a throughput measurement, folding the
  /// standard fields (latency percentiles, build time, memory, matcher
  /// counters) into place.
  void AddThroughput(const std::string& bench, const std::string& config,
                     const ThroughputResult& result);

  bool enabled() const { return !path_.empty(); }
  /// Writes all buffered records to the path. Returns false and prints to
  /// stderr on I/O failure. No-op (true) when disabled.
  bool Finish() const;

 private:
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace apcm::bench

#endif  // APCM_BENCH_BENCH_UTIL_H_
