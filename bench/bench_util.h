#ifndef APCM_BENCH_BENCH_UTIL_H_
#define APCM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/matcher_factory.h"
#include "src/index/matcher.h"
#include "src/workload/generator.h"

namespace apcm::bench {

/// True when APCM_BENCH_FULL=1: run paper-scale workloads (minutes to hours)
/// instead of the scaled-down defaults (seconds). EXPERIMENTS.md records
/// results for both.
bool FullScale();

/// Per-matcher wall-clock budget in seconds (APCM_BENCH_SECONDS, default 2.0
/// scaled / 10.0 full). Slow matchers process as many events as fit in the
/// budget; throughput is still well-defined.
double TimeBudgetSeconds();

/// The evaluation's default workload (BEGen-style defaults reconstructed
/// from the BE-Tree lineage): 400 dimensions, domain [0, 10000], 5-15
/// predicates, Zipf(1) attribute popularity, 50% seeded events.
workload::WorkloadSpec DefaultSpec();

/// Result of one throughput measurement.
struct ThroughputResult {
  double events_per_second = 0;
  double matches_per_event = 0;
  uint64_t events_processed = 0;
  double seconds = 0;
  double build_seconds = 0;
  uint64_t memory_bytes = 0;
  MatcherStats stats;  ///< matcher counter deltas for the measured window
};

/// Builds `matcher` over the workload's subscriptions, then streams the
/// workload's events through MatchBatch in batches of `batch_size`, cycling
/// the event list until the time budget expires (at least one full batch).
ThroughputResult MeasureThroughput(Matcher& matcher,
                                   const workload::Workload& workload,
                                   uint32_t batch_size);

/// Like MeasureThroughput but the matcher is already built (for sweeps that
/// reuse one index).
ThroughputResult MeasureThroughputPrebuilt(Matcher& matcher,
                                           const workload::Workload& workload,
                                           uint32_t batch_size);

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Prints header, separator, and all rows to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12,345" / "1.23M" style formatting helpers for table cells.
std::string Rate(double events_per_second);
std::string Fixed(double value, int decimals);

/// Prints the experiment banner: id, title, and the workload description.
void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const workload::WorkloadSpec& spec);

/// The standard matcher lineup of the comparison benchmarks.
struct Contender {
  engine::MatcherKind kind;
  std::string label;
  int threads = 1;  ///< PCM kinds only
};

/// Baselines + contributions at 1 thread (the honest lineup for this
/// single-CPU host; N-core numbers come from bench_threads' work model).
std::vector<Contender> DefaultContenders();

/// Instantiates a contender for the given workload spec.
std::unique_ptr<Matcher> MakeContender(const Contender& contender,
                                       const workload::WorkloadSpec& spec);

}  // namespace apcm::bench

#endif  // APCM_BENCH_BENCH_UTIL_H_
