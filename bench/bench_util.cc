#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/engine/exposition.h"

namespace apcm::bench {

bool FullScale() {
  const char* env = std::getenv("APCM_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

double TimeBudgetSeconds() {
  if (const char* env = std::getenv("APCM_BENCH_SECONDS")) {
    const double value = std::atof(env);
    if (value > 0) return value;
  }
  return FullScale() ? 10.0 : 2.0;
}

workload::WorkloadSpec DefaultSpec() {
  workload::WorkloadSpec spec;
  spec.seed = 2014;
  spec.num_subscriptions = FullScale() ? 1'000'000 : 100'000;
  spec.num_events = FullScale() ? 10'000 : 2'000;
  spec.num_attributes = 400;
  spec.domain_min = 0;
  spec.domain_max = 10'000;
  spec.min_predicates = 5;
  spec.max_predicates = 15;
  spec.min_event_attrs = 15;
  spec.max_event_attrs = 35;
  spec.attribute_zipf = 1.0;
  // Real subscription books share canonical operand values (bid floors,
  // thresholds, category ids); value skew plus a 2% operand grid models
  // that, giving the predicate dictionary real duplication to compress.
  spec.value_zipf = 1.0;
  spec.operand_grid = 0.02;
  spec.equality_fraction = 0.25;
  spec.in_fraction = 0.05;
  spec.ne_fraction = 0.02;
  spec.inequality_fraction = 0.18;
  spec.predicate_width = 0.10;
  spec.seeded_event_fraction = 0.5;
  return spec;
}

namespace {

ThroughputResult Measure(Matcher& matcher, const workload::Workload& workload,
                         uint32_t batch_size, double build_seconds) {
  ThroughputResult result;
  result.build_seconds = build_seconds;
  result.memory_bytes = matcher.MemoryBytes();
  const MatcherStats before = matcher.stats();
  const double budget = TimeBudgetSeconds();
  const auto& events = workload.events;
  std::vector<Event> batch;
  std::vector<std::vector<SubscriptionId>> batch_results;
  uint64_t matches = 0;
  size_t cursor = 0;
  WallTimer timer;
  WallTimer batch_timer;
  do {
    batch.clear();
    for (uint32_t i = 0; i < batch_size; ++i) {
      batch.push_back(events[cursor]);
      cursor = (cursor + 1) % events.size();
    }
    batch_timer.Reset();
    matcher.MatchBatch(batch, &batch_results);
    result.batch_latency_ns.Record(batch_timer.ElapsedNanos());
    for (const auto& r : batch_results) matches += r.size();
    result.events_processed += batch.size();
  } while (timer.ElapsedSeconds() < budget);
  result.seconds = timer.ElapsedSeconds();
  result.events_per_second =
      static_cast<double>(result.events_processed) / result.seconds;
  result.matches_per_event = static_cast<double>(matches) /
                             static_cast<double>(result.events_processed);
  const MatcherStats after = matcher.stats();
  result.stats.events_matched = after.events_matched - before.events_matched;
  result.stats.predicate_evals =
      after.predicate_evals - before.predicate_evals;
  result.stats.bitmap_words = after.bitmap_words - before.bitmap_words;
  result.stats.candidates_checked =
      after.candidates_checked - before.candidates_checked;
  result.stats.matches_emitted = after.matches_emitted - before.matches_emitted;
  return result;
}

}  // namespace

ThroughputResult MeasureThroughput(Matcher& matcher,
                                   const workload::Workload& workload,
                                   uint32_t batch_size) {
  WallTimer build_timer;
  matcher.Build(workload.subscriptions);
  return Measure(matcher, workload, batch_size,
                 build_timer.ElapsedSeconds());
}

ThroughputResult MeasureThroughputPrebuilt(Matcher& matcher,
                                           const workload::Workload& workload,
                                           uint32_t batch_size) {
  return Measure(matcher, workload, batch_size, 0);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
    }
    line += "|";
    std::puts(line.c_str());
  };
  print_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|";
  std::puts(sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Rate(double events_per_second) {
  if (events_per_second >= 1e6) {
    return StringPrintf("%.2fM", events_per_second / 1e6);
  }
  if (events_per_second >= 1e3) {
    return StringPrintf("%.1fk", events_per_second / 1e3);
  }
  return StringPrintf("%.2f", events_per_second);
}

std::string Fixed(double value, int decimals) {
  return StringPrintf("%.*f", decimals, value);
}

void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const workload::WorkloadSpec& spec) {
  std::printf("==================================================\n");
  std::printf("%s: %s\n", experiment_id.c_str(), title.c_str());
  std::printf("workload: %s\n", spec.ToString().c_str());
  std::printf("scale: %s (APCM_BENCH_FULL=%d), budget %.1fs/config\n",
              FullScale() ? "FULL (paper-scale)" : "default (scaled-down)",
              FullScale() ? 1 : 0, TimeBudgetSeconds());
  std::printf("==================================================\n");
}

std::vector<Contender> DefaultContenders() {
  using engine::MatcherKind;
  return {
      {MatcherKind::kScan, "scan"},
      {MatcherKind::kCounting, "counting"},
      {MatcherKind::kKIndex, "k-index"},
      {MatcherKind::kBETree, "be-tree"},
      {MatcherKind::kPcmLazy, "pcm-lazy"},
      {MatcherKind::kPcm, "pcm"},
      {MatcherKind::kAPcm, "a-pcm"},
  };
}

std::unique_ptr<Matcher> MakeContender(const Contender& contender,
                                       const workload::WorkloadSpec& spec) {
  engine::MatcherConfig config;
  config.domain = {spec.domain_min, spec.domain_max};
  config.pcm.num_threads = contender.threads;
  return engine::CreateMatcher(contender.kind, config);
}

namespace {

// %.17g round-trips doubles and renders integers without an exponent for
// the magnitudes benchmarks produce; trim to %g-style readability.
std::string JsonNumber(double value) {
  std::string s = StringPrintf("%.10g", value);
  // NaN/inf are not valid JSON; report them as null.
  if (s.find("nan") != std::string::npos ||
      s.find("inf") != std::string::npos) {
    return "null";
  }
  return s;
}

}  // namespace

StatusOr<BenchJsonWriter> BenchJsonWriter::Parse(int argc, char** argv) {
  BenchJsonWriter writer;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--json requires a path argument");
      }
      if (writer.enabled()) {
        return Status::InvalidArgument("--json given more than once");
      }
      writer = BenchJsonWriter(argv[++i]);
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument '") +
                                   argv[i] + "' (only --json <path>)");
  }
  return writer;
}

BenchJsonWriter BenchJsonWriter::FromArgs(int argc, char** argv) {
  auto writer = Parse(argc, argv);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\nusage: %s [--json <path>]\n",
                 writer.status().ToString().c_str(),
                 argc > 0 ? argv[0] : "bench");
    std::exit(2);
  }
  return *std::move(writer);
}

void BenchJsonWriter::Add(Record record) {
  if (!enabled()) return;
  records_.push_back(std::move(record));
}

void BenchJsonWriter::AddThroughput(const std::string& bench,
                                    const std::string& config,
                                    const ThroughputResult& result) {
  if (!enabled()) return;
  Record record;
  record.bench = bench;
  record.config = config;
  record.throughput = result.events_per_second;
  record.p50_ns =
      static_cast<double>(result.batch_latency_ns.ValueAtQuantile(0.5));
  record.p95_ns =
      static_cast<double>(result.batch_latency_ns.ValueAtQuantile(0.95));
  record.p99_ns =
      static_cast<double>(result.batch_latency_ns.ValueAtQuantile(0.99));
  record.max_ns = static_cast<double>(result.batch_latency_ns.max());
  record.metrics = {
      {"events_processed", static_cast<double>(result.events_processed)},
      {"seconds", result.seconds},
      {"build_seconds", result.build_seconds},
      {"memory_bytes", static_cast<double>(result.memory_bytes)},
      {"matches_per_event", result.matches_per_event},
      {"predicate_evals", static_cast<double>(result.stats.predicate_evals)},
      {"candidates_checked",
       static_cast<double>(result.stats.candidates_checked)},
  };
  records_.push_back(std::move(record));
}

bool BenchJsonWriter::Finish() const {
  if (!enabled()) return true;
  std::string out = "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out += "  {\"bench\": \"" + engine::JsonEscape(r.bench) + "\"";
    out += ", \"config\": \"" + engine::JsonEscape(r.config) + "\"";
    out += ", \"throughput\": " + JsonNumber(r.throughput);
    out += ", \"p50\": " + JsonNumber(r.p50_ns);
    out += ", \"p95\": " + JsonNumber(r.p95_ns);
    out += ", \"p99\": " + JsonNumber(r.p99_ns);
    out += ", \"max\": " + JsonNumber(r.max_ns);
    out += ", \"metrics\": {";
    for (size_t m = 0; m < r.metrics.size(); ++m) {
      if (m > 0) out += ", ";
      out += "\"" + engine::JsonEscape(r.metrics[m].first) +
             "\": " + JsonNumber(r.metrics[m].second);
    }
    out += "}}";
    out += i + 1 < records_.size() ? ",\n" : "\n";
  }
  out += "]\n";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
    return false;
  }
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool ok = std::fclose(f) == 0 && wrote;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path_.c_str());
  std::printf("wrote JSON results: %s (%zu records)\n", path_.c_str(),
              records_.size());
  return ok;
}

}  // namespace apcm::bench
