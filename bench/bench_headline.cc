// T2 — headline comparison (reconstructs the paper's abstract claim:
// A-PCM sustains ~233,863 events/s while state-of-the-art sequential
// matching sustains ~36 events/s at millions of Boolean expressions).
//
// Measures every matcher single-threaded on this host, then reports A-PCM on
// N modeled cores via the calibrated multi-core work model (DESIGN.md §4).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"
#include "src/sim/core_model.h"

namespace apcm::bench {
namespace {

void Run(BenchJsonWriter& json) {
  workload::WorkloadSpec spec = DefaultSpec();
  PrintBanner("T2", "headline throughput, all matchers", spec);
  std::printf("generating workload...\n");
  const workload::Workload workload = workload::Generate(spec).value();

  TablePrinter table({"matcher", "build(s)", "memory", "events/s",
                      "matches/ev", "vs scan"});
  double scan_rate = 0;
  double apcm_rate = 0;
  for (const Contender& contender : DefaultContenders()) {
    auto matcher = MakeContender(contender, spec);
    const ThroughputResult result =
        MeasureThroughput(*matcher, workload, /*batch_size=*/256);
    json.AddThroughput("bench_headline", contender.label, result);
    if (contender.label == "scan") scan_rate = result.events_per_second;
    if (contender.label == "a-pcm") apcm_rate = result.events_per_second;
    table.AddRow({contender.label, Fixed(result.build_seconds, 2),
                  FormatBytes(result.memory_bytes),
                  Rate(result.events_per_second),
                  Fixed(result.matches_per_event, 2),
                  scan_rate > 0
                      ? Fixed(result.events_per_second / scan_rate, 1) + "x"
                      : "1.0x"});
    std::printf("  measured %s\n", contender.label.c_str());
  }

  // Modeled multi-core rows for A-PCM (this host has a single CPU; the work
  // model replays the real partitioning arithmetic — see bench_threads).
  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  core::PcmMatcher pcm(options);
  const ThroughputResult one_thread =
      MeasureThroughput(pcm, workload, /*batch_size=*/256);
  sim::MultiCoreModel model;
  model.SetProfile(sim::ProfileClusterWork(pcm, workload.events));
  model.Calibrate(static_cast<double>(workload.events.size()) /
                  one_thread.events_per_second);
  for (int cores : {8, 16, 32}) {
    const double seconds = model.PredictSeconds(cores);
    const double rate = static_cast<double>(workload.events.size()) / seconds;
    BenchJsonWriter::Record modeled;
    modeled.bench = "bench_headline";
    modeled.config = StringPrintf("a-pcm-%d-core-model", cores);
    modeled.throughput = rate;
    modeled.metrics = {{"cores", static_cast<double>(cores)},
                       {"matches_per_event", one_thread.matches_per_event}};
    json.Add(std::move(modeled));
    table.AddRow(
        {StringPrintf("a-pcm (%d-core model)", cores), "-", "-", Rate(rate),
         Fixed(one_thread.matches_per_event, 2),
         scan_rate > 0 ? Fixed(rate / scan_rate, 1) + "x" : "-"});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: sequential floor O(10) ev/s at millions of "
      "expressions; A-PCM 3-4 orders of magnitude above it "
      "(abstract: 36 vs 233,863 ev/s at 5M). a-pcm measured %.0fx scan here.\n",
      scan_rate > 0 ? apcm_rate / scan_rate : 0.0);
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
