// D1 (durability extension) — cost of the write-ahead log: append
// throughput and latency under each fsync policy, checkpoint write cost,
// and recovery speed (snapshot + tail replay vs pure replay). Grounds the
// wal_sync_every guidance in DESIGN §3.12 with numbers.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/engine/engine.h"
#include "src/store/durable_store.h"

namespace apcm::bench {
namespace {

constexpr char kDir[] = "/tmp/apcm_bench_wal";

/// One representative subscription mutation (a 4-predicate conjunction —
/// mid-range for the default workload's 5-15 predicates/sub).
store::WalRecord SampleRecord(uint32_t id) {
  store::WalRecord record;
  record.kind = store::WalRecord::Kind::kAdd;
  record.id = id;
  std::vector<Predicate> conj;
  for (AttributeId attr = 0; attr < 4; ++attr) {
    conj.push_back(Predicate(attr, Op::kGe, static_cast<Value>(id % 1000)));
  }
  record.disjuncts.push_back(std::move(conj));
  return record;
}

struct AppendRun {
  double records_per_second = 0;
  double bytes_per_record = 0;
  double records_per_write = 0;  ///< group-commit batching factor
  Histogram latency_ns;
};

AppendRun MeasureAppends(uint64_t sync_every, uint64_t num_records) {
  std::filesystem::remove_all(kDir);
  store::StoreOptions options;
  options.dir = kDir;
  options.sync_every = sync_every;
  store::RecoveryInfo recovery;
  auto store = store::DurableStore::Open(options, &recovery).value();
  AppendRun run;
  WallTimer total;
  for (uint64_t i = 0; i < num_records; ++i) {
    store::WalRecord record = SampleRecord(static_cast<uint32_t>(i));
    WallTimer timer;
    const Status status = store->Append(&record);
    run.latency_ns.Record(timer.ElapsedNanos());
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.message().c_str());
      std::exit(1);
    }
  }
  const double seconds = total.ElapsedSeconds();
  run.records_per_second =
      seconds > 0 ? static_cast<double>(num_records) / seconds : 0;
  run.bytes_per_record =
      static_cast<double>(store->stats().bytes) /
      static_cast<double>(num_records);
  const uint64_t writes = store->stats().wal_writes;
  run.records_per_write =
      writes > 0 ? static_cast<double>(num_records) /
                       static_cast<double>(writes)
                 : 0;
  return run;
}

void Run(BenchJsonWriter& json) {
  const uint64_t num_records = FullScale() ? 200'000 : 20'000;
  std::printf(
      "=== D1: WAL append / checkpoint / recovery cost "
      "(%s records per policy) ===\n\n",
      FormatWithCommas(num_records).c_str());

  // Append throughput per fsync policy. sync_every=0 never fsyncs (the
  // upper bound the group policies approach as the window grows). Group
  // policies (N > 1) also batch frames into one write per window —
  // records/write is the measured batching factor.
  TablePrinter appends({"wal_sync_every", "records/s", "p50 us", "p99 us",
                       "bytes/record", "records/write"});
  for (const uint64_t sync_every : {uint64_t{1}, uint64_t{8}, uint64_t{64},
                                    uint64_t{0}}) {
    const AppendRun run = MeasureAppends(sync_every, num_records);
    const std::string label =
        sync_every == 0 ? "0 (no fsync)" : FormatWithCommas(sync_every);
    appends.AddRow(
        {label, Rate(run.records_per_second),
         Fixed(static_cast<double>(run.latency_ns.ValueAtQuantile(0.5)) / 1e3,
               1),
         Fixed(static_cast<double>(run.latency_ns.ValueAtQuantile(0.99)) / 1e3,
               1),
         Fixed(run.bytes_per_record, 1), Fixed(run.records_per_write, 1)});
    BenchJsonWriter::Record record;
    record.bench = "bench_wal";
    record.config = "append sync_every=" + std::to_string(sync_every);
    record.throughput = run.records_per_second;
    record.p50_ns = static_cast<double>(run.latency_ns.ValueAtQuantile(0.5));
    record.p99_ns = static_cast<double>(run.latency_ns.ValueAtQuantile(0.99));
    record.max_ns = static_cast<double>(run.latency_ns.max());
    record.metrics.push_back({"bytes_per_record", run.bytes_per_record});
    record.metrics.push_back({"records_per_write", run.records_per_write});
    json.Add(std::move(record));
  }
  appends.Print();

  // Engine-level: checkpoint cost and the two recovery paths over a real
  // subscription set (index image present vs WAL-only replay).
  const uint32_t num_subs = FullScale() ? 100'000 : 20'000;
  std::filesystem::remove_all(kDir);
  engine::EngineOptions options;
  options.data_dir = kDir;
  options.wal_sync_every = 0;  // isolate checkpoint/recovery cost from fsync
  options.checkpoint_every_ops = 0;
  options.admin_port = -1;
  auto spec = DefaultSpec();
  spec.num_subscriptions = num_subs;
  spec.num_events = 1;
  const auto subs = workload::GenerateSubscriptions(spec).value();

  TablePrinter lifecycle({"stage", "seconds", "rate"});
  auto add_json = [&json](const std::string& config, double rate) {
    BenchJsonWriter::Record record;
    record.bench = "bench_wal";
    record.config = config;
    record.throughput = rate;
    json.Add(std::move(record));
  };
  {
    engine::StreamEngine engine(options, [](uint64_t, const auto&) {});
    WallTimer timer;
    for (const auto& sub : subs) {
      std::vector<Predicate> conj(sub.predicates());
      if (!engine.AddSubscription(std::move(conj)).ok()) std::exit(1);
    }
    const double add_seconds = timer.ElapsedSeconds();
    lifecycle.AddRow({"durable adds", Fixed(add_seconds, 3),
                      Rate(static_cast<double>(num_subs) / add_seconds)});
    add_json("durable adds", static_cast<double>(num_subs) / add_seconds);
  }
  {
    // No checkpoint exists yet, so this restart replays the whole log...
    WallTimer timer;
    engine::StreamEngine engine(options, [](uint64_t, const auto&) {});
    const double seconds = timer.ElapsedSeconds();
    lifecycle.AddRow({"recovery (replay only)", Fixed(seconds, 3),
                      Rate(static_cast<double>(num_subs) / seconds)});
    add_json("recovery replay", static_cast<double>(num_subs) / seconds);
    if (engine.num_subscriptions() != num_subs) std::exit(1);

    // ...and then persists a checkpoint for the snapshot-recovery pass.
    timer.Reset();
    if (!engine.Checkpoint().ok()) std::exit(1);
    const double checkpoint_seconds = timer.ElapsedSeconds();
    lifecycle.AddRow(
        {"checkpoint write", Fixed(checkpoint_seconds, 3),
         Rate(static_cast<double>(num_subs) / checkpoint_seconds)});
    add_json("checkpoint write",
             static_cast<double>(num_subs) / checkpoint_seconds);
  }
  {
    WallTimer timer;
    engine::StreamEngine engine(options, [](uint64_t, const auto&) {});
    const double seconds = timer.ElapsedSeconds();
    lifecycle.AddRow({"recovery (snapshot)", Fixed(seconds, 3),
                      Rate(static_cast<double>(num_subs) / seconds)});
    add_json("recovery snapshot", static_cast<double>(num_subs) / seconds);
    if (engine.num_subscriptions() != num_subs) std::exit(1);
  }
  std::printf("\n");
  lifecycle.Print();
  std::printf(
      "\nexpected shape: fsync-per-record is disk-bound (ms-scale p99); "
      "group sync amortizes it away within a small window. Snapshot "
      "recovery beats pure replay once the log outgrows the index image "
      "(the gap is modest here because replay defers index construction "
      "to the first publish).\n");
  std::filesystem::remove_all(kDir);
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
