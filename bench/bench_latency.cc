// F13 — per-event matching latency percentiles for every matcher. Batch
// matchers are measured at their operating batch size with per-batch time
// divided across the batch; single-event baselines are timed per event.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 200'000 : 20'000;
  spec.num_events = 2'000;
  PrintBanner("F13", "per-event latency percentiles", spec);
  const workload::Workload workload = workload::Generate(spec).value();

  TablePrinter table({"matcher", "mean(us)", "p50(us)", "p90(us)", "p99(us)",
                      "max(us)"});
  for (const Contender& contender : DefaultContenders()) {
    auto matcher = MakeContender(contender, spec);
    matcher->Build(workload.subscriptions);
    Histogram latency;
    std::vector<SubscriptionId> matches;
    std::vector<std::vector<SubscriptionId>> batch_results;
    const bool batched = contender.label.find("pcm") != std::string::npos;
    const double budget = TimeBudgetSeconds();
    WallTimer total;
    size_t cursor = 0;
    while (total.ElapsedSeconds() < budget) {
      if (batched) {
        std::vector<Event> batch;
        for (int i = 0; i < 256; ++i) {
          batch.push_back(workload.events[cursor]);
          cursor = (cursor + 1) % workload.events.size();
        }
        WallTimer timer;
        matcher->MatchBatch(batch, &batch_results);
        latency.Record(timer.ElapsedNanos() / 256);
      } else {
        WallTimer timer;
        matcher->Match(workload.events[cursor], &matches);
        latency.Record(timer.ElapsedNanos());
        cursor = (cursor + 1) % workload.events.size();
      }
    }
    auto us = [](int64_t ns) { return Fixed(static_cast<double>(ns) / 1e3, 1); };
    table.AddRow({contender.label, us(static_cast<int64_t>(latency.Mean())),
                  us(latency.ValueAtQuantile(0.50)),
                  us(latency.ValueAtQuantile(0.90)),
                  us(latency.ValueAtQuantile(0.99)), us(latency.max())});
    std::printf("%s done\n", contender.label.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: sub-millisecond amortized per-event latency for the "
      "compressed family even while the sequential baselines take "
      "milliseconds-to-seconds per event; tails track event size and match "
      "count.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
