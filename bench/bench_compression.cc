// T3 — compression effectiveness: ratio of total to distinct predicates and
// index memory, across cluster sizes and grouping strategies, plus the
// sparse-mask threshold ablation. This is the structural half of PCM's win.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/core/cluster_builder.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 1'000'000 : 200'000;
  spec.num_events = 0;
  PrintBanner("T3", "compression ratio and memory footprint", spec);
  const auto subscriptions = workload::GenerateSubscriptions(spec).value();

  uint64_t total_predicates = 0;
  for (const auto& sub : subscriptions) total_predicates += sub.size();
  std::printf("subscriptions=%s, total predicates=%s\n",
              FormatWithCommas(subscriptions.size()).c_str(),
              FormatWithCommas(total_predicates).c_str());

  TablePrinter table({"strategy", "cluster size", "sparse<=", "distinct preds",
                      "ratio", "memory", "build(s)"});
  using core::ClusterStrategy;
  struct Config {
    ClusterStrategy strategy;
    uint32_t cluster_size;
    uint32_t sparse_threshold;
  };
  const Config configs[] = {
      {ClusterStrategy::kPivot, 64, 4},
      {ClusterStrategy::kPivot, 256, 4},
      {ClusterStrategy::kPivot, 1024, 4},
      {ClusterStrategy::kPivot, 4096, 4},
      {ClusterStrategy::kSignature, 1024, 4},
      {ClusterStrategy::kInsertionOrder, 1024, 4},
      {ClusterStrategy::kPivot, 1024, 0},     // dense masks only
      {ClusterStrategy::kPivot, 1024, 1024},  // sparse lists only
  };
  for (const Config& config : configs) {
    core::ClusterBuilderOptions options;
    options.strategy = config.strategy;
    options.cluster_size = config.cluster_size;
    options.cluster_options.sparse_threshold = config.sparse_threshold;
    WallTimer timer;
    const auto clusters = core::BuildClusters(subscriptions, options);
    const double build_seconds = timer.ElapsedSeconds();
    uint64_t distinct = 0;
    uint64_t memory = 0;
    for (const auto& cluster : clusters) {
      distinct += cluster.distinct_predicates();
      memory += cluster.MemoryBytes();
    }
    table.AddRow({core::ClusterStrategyName(config.strategy),
                  std::to_string(config.cluster_size),
                  std::to_string(config.sparse_threshold),
                  FormatWithCommas(distinct),
                  Fixed(static_cast<double>(total_predicates) /
                            static_cast<double>(distinct),
                        2) +
                      "x",
                  FormatBytes(memory), Fixed(build_seconds, 2)});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: larger clusters and similarity grouping raise the "
      "compression ratio; signature grouping beats arbitrary grouping; the "
      "sparse-mask threshold trades bitmap memory for slot lists without "
      "changing the ratio.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
