// F11 — Online Stream Re-ordering. A bursty stream is shuffled (destroying
// locality), then re-ordered with increasing OSR windows. The measurement
// isolates OSR's two payoffs in PCM: absence-phase sharing between
// equal-signature neighbors and cluster-cache locality. Baseline rows show
// the unshuffled (ideal) and shuffled/no-OSR (worst) endpoints.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/core/osr.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

double MeasureOrdered(core::PcmMatcher& pcm, const std::vector<Event>& events,
                      uint32_t batch_size) {
  std::vector<std::vector<SubscriptionId>> results;
  const double budget = TimeBudgetSeconds();
  uint64_t processed = 0;
  WallTimer timer;
  do {
    for (size_t pos = 0; pos < events.size(); pos += batch_size) {
      const size_t end = std::min(events.size(), pos + batch_size);
      std::vector<Event> batch(events.begin() + static_cast<long>(pos),
                               events.begin() + static_cast<long>(end));
      pcm.MatchBatch(batch, &results);
      processed += batch.size();
    }
  } while (timer.ElapsedSeconds() < budget);
  return static_cast<double>(processed) / timer.ElapsedSeconds();
}

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 500'000 : 100'000;
  spec.num_events = 8'192;
  spec.event_locality = 0.9;  // bursty source stream
  PrintBanner("F11", "OSR: window size vs throughput on a shuffled bursty stream",
              spec);
  const workload::Workload workload = workload::Generate(spec).value();

  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  options.share_absence_phase = true;
  core::PcmMatcher pcm(options);
  pcm.Build(workload.subscriptions);

  std::vector<Event> shuffled = workload.events;
  workload::ShuffleEvents(&shuffled, 404);

  TablePrinter table({"stream", "OSR window", "events/s", "vs no-OSR"});
  const uint32_t batch = 256;

  const double no_osr = MeasureOrdered(pcm, shuffled, batch);
  table.AddRow({"shuffled", "0 (off)", Rate(no_osr), "1.00x"});
  std::printf("no-OSR done\n");

  for (uint32_t window : {256u, 1024u, 4096u, 8192u}) {
    core::OsrOptions osr;
    osr.window_size = window;
    const std::vector<Event> reordered =
        core::ApplyOrder(shuffled, core::ReorderStream(shuffled, osr));
    const double rate = MeasureOrdered(pcm, reordered, batch);
    table.AddRow({"shuffled", std::to_string(window), Rate(rate),
                  Fixed(rate / no_osr, 2) + "x"});
    std::printf("window=%u done\n", window);
  }

  const double ideal = MeasureOrdered(pcm, workload.events, batch);
  table.AddRow({"original (bursty)", "-", Rate(ideal),
                Fixed(ideal / no_osr, 2) + "x"});

  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: throughput rises with the OSR window and approaches "
      "the unshuffled stream's rate; the residual gap is re-ordering scope "
      "lost at window boundaries.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
