// C2: remote ingestion throughput. N publisher connections flood a loopback
// EventServer through the wire protocol while one subscriber connection
// drains MATCH frames; we measure aggregate acknowledged events/s and the
// per-publish ACK round-trip latency (each Publish() is a full
// request/response over TCP, so the percentiles bound what a synchronous
// remote producer observes).
//
// The subscription load is synthetic — narrow single-attribute windows over
// a 16-attribute space — sized so matching does real work (~2% selectivity
// per subscription) without the matcher dominating the socket path.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/base/metrics.h"
#include "src/base/macros.h"
#include "src/base/rng.h"
#include "src/be/parser.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace apcm::bench {
namespace {

constexpr int kAttributes = 16;
constexpr int kSubscriptions = 1000;
constexpr int kEventPool = 2048;
constexpr int64_t kDomain = 1000;

/// "a3 between [412, 462]": a window of width 50 over one attribute, so
/// each subscription matches ~5% of the values of an attribute that ~half
/// of the events carry. Cycling the primary attribute guarantees every
/// attribute name is registered by the server in a deterministic order.
std::vector<std::string> MakeSubscriptionTexts(Rng& rng) {
  std::vector<std::string> texts;
  texts.reserve(kSubscriptions);
  for (int i = 0; i < kSubscriptions; ++i) {
    const int attr = i % kAttributes;
    const int64_t lo = rng.UniformInt(0, kDomain - 51);
    texts.push_back("a" + std::to_string(attr) + " between [" +
                    std::to_string(lo) + ", " + std::to_string(lo + 50) + "]");
  }
  return texts;
}

/// Pre-built events carrying ~half of the attributes with uniform values.
/// Parsed through `parser` so the attribute ids match the ones the server
/// assigned while parsing the same subscription texts in the same order.
std::vector<Event> MakeEventPool(Parser& parser, Rng& rng) {
  std::vector<Event> events;
  events.reserve(kEventPool);
  for (int i = 0; i < kEventPool; ++i) {
    std::string text;
    for (int attr = 0; attr < kAttributes; ++attr) {
      if (!rng.Bernoulli(0.5)) continue;
      if (!text.empty()) text += ", ";
      text += "a" + std::to_string(attr) + " = " +
              std::to_string(rng.UniformInt(0, kDomain - 1));
    }
    if (text.empty()) text = "a0 = 0";
    events.push_back(parser.ParseEvent(text).value());
  }
  return events;
}

struct NetResult {
  double events_per_second = 0;
  double seconds = 0;
  uint64_t events_acked = 0;
  uint64_t matches = 0;
  Histogram publish_latency_ns;
};

NetResult RunConfig(int publishers, const std::vector<std::string>& subs,
                    const std::vector<Event>& events, double budget_seconds) {
  net::EventServerOptions options;
  options.engine.batch_size = 256;
  net::EventServer server(std::move(options));
  APCM_CHECK(server.Start().ok());

  net::Client subscriber;
  APCM_CHECK(subscriber.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < subs.size(); ++i) {
    APCM_CHECK(subscriber.Subscribe(i, subs[i]).ok());
  }
  std::atomic<uint64_t> matches{0};
  std::thread drainer([&] {
    while (true) {
      auto match = subscriber.PollMatch(/*timeout_ms=*/20);
      if (!match.ok()) break;  // server closed the connection after Stop()
      if (match.value().has_value()) {
        matches.fetch_add(match.value()->sub_ids.size(),
                          std::memory_order_relaxed);
      }
    }
  });

  std::vector<Histogram> latencies(publishers);
  std::vector<uint64_t> acked(publishers, 0);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(budget_seconds);
  for (int p = 0; p < publishers; ++p) {
    threads.emplace_back([&, p] {
      net::Client publisher;
      APCM_CHECK(publisher.Connect("127.0.0.1", server.port()).ok());
      size_t next = static_cast<size_t>(p);
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        auto id = publisher.Publish(events[next % events.size()]);
        APCM_CHECK(id.ok());
        latencies[p].Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        ++acked[p];
        ++next;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Stop() drains the engine and flushes every MATCH before closing, so the
  // drainer exits only after the last owed notification arrived.
  server.Stop();
  drainer.join();

  NetResult result;
  result.seconds = seconds;
  for (int p = 0; p < publishers; ++p) {
    result.events_acked += acked[p];
    result.publish_latency_ns.Merge(latencies[p]);
  }
  result.events_per_second = result.events_acked / seconds;
  result.matches = matches.load();
  return result;
}

// ---------------------------------------------------------------------------
// C2b: connection scale — the epoll reactor under an idle herd.
//
// N mostly-idle connections sit registered in the reactor's epoll sets while
// a small active working set does real work: 64 broadcast subscribers drain
// a MATCH fan-out storm and one pinger measures wakeup latency. The herd
// proves that wakeup latency and fan-out throughput depend on the *active*
// set, not the registered set — the property that separates epoll from the
// legacy poll() loop, whose every pass walked all N connections.
// ---------------------------------------------------------------------------

constexpr int kFanoutSubscribers = 64;
constexpr int kWakeupPings = 200;

struct HerdResult {
  int connections = 0;  ///< actual herd size after the RLIMIT_NOFILE clamp
  double fanout_frames_per_second = 0;
  uint64_t fanout_frames = 0;
  double seconds = 0;
  double frames_per_wakeup = 0;
  Histogram wakeup_ns;  ///< ping round trip with the herd attached
};

uint64_t CounterValue(const MetricsRegistry& registry,
                      const std::string& name) {
  for (const MetricSample& sample : registry.Collect()) {
    if (sample.name == name) return sample.counter_value;
  }
  return 0;
}

/// Both ends of every loopback connection live in this process, so each herd
/// member costs two descriptors. Leave headroom for the server's listeners,
/// the active clients, and whatever the runtime itself holds open.
int ClampHerdToRlimit(int requested) {
  struct rlimit limit {};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return requested;
  const long usable = (static_cast<long>(limit.rlim_cur) - 768) / 2;
  if (usable < requested) {
    std::printf(
        "    note: %d connections clamped to %ld by RLIMIT_NOFILE=%ld "
        "(raise ulimit -n for the full herd)\n",
        requested, usable, static_cast<long>(limit.rlim_cur));
    return static_cast<int>(std::max(usable, 1L));
  }
  return requested;
}

/// A raw idle connection: connected, registered with the reactor, never
/// spoken on. The source address rotates through 127.0.x.y so a 100k herd
/// does not exhaust the ephemeral port range of a single (saddr, daddr)
/// pair — every loopback /8 address accepts local binds without setup.
int ConnectIdle(int server_port, int index) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in src{};
  src.sin_family = AF_INET;
  src.sin_port = 0;
  const uint32_t host = 0x7f000000u | ((static_cast<uint32_t>(index) / 20000 + 2) << 8) | 1u;
  src.sin_addr.s_addr = htonl(host);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof(src)) != 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<uint16_t>(server_port));
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) != 0) {
    ::close(fd);
    return -1;
  }
  // Abortive close (RST, no TIME_WAIT): a herd teardown would otherwise
  // leave tens of thousands of sockets in TIME_WAIT for 60s, exhausting the
  // loopback ephemeral port range for every connect that follows — the next
  // herd config, the perf gate's rerun, or an unrelated CI step.
  struct linger abort_on_close {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
               sizeof(abort_on_close));
  return fd;
}

HerdResult RunHerdConfig(int herd, const std::vector<Event>& events,
                         double budget_seconds) {
  HerdResult result;
  net::EventServerOptions options;
  options.engine.batch_size = 256;
  options.io_threads = 4;
  net::EventServer server(std::move(options));
  APCM_CHECK(server.Start().ok());
  const MetricsRegistry& registry = server.engine().metrics_registry();

  // The active working set: 64 catch-all subscribers that every publish
  // fans out to, plus one pinger for the latency probe.
  std::vector<std::unique_ptr<net::Client>> fanout;
  for (int i = 0; i < kFanoutSubscribers; ++i) {
    fanout.push_back(std::make_unique<net::Client>());
    APCM_CHECK(fanout.back()->Connect("127.0.0.1", server.port()).ok());
    APCM_CHECK(fanout.back()->Subscribe(0, "a0 >= 0").ok());
  }
  net::Client pinger;
  APCM_CHECK(pinger.Connect("127.0.0.1", server.port()).ok());

  // Attach the idle herd in paced chunks: the accept backlog is finite, so
  // wait for the server's connection gauge to absorb each chunk before
  // issuing the next burst of SYNs.
  std::vector<int> herd_fds;
  herd_fds.reserve(static_cast<size_t>(herd));
  const int64_t active = kFanoutSubscribers + 1;
  for (int i = 0; i < herd; ++i) {
    const int fd = ConnectIdle(server.port(), i);
    if (fd < 0) {
      std::printf("    note: herd stopped at %zu connections (%s)\n",
                  herd_fds.size(), std::strerror(errno));
      break;
    }
    herd_fds.push_back(fd);
    if (herd_fds.size() % 512 == 0) {
      while (server.num_connections() <
             static_cast<int64_t>(herd_fds.size()) + active - 64) {
        std::this_thread::yield();
      }
    }
  }
  while (server.num_connections() <
         static_cast<int64_t>(herd_fds.size()) + active) {
    std::this_thread::yield();
  }
  result.connections = static_cast<int>(herd_fds.size());

  // Wakeup latency: a round trip through one reactor thread while the herd
  // sits in the same epoll sets. Each ping is one wakeup on an otherwise
  // idle server, so the RTT bounds readiness-to-dispatch latency.
  for (int i = 0; i < kWakeupPings; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    APCM_CHECK(pinger.Ping().ok());
    result.wakeup_ns.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  // Broadcast fan-out: every publish owes one MATCH frame to each of the 64
  // subscribers. Throughput is delivered frames over the wall clock from
  // the first publish to the last drained frame.
  const uint64_t wakeups_before =
      CounterValue(registry, "apcm_net_wakeups_total");
  const uint64_t frames_before =
      CounterValue(registry, "apcm_net_frames_out_total");
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> published{0};
  std::atomic<bool> publishing{true};
  std::vector<std::thread> drainers;
  for (auto& sub : fanout) {
    drainers.emplace_back([&, client = sub.get()] {
      uint64_t got = 0;
      while (publishing.load(std::memory_order_acquire) ||
             got < published.load(std::memory_order_acquire)) {
        auto match = client->PollMatch(/*timeout_ms=*/20);
        if (!match.ok()) break;
        if (match.value().has_value()) {
          ++got;
          delivered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  net::Client publisher;
  {
    Status connected = publisher.Connect("127.0.0.1", server.port());
    if (!connected.ok()) {
      std::fprintf(stderr, "publisher connect: %s\n",
                   connected.ToString().c_str());
    }
    APCM_CHECK(connected.ok());
  }
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(budget_seconds);
  size_t next = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    APCM_CHECK(publisher.Publish(events[next % events.size()]).ok());
    published.fetch_add(1, std::memory_order_release);
    ++next;
  }
  publishing.store(false, std::memory_order_release);
  for (std::thread& t : drainers) t.join();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.fanout_frames = delivered.load();
  result.fanout_frames_per_second = result.fanout_frames / result.seconds;
  const uint64_t wakeups =
      CounterValue(registry, "apcm_net_wakeups_total") - wakeups_before;
  const uint64_t frames =
      CounterValue(registry, "apcm_net_frames_out_total") - frames_before;
  result.frames_per_wakeup =
      wakeups > 0 ? static_cast<double>(frames) / wakeups : 0;

  for (int fd : herd_fds) ::close(fd);
  server.Stop();
  return result;
}

void RunConnectionScale(BenchJsonWriter& json, Parser& parser,
                        int max_connections) {
  std::printf(
      "\nC2b: connection scale — idle herd + broadcast fan-out "
      "(io_threads=4, %d fan-out subscribers)\n\n",
      kFanoutSubscribers);
  Rng rng(20260808);
  std::vector<Event> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back(parser
                         .ParseEvent("a0 = " +
                                     std::to_string(rng.UniformInt(0, 999)))
                         .value());
  }
  std::vector<int> herds{1000, 10000};
  if (max_connections > 0) herds.push_back(max_connections);
  std::sort(herds.begin(), herds.end());
  herds.erase(std::unique(herds.begin(), herds.end()), herds.end());

  TablePrinter table({"connections", "fanout frames/s", "wakeup p50 us",
                      "wakeup p99 us", "frames/wakeup", "frames"});
  for (int requested : herds) {
    const int herd = ClampHerdToRlimit(requested);
    const HerdResult result =
        RunHerdConfig(herd, events, TimeBudgetSeconds());
    const double p50_ns =
        static_cast<double>(result.wakeup_ns.ValueAtQuantile(0.5));
    const double p95_ns =
        static_cast<double>(result.wakeup_ns.ValueAtQuantile(0.95));
    const double p99_ns =
        static_cast<double>(result.wakeup_ns.ValueAtQuantile(0.99));
    table.AddRow({std::to_string(result.connections),
                  Rate(result.fanout_frames_per_second),
                  Fixed(p50_ns / 1e3, 1), Fixed(p99_ns / 1e3, 1),
                  Fixed(result.frames_per_wakeup, 2),
                  std::to_string(result.fanout_frames)});
    json.Add({.bench = "bench_net",
              .config = "connections=" + std::to_string(requested),
              .throughput = result.fanout_frames_per_second,
              .p50_ns = p50_ns,
              .p95_ns = p95_ns,
              .p99_ns = p99_ns,
              .max_ns = static_cast<double>(result.wakeup_ns.max()),
              .metrics = {{"connections",
                           static_cast<double>(result.connections)},
                          {"fanout_frames",
                           static_cast<double>(result.fanout_frames)},
                          {"frames_per_wakeup", result.frames_per_wakeup},
                          {"seconds", result.seconds}}});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: latency columns are ping round trips measured with the herd "
      "attached; epoll keeps them flat as registered connections grow.\n");
}

void Run(BenchJsonWriter& json, int max_connections) {
  std::printf("C2: remote ingestion — publisher connections over loopback\n");
  std::printf("    %d subscriptions, %d-attribute events, %.1fs per config\n\n",
              kSubscriptions, kAttributes, TimeBudgetSeconds());

  Rng rng(20260806);
  const std::vector<std::string> subs = MakeSubscriptionTexts(rng);
  Catalog catalog;
  Parser parser(&catalog);
  for (size_t i = 0; i < subs.size(); ++i) {
    parser.ParseExpression(i, subs[i]).value();
  }
  const std::vector<Event> events = MakeEventPool(parser, rng);

  const std::vector<int> lineups =
      FullScale() ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{1, 2, 4};
  TablePrinter table({"publishers", "events/s", "ack p50 us", "ack p99 us",
                      "ack max us", "events", "matches"});
  for (int publishers : lineups) {
    const NetResult result =
        RunConfig(publishers, subs, events, TimeBudgetSeconds());
    const double p50_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.5));
    const double p95_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.95));
    const double p99_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.99));
    const double max_ns =
        static_cast<double>(result.publish_latency_ns.max());
    table.AddRow({std::to_string(publishers), Rate(result.events_per_second),
                  Fixed(p50_ns / 1e3, 1), Fixed(p99_ns / 1e3, 1),
                  Fixed(max_ns / 1e3, 1),
                  std::to_string(result.events_acked),
                  std::to_string(result.matches)});
    json.Add({.bench = "bench_net",
              .config = "publishers=" + std::to_string(publishers),
              .throughput = result.events_per_second,
              .p50_ns = p50_ns,
              .p95_ns = p95_ns,
              .p99_ns = p99_ns,
              .max_ns = max_ns,
              .metrics = {{"events_acked",
                           static_cast<double>(result.events_acked)},
                          {"matches", static_cast<double>(result.matches)},
                          {"seconds", result.seconds}}});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: each Publish() is a synchronous ACK round trip, so single-"
      "connection throughput is latency-bound; added connections pipeline "
      "independent round trips into the same engine.\n");

  RunConnectionScale(json, parser, max_connections);
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  // `--connections N` extends the C2b herd sweep to N (the CI net-stress
  // job passes 100000); strip it before the JSON writer parses the rest.
  int max_connections = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      max_connections = std::atoi(argv[++i]);
      if (max_connections <= 0) {
        std::fprintf(stderr, "usage: %s [--json <path>] [--connections N]\n",
                     argv[0]);
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  apcm::bench::BenchJsonWriter json = apcm::bench::BenchJsonWriter::FromArgs(
      static_cast<int>(args.size()), args.data());
  apcm::bench::Run(json, max_connections);
  return json.Finish() ? 0 : 1;
}
