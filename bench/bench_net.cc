// C2: remote ingestion throughput. N publisher connections flood a loopback
// EventServer through the wire protocol while one subscriber connection
// drains MATCH frames; we measure aggregate acknowledged events/s and the
// per-publish ACK round-trip latency (each Publish() is a full
// request/response over TCP, so the percentiles bound what a synchronous
// remote producer observes).
//
// The subscription load is synthetic — narrow single-attribute windows over
// a 16-attribute space — sized so matching does real work (~2% selectivity
// per subscription) without the matcher dominating the socket path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/base/macros.h"
#include "src/base/rng.h"
#include "src/be/parser.h"
#include "src/net/client.h"
#include "src/net/server.h"

namespace apcm::bench {
namespace {

constexpr int kAttributes = 16;
constexpr int kSubscriptions = 1000;
constexpr int kEventPool = 2048;
constexpr int64_t kDomain = 1000;

/// "a3 between [412, 462]": a window of width 50 over one attribute, so
/// each subscription matches ~5% of the values of an attribute that ~half
/// of the events carry. Cycling the primary attribute guarantees every
/// attribute name is registered by the server in a deterministic order.
std::vector<std::string> MakeSubscriptionTexts(Rng& rng) {
  std::vector<std::string> texts;
  texts.reserve(kSubscriptions);
  for (int i = 0; i < kSubscriptions; ++i) {
    const int attr = i % kAttributes;
    const int64_t lo = rng.UniformInt(0, kDomain - 51);
    texts.push_back("a" + std::to_string(attr) + " between [" +
                    std::to_string(lo) + ", " + std::to_string(lo + 50) + "]");
  }
  return texts;
}

/// Pre-built events carrying ~half of the attributes with uniform values.
/// Parsed through `parser` so the attribute ids match the ones the server
/// assigned while parsing the same subscription texts in the same order.
std::vector<Event> MakeEventPool(Parser& parser, Rng& rng) {
  std::vector<Event> events;
  events.reserve(kEventPool);
  for (int i = 0; i < kEventPool; ++i) {
    std::string text;
    for (int attr = 0; attr < kAttributes; ++attr) {
      if (!rng.Bernoulli(0.5)) continue;
      if (!text.empty()) text += ", ";
      text += "a" + std::to_string(attr) + " = " +
              std::to_string(rng.UniformInt(0, kDomain - 1));
    }
    if (text.empty()) text = "a0 = 0";
    events.push_back(parser.ParseEvent(text).value());
  }
  return events;
}

struct NetResult {
  double events_per_second = 0;
  double seconds = 0;
  uint64_t events_acked = 0;
  uint64_t matches = 0;
  Histogram publish_latency_ns;
};

NetResult RunConfig(int publishers, const std::vector<std::string>& subs,
                    const std::vector<Event>& events, double budget_seconds) {
  net::EventServerOptions options;
  options.engine.batch_size = 256;
  net::EventServer server(std::move(options));
  APCM_CHECK(server.Start().ok());

  net::Client subscriber;
  APCM_CHECK(subscriber.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < subs.size(); ++i) {
    APCM_CHECK(subscriber.Subscribe(i, subs[i]).ok());
  }
  std::atomic<uint64_t> matches{0};
  std::thread drainer([&] {
    while (true) {
      auto match = subscriber.PollMatch(/*timeout_ms=*/20);
      if (!match.ok()) break;  // server closed the connection after Stop()
      if (match.value().has_value()) {
        matches.fetch_add(match.value()->sub_ids.size(),
                          std::memory_order_relaxed);
      }
    }
  });

  std::vector<Histogram> latencies(publishers);
  std::vector<uint64_t> acked(publishers, 0);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(budget_seconds);
  for (int p = 0; p < publishers; ++p) {
    threads.emplace_back([&, p] {
      net::Client publisher;
      APCM_CHECK(publisher.Connect("127.0.0.1", server.port()).ok());
      size_t next = static_cast<size_t>(p);
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        auto id = publisher.Publish(events[next % events.size()]);
        APCM_CHECK(id.ok());
        latencies[p].Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        ++acked[p];
        ++next;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Stop() drains the engine and flushes every MATCH before closing, so the
  // drainer exits only after the last owed notification arrived.
  server.Stop();
  drainer.join();

  NetResult result;
  result.seconds = seconds;
  for (int p = 0; p < publishers; ++p) {
    result.events_acked += acked[p];
    result.publish_latency_ns.Merge(latencies[p]);
  }
  result.events_per_second = result.events_acked / seconds;
  result.matches = matches.load();
  return result;
}

void Run(BenchJsonWriter& json) {
  std::printf("C2: remote ingestion — publisher connections over loopback\n");
  std::printf("    %d subscriptions, %d-attribute events, %.1fs per config\n\n",
              kSubscriptions, kAttributes, TimeBudgetSeconds());

  Rng rng(20260806);
  const std::vector<std::string> subs = MakeSubscriptionTexts(rng);
  Catalog catalog;
  Parser parser(&catalog);
  for (size_t i = 0; i < subs.size(); ++i) {
    parser.ParseExpression(i, subs[i]).value();
  }
  const std::vector<Event> events = MakeEventPool(parser, rng);

  const std::vector<int> lineups =
      FullScale() ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{1, 2, 4};
  TablePrinter table({"publishers", "events/s", "ack p50 us", "ack p99 us",
                      "ack max us", "events", "matches"});
  for (int publishers : lineups) {
    const NetResult result =
        RunConfig(publishers, subs, events, TimeBudgetSeconds());
    const double p50_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.5));
    const double p95_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.95));
    const double p99_ns =
        static_cast<double>(result.publish_latency_ns.ValueAtQuantile(0.99));
    const double max_ns =
        static_cast<double>(result.publish_latency_ns.max());
    table.AddRow({std::to_string(publishers), Rate(result.events_per_second),
                  Fixed(p50_ns / 1e3, 1), Fixed(p99_ns / 1e3, 1),
                  Fixed(max_ns / 1e3, 1),
                  std::to_string(result.events_acked),
                  std::to_string(result.matches)});
    json.Add({.bench = "bench_net",
              .config = "publishers=" + std::to_string(publishers),
              .throughput = result.events_per_second,
              .p50_ns = p50_ns,
              .p95_ns = p95_ns,
              .p99_ns = p99_ns,
              .max_ns = max_ns,
              .metrics = {{"events_acked",
                           static_cast<double>(result.events_acked)},
                          {"matches", static_cast<double>(result.matches)},
                          {"seconds", result.seconds}}});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: each Publish() is a synchronous ACK round trip, so single-"
      "connection throughput is latency-bound; added connections pipeline "
      "independent round trips into the same engine.\n");
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
