// F8 — sensitivity to subscription complexity (predicates per expression).
// More predicates mean more work per candidate for every algorithm, but also
// lower match probability; compression amortizes the extra predicates across
// subscriptions that share them.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec base = DefaultSpec();
  base.num_subscriptions = FullScale() ? 500'000 : 50'000;
  base.num_events = 1'000;
  PrintBanner("F8", "throughput vs predicates per subscription", base);

  struct Range {
    uint32_t min;
    uint32_t max;
  };
  TablePrinter table({"preds/sub", "matcher", "events/s", "matches/ev"});
  for (const Range range : {Range{3, 7}, Range{5, 15}, Range{15, 25},
                            Range{25, 40}}) {
    workload::WorkloadSpec spec = base;
    spec.min_predicates = range.min;
    spec.max_predicates = range.max;
    // Events must be able to carry enough attributes for seeded matches.
    spec.min_event_attrs = std::max(spec.min_event_attrs, range.max);
    spec.max_event_attrs = std::max(spec.max_event_attrs, range.max + 10);
    const workload::Workload workload = workload::Generate(spec).value();
    const std::string label =
        StringPrintf("%u-%u", range.min, range.max);
    std::printf("preds %s...\n", label.c_str());
    for (const Contender& contender : DefaultContenders()) {
      auto matcher = MakeContender(contender, spec);
      const ThroughputResult result =
          MeasureThroughput(*matcher, workload, 256);
      table.AddRow({label, contender.label, Rate(result.events_per_second),
                    Fixed(result.matches_per_event, 2)});
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: all algorithms slow with expression size; the "
      "compressed family degrades slowest because shared predicates are "
      "evaluated once per cluster.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
