// F14 — sensitivity to workload skew: uniform vs Zipf attribute popularity
// (and value skew). Skewed attributes concentrate predicates, which boosts
// compression (more sharing) but also concentrates candidates in the
// inverted baselines.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec base = DefaultSpec();
  base.num_subscriptions = FullScale() ? 500'000 : 50'000;
  base.num_events = 1'000;
  PrintBanner("F14", "distribution sensitivity: attribute/value skew", base);

  struct Skew {
    double attr;
    double value;
  };
  TablePrinter table({"attr zipf", "value zipf", "matcher", "events/s",
                      "compression"});
  for (const Skew skew :
       {Skew{0.0, 0.0}, Skew{0.5, 0.0}, Skew{1.0, 0.0}, Skew{1.5, 0.0},
        Skew{1.0, 1.0}}) {
    workload::WorkloadSpec spec = base;
    spec.attribute_zipf = skew.attr;
    spec.value_zipf = skew.value;
    const workload::Workload workload = workload::Generate(spec).value();
    std::printf("attr_zipf=%.1f value_zipf=%.1f...\n", skew.attr, skew.value);
    for (const Contender& contender : DefaultContenders()) {
      auto matcher = MakeContender(contender, spec);
      const ThroughputResult result =
          MeasureThroughput(*matcher, workload, 256);
      std::string compression = "-";
      if (auto* pcm = dynamic_cast<core::PcmMatcher*>(matcher.get())) {
        compression = Fixed(pcm->CompressionRatio(), 2) + "x";
      }
      table.AddRow({Fixed(skew.attr, 1), Fixed(skew.value, 1),
                    contender.label, Rate(result.events_per_second),
                    compression});
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: compression ratio grows with skew (popular attributes "
      "and values repeat across subscriptions); the compressed family gains "
      "with skew while candidate-based baselines lose ground on hot "
      "attributes.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
