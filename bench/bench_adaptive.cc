// F12 — adaptivity ablation: static compressed (PCM) vs static lazy vs
// adaptive (A-PCM) across match probabilities. The adaptive policy should
// track whichever static mode is cheaper at each operating point, paying
// only a small exploration overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec base = DefaultSpec();
  base.num_subscriptions = FullScale() ? 500'000 : 50'000;
  base.num_events = 1'000;
  PrintBanner("F12", "adaptivity ablation: compressed vs lazy vs adaptive",
              base);

  TablePrinter table({"seeded fraction", "pcm (compressed)", "pcm-lazy",
                      "a-pcm", "a-pcm mode mix (comp/lazy)"});
  for (double seeded : {0.0, 0.25, 0.5, 1.0}) {
    workload::WorkloadSpec spec = base;
    spec.seeded_event_fraction = seeded;
    const workload::Workload workload = workload::Generate(spec).value();
    std::printf("seeded=%.2f...\n", seeded);

    auto measure = [&](core::PcmMode mode, std::string* mix) {
      core::PcmOptions options;
      options.mode = mode;
      core::PcmMatcher matcher(options);
      const ThroughputResult result =
          MeasureThroughput(matcher, workload, 256);
      if (mix != nullptr) {
        const auto counters = matcher.adaptive_counters();
        *mix = StringPrintf(
            "%.0f%%/%.0f%%",
            100.0 * static_cast<double>(counters.compressed_batches) /
                static_cast<double>(counters.compressed_batches +
                                    counters.lazy_batches),
            100.0 * static_cast<double>(counters.lazy_batches) /
                static_cast<double>(counters.compressed_batches +
                                    counters.lazy_batches));
      }
      return result.events_per_second;
    };

    const double compressed = measure(core::PcmMode::kCompressed, nullptr);
    const double lazy = measure(core::PcmMode::kLazy, nullptr);
    std::string mix;
    const double adaptive = measure(core::PcmMode::kAdaptive, &mix);
    table.AddRow({Fixed(seeded, 2), Rate(compressed), Rate(lazy),
                  Rate(adaptive), mix});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: lazy wins at near-zero match probability (short-"
      "circuit exits immediately), compressed wins as matches rise; a-pcm "
      "tracks the winner at every point and its mode mix shifts "
      "accordingly.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
