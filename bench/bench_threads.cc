// F6 — multi-core scalability of A-PCM. The paper measured a multi-core
// server; this host has a single CPU, so the sweep reports (a) the
// deterministic work-model prediction calibrated against a real measured
// single-thread run (DESIGN.md §4), and (b) real std::thread executions for
// small thread counts to demonstrate the parallel code path is exercised.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"
#include "src/sim/core_model.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 1'000'000 : 100'000;
  PrintBanner("F6", "A-PCM scalability vs cores", spec);
  const workload::Workload workload = workload::Generate(spec).value();

  // Calibration run: real single-threaded compressed matching.
  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  core::PcmMatcher pcm(options);
  const ThroughputResult one =
      MeasureThroughput(pcm, workload, /*batch_size=*/256);
  std::printf("measured 1-thread: %s events/s\n",
              Rate(one.events_per_second).c_str());

  sim::MultiCoreModel model;
  model.SetProfile(sim::ProfileClusterWork(pcm, workload.events));
  model.Calibrate(static_cast<double>(workload.events.size()) /
                  one.events_per_second);

  TablePrinter table({"threads", "modeled events/s", "modeled speedup",
                      "real cluster-par", "real event-par"});
  const auto sweep = model.Sweep({1, 2, 4, 8, 16, 32});
  for (const sim::SpeedupPoint& point : sweep) {
    std::string real_cluster = "-";
    std::string real_event = "-";
    if (point.threads <= 4) {
      for (const auto parallelism :
           {core::ParallelismMode::kClusterParallel,
            core::ParallelismMode::kEventParallel}) {
        core::PcmOptions real_options;
        real_options.mode = core::PcmMode::kCompressed;
        real_options.num_threads = point.threads;
        real_options.parallelism = parallelism;
        core::PcmMatcher real_pcm(real_options);
        const ThroughputResult result =
            MeasureThroughput(real_pcm, workload, 256);
        (parallelism == core::ParallelismMode::kClusterParallel
             ? real_cluster
             : real_event) = Rate(result.events_per_second);
      }
    }
    const double rate =
        static_cast<double>(workload.events.size()) / point.seconds;
    table.AddRow({std::to_string(point.threads), Rate(rate),
                  Fixed(point.speedup, 2) + "x", real_cluster, real_event});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: host has %u hardware thread(s); real columns cannot show "
      "physical speedup here. The model replays the implementation's "
      "cluster partitioning, merge volume and barrier, calibrated on the "
      "measured 1-thread run.\n"
      "paper shape: near-linear scaling to the low tens of cores, flattening "
      "with cluster-work imbalance.\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
