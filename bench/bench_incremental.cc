// A2 (production extension) — cost of subscription churn: full index rebuild
// vs PCM's incremental delta path, and the matching-throughput degradation
// as the delta fraction grows (the signal behind the engine's rebuild
// threshold).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 500'000 : 100'000;
  spec.num_events = 1'000;
  PrintBanner("A2", "incremental maintenance: delta path vs rebuild", spec);
  // Extra subscriptions to add incrementally (fresh ids).
  workload::WorkloadSpec extra_spec = spec;
  extra_spec.seed += 1;
  extra_spec.num_subscriptions = spec.num_subscriptions / 4;
  const workload::Workload workload = workload::Generate(spec).value();
  auto extra = workload::GenerateSubscriptions(extra_spec).value();
  for (size_t i = 0; i < extra.size(); ++i) {
    // Re-id to avoid collisions with the base set.
    extra[i] = BooleanExpression::FromSorted(
        static_cast<SubscriptionId>(spec.num_subscriptions + i),
        std::vector<Predicate>(extra[i].predicates()));
  }

  // Rebuild cost reference.
  core::PcmOptions options;
  options.mode = core::PcmMode::kCompressed;
  {
    core::PcmMatcher matcher(options);
    WallTimer timer;
    matcher.Build(workload.subscriptions);
    std::printf("full build of %s subscriptions: %.3fs\n",
                FormatWithCommas(workload.subscriptions.size()).c_str(),
                timer.ElapsedSeconds());
  }

  core::PcmMatcher matcher(options);
  matcher.Build(workload.subscriptions);

  TablePrinter table({"delta fraction", "adds applied", "add rate (subs/s)",
                      "events/s after"});
  const ThroughputResult baseline =
      MeasureThroughputPrebuilt(matcher, workload, 256);
  table.AddRow({"0.00", "0", "-", Rate(baseline.events_per_second)});

  size_t cursor = 0;
  for (const double target : {0.05, 0.10, 0.20}) {
    const auto want = static_cast<size_t>(
        target * static_cast<double>(spec.num_subscriptions));
    WallTimer timer;
    size_t applied = 0;
    while (cursor < extra.size() &&
           matcher.DeltaFraction() < target) {
      matcher.AddIncremental(extra[cursor++]);
      ++applied;
    }
    const double add_seconds = timer.ElapsedSeconds();
    const ThroughputResult after =
        MeasureThroughputPrebuilt(matcher, workload, 256);
    table.AddRow(
        {Fixed(matcher.DeltaFraction(), 2), FormatWithCommas(applied),
         add_seconds > 0
             ? FormatWithCommas(static_cast<uint64_t>(
                   static_cast<double>(applied) / add_seconds))
             : "-",
         Rate(after.events_per_second)});
    std::printf("delta %.2f done (%zu adds, want ~%zu)\n",
                matcher.DeltaFraction(), applied, want);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nexpected shape: incremental adds run orders of magnitude faster "
      "than a rebuild amortizes, while matching throughput degrades "
      "gracefully with the delta fraction — motivating the engine's "
      "threshold-triggered rebuilds.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
