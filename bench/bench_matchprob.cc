// F7 — sensitivity to match probability. Index baselines thrive at very low
// match rates (aggressive pruning) and collapse as more subscriptions match;
// compressed matching degrades gently because its work is dominated by
// distinct-predicate evaluation, not per-candidate checks. A-PCM tracks the
// better of compressed/lazy at each point.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec base = DefaultSpec();
  base.num_subscriptions = FullScale() ? 500'000 : 50'000;
  base.num_events = 1'000;
  PrintBanner("F7", "throughput vs match probability", base);

  TablePrinter table({"seeded fraction", "matches/ev", "matcher", "events/s"});
  for (double seeded : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    workload::WorkloadSpec spec = base;
    spec.seeded_event_fraction = seeded;
    const workload::Workload workload = workload::Generate(spec).value();
    std::printf("seeded=%.2f...\n", seeded);
    for (const Contender& contender : DefaultContenders()) {
      auto matcher = MakeContender(contender, spec);
      const ThroughputResult result =
          MeasureThroughput(*matcher, workload, 256);
      table.AddRow({Fixed(seeded, 2), Fixed(result.matches_per_event, 2),
                    contender.label, Rate(result.events_per_second)});
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: baselines fall sharply as match probability rises; "
      "pcm stays flat; a-pcm >= max(pcm, pcm-lazy) modulo adaptation "
      "overhead.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
