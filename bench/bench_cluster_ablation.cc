// A1 (design ablation) — how much of PCM's throughput comes from each
// clustering decision: pivot grouping (O(1) cluster pruning), signature
// sorting (predicate sharing), plain chunking (neither), and the cluster
// size. Complements T3 (which measures structure, not speed).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/core/pcm.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 500'000 : 100'000;
  spec.num_events = 2'000;
  PrintBanner("A1", "ablation: cluster strategy and size vs throughput",
              spec);
  const workload::Workload workload = workload::Generate(spec).value();

  TablePrinter table({"strategy", "cluster size", "clusters", "compression",
                      "events/s"});
  using core::ClusterStrategy;
  struct Config {
    ClusterStrategy strategy;
    uint32_t size;
  };
  const Config configs[] = {
      {ClusterStrategy::kPivot, 64},
      {ClusterStrategy::kPivot, 256},
      {ClusterStrategy::kPivot, 1024},
      {ClusterStrategy::kPivot, 4096},
      {ClusterStrategy::kSignature, 1024},
      {ClusterStrategy::kInsertionOrder, 1024},
  };
  for (const Config& config : configs) {
    core::PcmOptions options;
    options.mode = core::PcmMode::kCompressed;
    options.clustering.strategy = config.strategy;
    options.clustering.cluster_size = config.size;
    core::PcmMatcher matcher(options);
    const ThroughputResult result =
        MeasureThroughput(matcher, workload, 256);
    table.AddRow({core::ClusterStrategyName(config.strategy),
                  std::to_string(config.size),
                  std::to_string(matcher.clusters().size()),
                  Fixed(matcher.CompressionRatio(), 2) + "x",
                  Rate(result.events_per_second)});
    std::printf("%s/%u done\n", core::ClusterStrategyName(config.strategy),
                config.size);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nexpected shape: pivot >> signature >> insertion-order — the O(1) "
      "pivot prune dominates; cluster size trades prune granularity "
      "(smaller = finer pruning) against per-cluster overheads.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
