// F9 — sensitivity to dimensionality (size of the attribute universe).
// Low dimensionality concentrates predicates on few attributes (heavy
// sharing, many candidates per event attribute); high dimensionality spreads
// them out (sparser index entries, better pruning, less sharing).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"

namespace apcm::bench {
namespace {

void Run() {
  workload::WorkloadSpec base = DefaultSpec();
  base.num_subscriptions = FullScale() ? 500'000 : 50'000;
  base.num_events = 1'000;
  PrintBanner("F9", "throughput vs dimensionality", base);

  TablePrinter table({"attributes", "matcher", "events/s", "matches/ev"});
  for (uint32_t dims : {100u, 400u, 1000u, 3000u}) {
    workload::WorkloadSpec spec = base;
    spec.num_attributes = dims;
    const workload::Workload workload = workload::Generate(spec).value();
    std::printf("dims=%u...\n", dims);
    for (const Contender& contender : DefaultContenders()) {
      auto matcher = MakeContender(contender, spec);
      const ThroughputResult result =
          MeasureThroughput(*matcher, workload, 256);
      table.AddRow({std::to_string(dims), contender.label,
                    Rate(result.events_per_second),
                    Fixed(result.matches_per_event, 2)});
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: inverted baselines improve with dimensionality "
      "(fewer candidates per event attribute); compressed matching benefits "
      "too as absence masks kill whole clusters, and keeps the lead "
      "throughout.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
