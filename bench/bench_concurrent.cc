// C1 — concurrent publish throughput of the snapshot-swapped StreamEngine.
// P publisher threads share one engine and publish a common event trace;
// we report aggregate events/s, speedup vs one publisher, and queue/backlog
// behaviour. An optional mutator column re-runs each point with a background
// thread doing add/remove/SetPriority churn to price snapshot rebuilds.
//
// NOTE on interpretation: matching itself is serialized per round (one
// processing lock), so publisher scaling measures how well the MPSC queue
// and snapshot design keep publishers out of each other's way — on a
// single-CPU host expect ~1x, on a multi-core host >1x until the matcher
// round becomes the bottleneck.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/timer.h"
#include "src/engine/engine.h"

namespace apcm::bench {
namespace {

struct ConcurrentResult {
  double events_per_second = 0;
  uint64_t events = 0;
  uint64_t blocked = 0;
  uint64_t compactions = 0;
  double p50_ns = 0;  ///< per-round batch latency from the engine histogram
  double p99_ns = 0;
};

ConcurrentResult MeasurePublishers(const workload::Workload& workload,
                                   int publishers, bool mutate) {
  engine::EngineOptions options;
  options.kind = engine::MatcherKind::kAPcm;
  options.matcher.domain = {workload.spec.domain_min,
                            workload.spec.domain_max};
  options.batch_size = 256;
  options.buffer_capacity = 1024;
  options.osr.window_size = 0;
  options.backpressure = engine::BackpressurePolicy::kBlock;

  std::atomic<uint64_t> delivered{0};
  engine::StreamEngine engine(
      options, [&](uint64_t, const std::vector<SubscriptionId>& matches) {
        delivered.fetch_add(matches.size(), std::memory_order_relaxed);
      });
  for (const auto& sub : workload.subscriptions) {
    (void)engine.AddSubscription(sub.predicates()).value();
  }

  const double budget = TimeBudgetSeconds();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> published{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int p = 0; p < publishers; ++p) {
    threads.emplace_back([&, p] {
      size_t cursor = static_cast<size_t>(p) * 37 % workload.events.size();
      uint64_t count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        engine.Publish(workload.events[cursor]);
        cursor = (cursor + 1) % workload.events.size();
        ++count;
      }
      published.fetch_add(count, std::memory_order_relaxed);
    });
  }
  std::thread mutator;
  if (mutate) {
    mutator = std::thread([&] {
      std::vector<SubscriptionId> ids;
      size_t cursor = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto id = engine.AddSubscription(
            workload.subscriptions[cursor].predicates());
        if (id.ok()) ids.push_back(*id);
        if (ids.size() > 8) {
          (void)engine.RemoveSubscription(ids.front());
          ids.erase(ids.begin());
        }
        if (!ids.empty()) {
          (void)engine.SetPriority(ids.back(),
                                   static_cast<double>(cursor % 5));
        }
        cursor = (cursor + 1) % workload.subscriptions.size();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (timer.ElapsedSeconds() < budget) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  if (mutator.joinable()) mutator.join();
  engine.Flush();
  const double seconds = timer.ElapsedSeconds();

  ConcurrentResult result;
  result.events = published.load();
  result.events_per_second = static_cast<double>(result.events) / seconds;
  result.blocked = engine.stats().publishes_blocked;
  result.compactions = engine.stats().compactions;
  const Histogram latency = engine.stats().batch_latency_ns.Snapshot();
  result.p50_ns = static_cast<double>(latency.ValueAtQuantile(0.5));
  result.p99_ns = static_cast<double>(latency.ValueAtQuantile(0.99));
  return result;
}

void Run(BenchJsonWriter& json) {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 100'000 : 5'000;
  spec.num_events = 4'000;
  PrintBanner("C1", "concurrent publish throughput (shared engine)", spec);
  const workload::Workload workload = workload::Generate(spec).value();
  std::printf("host threads: %u\n\n",
              std::thread::hardware_concurrency());

  TablePrinter table({"publishers", "events/s", "speedup", "blocked",
                      "events/s (churn)", "compactions"});
  double base = 0;
  for (int publishers : {1, 2, 4}) {
    const ConcurrentResult quiet =
        MeasurePublishers(workload, publishers, /*mutate=*/false);
    const ConcurrentResult churn =
        MeasurePublishers(workload, publishers, /*mutate=*/true);
    if (publishers == 1) base = quiet.events_per_second;
    const auto add_json = [&](const char* mode, const ConcurrentResult& r) {
      BenchJsonWriter::Record record;
      record.bench = "bench_concurrent";
      record.config =
          "publishers=" + std::to_string(publishers) + " mode=" + mode;
      record.throughput = r.events_per_second;
      record.p50_ns = r.p50_ns;
      record.p99_ns = r.p99_ns;
      record.metrics = {
          {"events", static_cast<double>(r.events)},
          {"blocked", static_cast<double>(r.blocked)},
          {"compactions", static_cast<double>(r.compactions)},
      };
      json.Add(std::move(record));
    };
    add_json("quiet", quiet);
    add_json("churn", churn);
    table.AddRow({std::to_string(publishers), Rate(quiet.events_per_second),
                  Fixed(quiet.events_per_second / base, 2) + "x",
                  std::to_string(quiet.blocked),
                  Rate(churn.events_per_second),
                  std::to_string(churn.compactions)});
    std::printf("P=%d done\n", publishers);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nreading the table: speedup tracks how far the MPSC queue + snapshot "
      "reads keep publishers independent; the churn column shows throughput "
      "with a live mutator forcing delta application and background "
      "compactions. Scaling requires physical cores.\n");
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
