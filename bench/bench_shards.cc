// S1 — sharded-backend scaling: throughput of ShardedMatcher over A-PCM
// shards as the shard count grows. Shards partition the subscription set by
// stable id hash; each event fans across all shards on a thread pool and the
// per-shard sorted match lists are merged. On a multi-core host the sweep
// shows near-linear speedup to the core count; this single-CPU container
// still exercises the full fan-out/merge path (the pool runs inline), so the
// interesting local signal is the sharding overhead, not the speedup.
//
// Acceptance target (8-core host): 8 shards >= 1.5x the 1-shard rate at
// FullScale (1M subscriptions).

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/base/string_util.h"
#include "src/engine/matcher_factory.h"
#include "src/index/sharded.h"

namespace apcm::bench {
namespace {

void Run(BenchJsonWriter& json) {
  workload::WorkloadSpec spec = DefaultSpec();
  spec.num_subscriptions = FullScale() ? 1'000'000 : 100'000;
  PrintBanner("S1", "sharded a-pcm throughput vs shard count", spec);
  const workload::Workload workload = workload::Generate(spec).value();

  engine::MatcherConfig config;
  config.domain = {spec.domain_min, spec.domain_max};

  TablePrinter table({"shards", "threads", "build(s)", "memory", "events/s",
                      "batch events/s", "vs 1 shard"});
  double one_shard_rate = 0;
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    index::ShardedOptions sharded;
    sharded.num_shards = shards;
    sharded.num_threads = 0;  // min(shards, hardware threads)
    auto matcher = engine::CreateShardedMatcher(engine::MatcherKind::kAPcm,
                                                config, sharded);
    // Single-event dispatch (batch 1) stresses per-event fan-out overhead;
    // batch 256 is the engine's steady-state shape.
    const ThroughputResult single =
        MeasureThroughput(*matcher, workload, /*batch_size=*/1);
    const ThroughputResult batch =
        MeasureThroughputPrebuilt(*matcher, workload, /*batch_size=*/256);
    if (shards == 1) one_shard_rate = batch.events_per_second;

    const uint32_t threads =
        std::max(1u, std::min(shards, std::thread::hardware_concurrency()));
    const std::string label = StringPrintf("shards=%u", shards);
    json.AddThroughput("bench_shards", label + "/batch=1", single);
    json.AddThroughput("bench_shards", label + "/batch=256", batch);
    table.AddRow({std::to_string(shards), std::to_string(threads),
                  Fixed(single.build_seconds, 2),
                  FormatBytes(batch.memory_bytes),
                  Rate(single.events_per_second),
                  Rate(batch.events_per_second),
                  one_shard_rate > 0
                      ? Fixed(batch.events_per_second / one_shard_rate, 2) + "x"
                      : "1.00x"});
    std::printf("  measured %u shard(s)\n", shards);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nnote: host has %u hardware thread(s); with one core every shard "
      "count runs the fan-out serially, so \"vs 1 shard\" shows overhead "
      "here and speedup on multi-core hosts (target: >= 1.5x at 8 shards "
      "on 8 cores).\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace apcm::bench

int main(int argc, char** argv) {
  apcm::bench::BenchJsonWriter json =
      apcm::bench::BenchJsonWriter::FromArgs(argc, argv);
  apcm::bench::Run(json);
  return json.Finish() ? 0 : 1;
}
