// F5 — throughput as the subscription count grows. The paper's central
// scaling figure: index-based baselines degrade with the workload size while
// compressed matching holds orders of magnitude higher rates.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/string_util.h"

namespace apcm::bench {
namespace {

void Run() {
  const std::vector<uint32_t> sizes =
      FullScale()
          ? std::vector<uint32_t>{100'000, 500'000, 1'000'000, 2'000'000,
                                  5'000'000}
          : std::vector<uint32_t>{10'000, 50'000, 100'000, 200'000};

  workload::WorkloadSpec base = DefaultSpec();
  base.num_events = FullScale() ? 5'000 : 1'000;
  PrintBanner("F5", "throughput vs number of subscriptions", base);

  TablePrinter table({"subscriptions", "matcher", "build(s)", "events/s",
                      "matches/ev"});
  for (uint32_t size : sizes) {
    workload::WorkloadSpec spec = base;
    spec.num_subscriptions = size;
    std::printf("generating %s subscriptions...\n",
                FormatWithCommas(size).c_str());
    const workload::Workload workload = workload::Generate(spec).value();
    for (const Contender& contender : DefaultContenders()) {
      auto matcher = MakeContender(contender, spec);
      const ThroughputResult result =
          MeasureThroughput(*matcher, workload, 256);
      table.AddRow({FormatWithCommas(size), contender.label,
                    Fixed(result.build_seconds, 2),
                    Rate(result.events_per_second),
                    Fixed(result.matches_per_event, 2)});
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper shape: scan/counting degrade ~linearly in the subscription "
      "count; pcm/a-pcm stay 2-4 orders of magnitude above scan at every "
      "size, with the gap widening as subscriptions grow.\n");
}

}  // namespace
}  // namespace apcm::bench

int main() {
  apcm::bench::Run();
  return 0;
}
