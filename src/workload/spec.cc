#include "src/workload/spec.h"

#include "src/base/string_util.h"

namespace apcm::workload {

Status WorkloadSpec::Validate() const {
  if (num_attributes == 0) {
    return Status::InvalidArgument("num_attributes must be >= 1");
  }
  if (domain_min > domain_max) {
    return Status::InvalidArgument("domain_min > domain_max");
  }
  if (ValueInterval{domain_min, domain_max}.Width() == 0) {
    return Status::InvalidArgument(
        "domain spans the full 64-bit space; use a bounded domain");
  }
  if (min_predicates > max_predicates) {
    return Status::InvalidArgument("min_predicates > max_predicates");
  }
  if (max_predicates > num_attributes) {
    return Status::InvalidArgument(
        "max_predicates exceeds num_attributes (one predicate per attribute)");
  }
  if (min_event_attrs > max_event_attrs) {
    return Status::InvalidArgument("min_event_attrs > max_event_attrs");
  }
  if (max_event_attrs > num_attributes) {
    return Status::InvalidArgument("max_event_attrs exceeds num_attributes");
  }
  if (attribute_zipf < 0 || value_zipf < 0) {
    return Status::InvalidArgument("zipf exponents must be >= 0");
  }
  const double op_sum =
      equality_fraction + in_fraction + ne_fraction + inequality_fraction;
  if (equality_fraction < 0 || in_fraction < 0 || ne_fraction < 0 ||
      inequality_fraction < 0 || op_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "operator fractions must be non-negative and sum to <= 1");
  }
  if (in_set_size == 0) {
    return Status::InvalidArgument("in_set_size must be >= 1");
  }
  if (predicate_width <= 0 || predicate_width > 1) {
    return Status::InvalidArgument("predicate_width must be in (0, 1]");
  }
  if (operand_grid < 0 || operand_grid > 1) {
    return Status::InvalidArgument("operand_grid must be in [0, 1]");
  }
  if (seeded_event_fraction < 0 || seeded_event_fraction > 1) {
    return Status::InvalidArgument("seeded_event_fraction must be in [0, 1]");
  }
  if (event_locality < 0 || event_locality > 1) {
    return Status::InvalidArgument("event_locality must be in [0, 1]");
  }
  return Status::OK();
}

std::string WorkloadSpec::ToString() const {
  return StringPrintf(
      "subs=%s events=%u dims=%u domain=[%lld,%lld] preds=[%u,%u] "
      "event_attrs=[%u,%u] attr_zipf=%.2f value_zipf=%.2f width=%.3f "
      "grid=%.3f seeded=%.2f locality=%.2f seed=%llu",
      FormatWithCommas(num_subscriptions).c_str(), num_events, num_attributes,
      static_cast<long long>(domain_min), static_cast<long long>(domain_max),
      min_predicates, max_predicates, min_event_attrs, max_event_attrs,
      attribute_zipf, value_zipf, predicate_width, operand_grid,
      seeded_event_fraction, event_locality,
      static_cast<unsigned long long>(seed));
}

}  // namespace apcm::workload
