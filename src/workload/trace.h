#ifndef APCM_WORKLOAD_TRACE_H_
#define APCM_WORKLOAD_TRACE_H_

#include <string>

#include "src/base/status.h"
#include "src/workload/generator.h"

namespace apcm::workload {

/// Persistence for workloads, so experiments can be re-run on the exact same
/// inputs and users can feed hand-written subscription files to the engine.
///
/// Two formats:
///  * Text (human-editable): the Parser grammar, one subscription or event
///    per line. See file header comments written by SaveText.
///  * Binary (fast, compact): little-endian tagged format "APCMWL1".

/// Writes `workload` in the text format.
Status SaveText(const Workload& workload, const std::string& path);

/// Reads a text-format workload. The spec is reconstructed only partially
/// (counts and domain); generator knobs are not stored in text form.
StatusOr<Workload> LoadText(const std::string& path);

/// Writes `workload` in the binary format.
Status SaveBinary(const Workload& workload, const std::string& path);

/// Reads a binary-format workload.
StatusOr<Workload> LoadBinary(const std::string& path);

}  // namespace apcm::workload

#endif  // APCM_WORKLOAD_TRACE_H_
