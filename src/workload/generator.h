#ifndef APCM_WORKLOAD_GENERATOR_H_
#define APCM_WORKLOAD_GENERATOR_H_

#include <vector>

#include "src/base/status.h"
#include "src/be/catalog.h"
#include "src/be/event.h"
#include "src/be/expression.h"
#include "src/workload/spec.h"

namespace apcm::workload {

/// A fully materialized synthetic workload.
struct Workload {
  WorkloadSpec spec;
  Catalog catalog;  ///< attributes "a0".."aN-1", all with the spec's domain
  std::vector<BooleanExpression> subscriptions;
  std::vector<Event> events;
};

/// Generates a workload deterministically from `spec` (same spec ⇒ same
/// workload, bit for bit). Returns InvalidArgument if the spec fails
/// validation.
StatusOr<Workload> Generate(const WorkloadSpec& spec);

/// Generates only the subscriptions of `spec` (events skipped); useful for
/// build-cost and memory experiments.
StatusOr<std::vector<BooleanExpression>> GenerateSubscriptions(
    const WorkloadSpec& spec);

/// Deterministically shuffles `events` in place with `seed` (used by the OSR
/// experiments to destroy stream locality before re-ordering recovers it).
void ShuffleEvents(std::vector<Event>* events, uint64_t seed);

}  // namespace apcm::workload

#endif  // APCM_WORKLOAD_GENERATOR_H_
