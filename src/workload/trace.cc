#include "src/workload/trace.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/base/string_util.h"
#include "src/be/parser.h"

namespace apcm::workload {
namespace {

constexpr char kTextMagic[] = "apcm-workload-text 1";
// v2 embeds the full WorkloadSpec after the magic, so a binary trace is a
// self-describing, regenerable experiment input.
constexpr char kBinaryMagic[] = "APCMWL2";

// --- binary primitives (little-endian; we only target little-endian hosts,
// checked at build time below) ---
static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  if (len > (1u << 20)) return false;  // sanity bound on name length
  s->resize(len);
  in.read(s->data(), len);
  return in.good();
}

}  // namespace

Status SaveText(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << kTextMagic << "\n";
  out << "# grammar: 'sub <id>: <pred> and <pred> ...' / 'event: a=1, b=2'\n";
  out << "attributes " << workload.catalog.size() << "\n";
  for (AttributeId a = 0; a < workload.catalog.size(); ++a) {
    const ValueInterval domain = workload.catalog.Domain(a);
    out << "attr " << workload.catalog.Name(a) << " " << domain.lo << " "
        << domain.hi << "\n";
  }
  for (const auto& sub : workload.subscriptions) {
    out << "sub " << sub.id() << ":";
    if (sub.predicates().empty()) {
      out << " <true>";
    } else {
      for (size_t i = 0; i < sub.predicates().size(); ++i) {
        out << (i == 0 ? " " : " and ")
            << sub.predicates()[i].ToString(&workload.catalog);
      }
    }
    out << "\n";
  }
  for (const auto& event : workload.events) {
    out << "event: " << event.ToString(&workload.catalog) << "\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<Workload> LoadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line) || TrimWhitespace(line) != kTextMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an apcm text workload");
  }
  Workload workload;
  Parser parser(&workload.catalog);
  while (std::getline(in, line)) {
    std::string_view text = TrimWhitespace(line);
    if (text.empty() || text.front() == '#') continue;
    if (StartsWith(text, "attributes ")) continue;  // informational count
    if (StartsWith(text, "attr ")) {
      std::istringstream fields{std::string(text.substr(5))};
      std::string name;
      Value lo = 0;
      Value hi = 0;
      if (!(fields >> name >> lo >> hi)) {
        return Status::InvalidArgument("malformed attr line: " + line);
      }
      APCM_RETURN_NOT_OK(
          workload.catalog.AddAttribute(name, lo, hi).status());
      continue;
    }
    if (StartsWith(text, "sub ")) {
      const size_t colon = text.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("malformed sub line: " + line);
      }
      APCM_ASSIGN_OR_RETURN(int64_t id,
                            ParseInt64(text.substr(4, colon - 4)));
      APCM_ASSIGN_OR_RETURN(
          BooleanExpression expr,
          parser.ParseExpression(static_cast<SubscriptionId>(id),
                                 text.substr(colon + 1)));
      workload.subscriptions.push_back(std::move(expr));
      continue;
    }
    if (StartsWith(text, "event:")) {
      APCM_ASSIGN_OR_RETURN(Event event, parser.ParseEvent(text.substr(6)));
      workload.events.push_back(std::move(event));
      continue;
    }
    return Status::InvalidArgument("unrecognized line: " + line);
  }
  workload.spec.num_subscriptions =
      static_cast<uint32_t>(workload.subscriptions.size());
  workload.spec.num_events = static_cast<uint32_t>(workload.events.size());
  workload.spec.num_attributes = static_cast<uint32_t>(workload.catalog.size());
  return workload;
}

namespace {

void WriteSpec(std::ofstream& out, const WorkloadSpec& spec) {
  WritePod<uint64_t>(out, spec.seed);
  WritePod<uint32_t>(out, spec.num_subscriptions);
  WritePod<uint32_t>(out, spec.num_events);
  WritePod<uint32_t>(out, spec.num_attributes);
  WritePod<int64_t>(out, spec.domain_min);
  WritePod<int64_t>(out, spec.domain_max);
  WritePod<uint32_t>(out, spec.min_predicates);
  WritePod<uint32_t>(out, spec.max_predicates);
  WritePod<uint32_t>(out, spec.min_event_attrs);
  WritePod<uint32_t>(out, spec.max_event_attrs);
  WritePod<double>(out, spec.attribute_zipf);
  WritePod<double>(out, spec.value_zipf);
  WritePod<double>(out, spec.equality_fraction);
  WritePod<double>(out, spec.in_fraction);
  WritePod<double>(out, spec.ne_fraction);
  WritePod<double>(out, spec.inequality_fraction);
  WritePod<uint32_t>(out, spec.in_set_size);
  WritePod<double>(out, spec.predicate_width);
  WritePod<double>(out, spec.operand_grid);
  WritePod<double>(out, spec.seeded_event_fraction);
  WritePod<double>(out, spec.event_locality);
}

bool ReadSpec(std::ifstream& in, WorkloadSpec* spec) {
  return ReadPod(in, &spec->seed) && ReadPod(in, &spec->num_subscriptions) &&
         ReadPod(in, &spec->num_events) &&
         ReadPod(in, &spec->num_attributes) &&
         ReadPod(in, &spec->domain_min) && ReadPod(in, &spec->domain_max) &&
         ReadPod(in, &spec->min_predicates) &&
         ReadPod(in, &spec->max_predicates) &&
         ReadPod(in, &spec->min_event_attrs) &&
         ReadPod(in, &spec->max_event_attrs) &&
         ReadPod(in, &spec->attribute_zipf) &&
         ReadPod(in, &spec->value_zipf) &&
         ReadPod(in, &spec->equality_fraction) &&
         ReadPod(in, &spec->in_fraction) && ReadPod(in, &spec->ne_fraction) &&
         ReadPod(in, &spec->inequality_fraction) &&
         ReadPod(in, &spec->in_set_size) &&
         ReadPod(in, &spec->predicate_width) &&
         ReadPod(in, &spec->operand_grid) &&
         ReadPod(in, &spec->seeded_event_fraction) &&
         ReadPod(in, &spec->event_locality);
}

}  // namespace

Status SaveBinary(const Workload& workload, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  WriteSpec(out, workload.spec);
  WritePod<uint32_t>(out, static_cast<uint32_t>(workload.catalog.size()));
  for (AttributeId a = 0; a < workload.catalog.size(); ++a) {
    WriteString(out, workload.catalog.Name(a));
    const ValueInterval domain = workload.catalog.Domain(a);
    WritePod<int64_t>(out, domain.lo);
    WritePod<int64_t>(out, domain.hi);
  }
  WritePod<uint32_t>(out, static_cast<uint32_t>(workload.subscriptions.size()));
  for (const auto& sub : workload.subscriptions) {
    WritePod<uint32_t>(out, sub.id());
    WritePod<uint16_t>(out, static_cast<uint16_t>(sub.predicates().size()));
    for (const Predicate& pred : sub.predicates()) {
      WritePod<uint32_t>(out, pred.attribute());
      WritePod<uint8_t>(out, static_cast<uint8_t>(pred.op()));
      WritePod<int64_t>(out, pred.v1());
      WritePod<int64_t>(out, pred.v2());
      WritePod<uint16_t>(out, static_cast<uint16_t>(pred.values().size()));
      for (Value v : pred.values()) WritePod<int64_t>(out, v);
    }
  }
  WritePod<uint32_t>(out, static_cast<uint32_t>(workload.events.size()));
  for (const auto& event : workload.events) {
    WritePod<uint16_t>(out, static_cast<uint16_t>(event.entries().size()));
    for (const auto& entry : event.entries()) {
      WritePod<uint32_t>(out, entry.attr);
      WritePod<int64_t>(out, entry.value);
    }
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<Workload> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::string_view(magic, sizeof(magic) - 1) != kBinaryMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an apcm binary workload");
  }
  const auto truncated = [&path] {
    return Status::IOError("truncated binary workload '" + path + "'");
  };
  Workload workload;
  if (!ReadSpec(in, &workload.spec)) return truncated();
  uint32_t num_attrs = 0;
  if (!ReadPod(in, &num_attrs)) return truncated();
  for (uint32_t a = 0; a < num_attrs; ++a) {
    std::string name;
    int64_t lo = 0;
    int64_t hi = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &lo) || !ReadPod(in, &hi)) {
      return truncated();
    }
    APCM_RETURN_NOT_OK(workload.catalog.AddAttribute(name, lo, hi).status());
  }
  uint32_t num_subs = 0;
  if (!ReadPod(in, &num_subs)) return truncated();
  // Clamp speculative reservation: a corrupted count must not trigger a
  // multi-gigabyte allocation before the per-record reads fail.
  workload.subscriptions.reserve(std::min<uint32_t>(num_subs, 1u << 20));
  for (uint32_t s = 0; s < num_subs; ++s) {
    uint32_t id = 0;
    uint16_t num_preds = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &num_preds)) return truncated();
    std::vector<Predicate> predicates;
    predicates.reserve(num_preds);
    for (uint16_t p = 0; p < num_preds; ++p) {
      uint32_t attr = 0;
      uint8_t op = 0;
      int64_t v1 = 0;
      int64_t v2 = 0;
      uint16_t num_values = 0;
      if (!ReadPod(in, &attr) || !ReadPod(in, &op) || !ReadPod(in, &v1) ||
          !ReadPod(in, &v2) || !ReadPod(in, &num_values)) {
        return truncated();
      }
      if (op > static_cast<uint8_t>(Op::kIn)) {
        return Status::InvalidArgument("corrupt operator byte in '" + path +
                                       "'");
      }
      // Validate operand invariants before construction: a corrupted file
      // must surface as a Status, not a failed invariant check.
      const Op op_enum = static_cast<Op>(op);
      if (op_enum == Op::kIn) {
        if (num_values == 0) {
          return Status::InvalidArgument("empty 'in' set in '" + path + "'");
        }
        std::vector<Value> values(num_values);
        for (auto& v : values) {
          if (!ReadPod(in, &v)) return truncated();
        }
        predicates.emplace_back(attr, std::move(values));
      } else if (op_enum == Op::kBetween) {
        if (v1 > v2) {
          return Status::InvalidArgument("inverted 'between' bounds in '" +
                                         path + "'");
        }
        predicates.emplace_back(attr, v1, v2);
      } else {
        predicates.emplace_back(attr, op_enum, v1);
      }
    }
    APCM_ASSIGN_OR_RETURN(
        BooleanExpression expr,
        BooleanExpression::Create(id, std::move(predicates)));
    workload.subscriptions.push_back(std::move(expr));
  }
  uint32_t num_events = 0;
  if (!ReadPod(in, &num_events)) return truncated();
  workload.events.reserve(std::min<uint32_t>(num_events, 1u << 20));
  for (uint32_t e = 0; e < num_events; ++e) {
    uint16_t num_entries = 0;
    if (!ReadPod(in, &num_entries)) return truncated();
    std::vector<Event::Entry> entries;
    entries.reserve(num_entries);
    for (uint16_t i = 0; i < num_entries; ++i) {
      uint32_t attr = 0;
      int64_t value = 0;
      if (!ReadPod(in, &attr) || !ReadPod(in, &value)) return truncated();
      entries.push_back(Event::Entry{attr, value});
    }
    APCM_ASSIGN_OR_RETURN(Event event, Event::Create(std::move(entries)));
    workload.events.push_back(std::move(event));
  }
  workload.spec.num_subscriptions =
      static_cast<uint32_t>(workload.subscriptions.size());
  workload.spec.num_events = static_cast<uint32_t>(workload.events.size());
  workload.spec.num_attributes = static_cast<uint32_t>(workload.catalog.size());
  return workload;
}

}  // namespace apcm::workload
