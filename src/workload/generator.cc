#include "src/workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/macros.h"
#include "src/base/rng.h"
#include "src/base/zipf.h"

namespace apcm::workload {
namespace {

// Sub-seeds so that subscriptions are identical whether or not events are
// generated, and vice versa.
constexpr uint64_t kSubscriptionStream = 0x5AB5C81BE5ULL;
constexpr uint64_t kEventStream = 0xE7E475ULL;

/// Draws `count` distinct attribute ids from [0, universe) with the given
/// popularity distribution. Falls back to filling with the smallest unused
/// ids if skew makes rejection sampling slow (can only happen when count is
/// close to the effective support of the distribution).
void SampleDistinctAttrs(uint32_t count, [[maybe_unused]] uint32_t universe,
                         const ZipfDistribution& zipf, Rng& rng,
                         std::vector<AttributeId>* out) {
  out->clear();
  APCM_DCHECK(count <= universe);
  std::unordered_set<AttributeId> seen;
  seen.reserve(count * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = 50ULL * count + 100;
  while (seen.size() < count && attempts < max_attempts) {
    ++attempts;
    const auto attr = static_cast<AttributeId>(zipf.Sample(rng));
    if (seen.insert(attr).second) out->push_back(attr);
  }
  for (AttributeId a = 0; out->size() < count; ++a) {
    APCM_DCHECK(a < universe);
    if (seen.insert(a).second) out->push_back(a);
  }
  std::sort(out->begin(), out->end());
}

class GeneratorImpl {
 public:
  explicit GeneratorImpl(const WorkloadSpec& spec)
      : spec_(spec),
        domain_{spec.domain_min, spec.domain_max},
        attr_zipf_(spec.num_attributes, spec.attribute_zipf),
        value_zipf_(domain_.Width(), spec.value_zipf),
        grid_step_(spec.operand_grid > 0
                       ? std::max<Value>(
                             1, static_cast<Value>(
                                    spec.operand_grid *
                                    static_cast<double>(domain_.Width())))
                       : 1) {}

  std::vector<BooleanExpression> GenerateSubscriptions() {
    Rng rng(spec_.seed ^ kSubscriptionStream);
    std::vector<BooleanExpression> subs;
    subs.reserve(spec_.num_subscriptions);
    std::vector<AttributeId> attrs;
    for (uint32_t i = 0; i < spec_.num_subscriptions; ++i) {
      const auto k = static_cast<uint32_t>(
          rng.UniformInt(spec_.min_predicates, spec_.max_predicates));
      SampleDistinctAttrs(k, spec_.num_attributes, attr_zipf_, rng, &attrs);
      std::vector<Predicate> predicates;
      predicates.reserve(k);
      for (AttributeId attr : attrs) {
        predicates.push_back(MakePredicate(attr, rng));
      }
      subs.push_back(BooleanExpression::FromSorted(
          static_cast<SubscriptionId>(i), std::move(predicates)));
    }
    return subs;
  }

  std::vector<Event> GenerateEvents(
      const std::vector<BooleanExpression>& subs) {
    Rng rng(spec_.seed ^ kEventStream);
    std::vector<Event> events;
    events.reserve(spec_.num_events);
    std::vector<AttributeId> template_attrs;  // last event's attribute set
    std::vector<AttributeId> attrs;
    for (uint32_t j = 0; j < spec_.num_events; ++j) {
      std::vector<Event::Entry> entries;
      const bool reuse_template = !template_attrs.empty() &&
                                  rng.Bernoulli(spec_.event_locality);
      if (reuse_template) {
        entries.reserve(template_attrs.size());
        for (AttributeId attr : template_attrs) {
          entries.push_back(Event::Entry{attr, SampleValue(rng)});
        }
      } else if (!subs.empty() && rng.Bernoulli(spec_.seeded_event_fraction)) {
        entries = SeededEntries(subs[rng.Uniform(subs.size())], rng);
      } else {
        const auto m = static_cast<uint32_t>(
            rng.UniformInt(spec_.min_event_attrs, spec_.max_event_attrs));
        SampleDistinctAttrs(m, spec_.num_attributes, attr_zipf_, rng, &attrs);
        entries.reserve(m);
        for (AttributeId attr : attrs) {
          entries.push_back(Event::Entry{attr, SampleValue(rng)});
        }
      }
      template_attrs.clear();
      template_attrs.reserve(entries.size());
      for (const auto& e : entries) template_attrs.push_back(e.attr);
      events.push_back(Event::FromSorted(std::move(entries)));
    }
    return events;
  }

 private:
  Value SampleValue(Rng& rng) {
    if (spec_.value_zipf == 0) {
      return rng.UniformInt(domain_.lo, domain_.hi);
    }
    return domain_.lo + static_cast<Value>(value_zipf_.Sample(rng));
  }

  /// Snaps a predicate operand to the canonical grid (see operand_grid).
  Value QuantizeOperand(Value v) {
    if (grid_step_ <= 1) return v;
    const Value offset = v - domain_.lo;
    return std::min(domain_.lo + (offset / grid_step_) * grid_step_,
                    domain_.hi);
  }

  /// Width of a range-style predicate in domain points: the spec's relative
  /// width jittered by ±50% (snapped to the grid), at least 1.
  Value SampleWidth(Rng& rng) {
    const double frac = spec_.predicate_width * (0.5 + rng.UniformDouble());
    const auto domain_width = static_cast<double>(domain_.Width());
    auto w = static_cast<Value>(frac * domain_width + 0.5);
    if (grid_step_ > 1) w = std::max<Value>((w / grid_step_) * grid_step_, 1);
    return std::clamp<Value>(w, 1, static_cast<Value>(domain_.Width()));
  }

  Predicate MakePredicate(AttributeId attr, Rng& rng) {
    const double r = rng.UniformDouble();
    double acc = spec_.equality_fraction;
    if (r < acc) {
      return Predicate(attr, Op::kEq, QuantizeOperand(SampleValue(rng)));
    }
    acc += spec_.in_fraction;
    if (r < acc) {
      std::vector<Value> values;
      values.reserve(spec_.in_set_size);
      for (uint32_t i = 0; i < spec_.in_set_size; ++i) {
        values.push_back(QuantizeOperand(SampleValue(rng)));
      }
      return Predicate(attr, std::move(values));  // ctor sorts + dedupes
    }
    acc += spec_.ne_fraction;
    if (r < acc) {
      return Predicate(attr, Op::kNe, QuantizeOperand(SampleValue(rng)));
    }
    acc += spec_.inequality_fraction;
    if (r < acc) {
      // One-sided range whose satisfied width is SampleWidth() points.
      const Value w = SampleWidth(rng);
      switch (rng.Uniform(4)) {
        case 0:
          return Predicate(attr, Op::kLe, domain_.lo + w - 1);
        case 1:
          return Predicate(attr, Op::kLt,
                           std::min(domain_.lo + w, domain_.hi));
        case 2:
          return Predicate(attr, Op::kGe, domain_.hi - w + 1);
        default:
          return Predicate(attr, Op::kGt,
                           std::max(domain_.hi - w, domain_.lo));
      }
    }
    // kBetween: width-w interval placed uniformly inside the domain, start
    // snapped to the grid.
    const Value w = SampleWidth(rng);
    const Value start =
        QuantizeOperand(rng.UniformInt(domain_.lo, domain_.hi - w + 1));
    return Predicate(attr, start, std::min(start + w - 1, domain_.hi));
  }

  /// A value satisfying `pred`, or the closest achievable if the predicate is
  /// unsatisfiable within the domain (possible only for kNe on a 1-point
  /// domain and for clipped inequalities).
  Value SatisfyingValue(const Predicate& pred, Rng& rng) {
    switch (pred.op()) {
      case Op::kEq:
        return pred.v1();
      case Op::kNe: {
        if (pred.v1() < domain_.hi) return rng.UniformInt(
            pred.v1() + 1, domain_.hi);
        if (pred.v1() > domain_.lo) return rng.UniformInt(
            domain_.lo, pred.v1() - 1);
        return pred.v1();
      }
      case Op::kLt:
        return pred.v1() > domain_.lo ? rng.UniformInt(domain_.lo,
                                                       pred.v1() - 1)
                                      : domain_.lo;
      case Op::kLe:
        return rng.UniformInt(domain_.lo, std::min(pred.v1(), domain_.hi));
      case Op::kGt:
        return pred.v1() < domain_.hi ? rng.UniformInt(pred.v1() + 1,
                                                       domain_.hi)
                                      : domain_.hi;
      case Op::kGe:
        return rng.UniformInt(std::max(pred.v1(), domain_.lo), domain_.hi);
      case Op::kBetween:
        return rng.UniformInt(std::max(pred.v1(), domain_.lo),
                              std::min(pred.v2(), domain_.hi));
      case Op::kIn:
        return pred.values()[rng.Uniform(pred.values().size())];
    }
    return domain_.lo;
  }

  /// Entries of an event constructed to satisfy every predicate of `sub`,
  /// padded with extra random attributes up to the spec's event size.
  std::vector<Event::Entry> SeededEntries(const BooleanExpression& sub,
                                          Rng& rng) {
    std::vector<Event::Entry> entries;
    const auto target = static_cast<uint32_t>(
        rng.UniformInt(spec_.min_event_attrs, spec_.max_event_attrs));
    entries.reserve(std::max<size_t>(sub.size(), target));
    std::unordered_set<AttributeId> used;
    for (const Predicate& pred : sub.predicates()) {
      entries.push_back(
          Event::Entry{pred.attribute(), SatisfyingValue(pred, rng)});
      used.insert(pred.attribute());
    }
    uint64_t attempts = 0;
    while (entries.size() < target && used.size() < spec_.num_attributes &&
           attempts < 50ULL * target) {
      ++attempts;
      const auto attr = static_cast<AttributeId>(attr_zipf_.Sample(rng));
      if (used.insert(attr).second) {
        entries.push_back(Event::Entry{attr, SampleValue(rng)});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Event::Entry& a, const Event::Entry& b) {
                return a.attr < b.attr;
              });
    return entries;
  }

  const WorkloadSpec& spec_;
  const ValueInterval domain_;
  ZipfDistribution attr_zipf_;
  ZipfDistribution value_zipf_;
  const Value grid_step_;
};

Catalog MakeCatalog(const WorkloadSpec& spec) {
  Catalog catalog;
  for (uint32_t i = 0; i < spec.num_attributes; ++i) {
    auto added = catalog.AddAttribute("a" + std::to_string(i),
                                      spec.domain_min, spec.domain_max);
    APCM_CHECK(added.ok());
  }
  return catalog;
}

}  // namespace

StatusOr<Workload> Generate(const WorkloadSpec& spec) {
  APCM_RETURN_NOT_OK(spec.Validate());
  Workload workload;
  workload.spec = spec;
  workload.catalog = MakeCatalog(spec);
  GeneratorImpl generator(spec);
  workload.subscriptions = generator.GenerateSubscriptions();
  workload.events = generator.GenerateEvents(workload.subscriptions);
  return workload;
}

StatusOr<std::vector<BooleanExpression>> GenerateSubscriptions(
    const WorkloadSpec& spec) {
  APCM_RETURN_NOT_OK(spec.Validate());
  GeneratorImpl generator(spec);
  return generator.GenerateSubscriptions();
}

void ShuffleEvents(std::vector<Event>* events, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = events->size(); i > 1; --i) {
    std::swap((*events)[i - 1], (*events)[rng.Uniform(i)]);
  }
}

}  // namespace apcm::workload
