#ifndef APCM_WORKLOAD_SPEC_H_
#define APCM_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/be/value.h"

namespace apcm::workload {

/// Parameters of a synthetic workload, mirroring the knobs of the BEGen
/// generator used by the BE-Tree / A-PCM evaluations: dimensionality, domain
/// size, predicates per expression, operator mix, skew, event size, and the
/// match-probability controls.
struct WorkloadSpec {
  /// Master seed; the whole workload is a deterministic function of the spec.
  uint64_t seed = 42;

  /// Number of Boolean expressions (subscriptions).
  uint32_t num_subscriptions = 100'000;
  /// Number of events in the stream.
  uint32_t num_events = 1'000;

  /// Dimensionality: size of the attribute universe.
  uint32_t num_attributes = 400;
  /// Every attribute ranges over [domain_min, domain_max].
  Value domain_min = 0;
  Value domain_max = 10'000;

  /// Predicates per subscription, uniform in [min, max].
  uint32_t min_predicates = 5;
  uint32_t max_predicates = 15;
  /// Attributes per event, uniform in [min, max].
  uint32_t min_event_attrs = 15;
  uint32_t max_event_attrs = 35;

  /// Zipf exponent of attribute popularity (0 = uniform). Both expressions
  /// and events draw attributes from this distribution, which concentrates
  /// predicates on popular attributes — the commonality that compression
  /// exploits.
  double attribute_zipf = 1.0;
  /// Zipf exponent of value popularity within a domain (0 = uniform).
  double value_zipf = 0.0;

  /// Operator mix; fractions must sum to <= 1, the remainder is kBetween.
  double equality_fraction = 0.25;
  double in_fraction = 0.05;
  double ne_fraction = 0.02;
  double inequality_fraction = 0.18;  ///< split evenly among < <= > >=
  /// Cardinality of kIn value sets.
  uint32_t in_set_size = 5;

  /// Relative width of range-style predicates as a fraction of the domain
  /// (jittered by ±50% per predicate). Wider predicates are less selective.
  double predicate_width = 0.10;

  /// Operand quantization: when > 0, every generated predicate operand
  /// (equality constants, range endpoints, widths) is snapped to a grid of
  /// step `operand_grid * domain_width`. Real subscription books draw
  /// operands from small canonical sets (bid floors, age brackets, category
  /// ids); the grid reproduces that duplication — which is what the
  /// predicate dictionary compresses. 0 disables quantization.
  double operand_grid = 0.0;

  /// Fraction of events that are *seeded*: generated to fully satisfy one
  /// randomly chosen subscription (plus extra random attributes). This is the
  /// primary match-probability control — unseeded events almost never match
  /// a conjunctive expression by chance.
  double seeded_event_fraction = 0.5;

  /// Stream locality for the OSR experiments: probability that an event
  /// reuses the previous event's attribute set (a "burst") instead of
  /// drawing a fresh one. 0 = fully independent stream.
  double event_locality = 0.0;

  /// Validates ranges and fraction sums.
  Status Validate() const;

  /// One-line human-readable summary for benchmark headers.
  std::string ToString() const;
};

}  // namespace apcm::workload

#endif  // APCM_WORKLOAD_SPEC_H_
