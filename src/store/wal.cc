#include "src/store/wal.h"

#include <limits>
#include <utility>

#include "src/base/crc32c.h"
#include "src/base/macros.h"

namespace apcm::store {
namespace {

/// Smallest possible encoded predicate: attr + op + v1 + v2 + value count.
constexpr size_t kMinPredicateBytes = 4 + 1 + 8 + 8 + 4;

/// Reconstructs one predicate, validating every constructor precondition
/// (the Predicate constructors APCM_CHECK them, so feeding them unvalidated
/// bytes would turn log corruption into a crash).
bool DecodePredicate(ByteReader* reader, std::vector<Predicate>* out) {
  uint32_t attr = 0;
  uint8_t op_raw = 0;
  int64_t v1 = 0;
  int64_t v2 = 0;
  uint32_t nvalues = 0;
  if (!reader->U32(&attr) || !reader->U8(&op_raw) || !reader->I64(&v1) ||
      !reader->I64(&v2) || !reader->U32(&nvalues)) {
    return false;
  }
  if (op_raw > static_cast<uint8_t>(Op::kIn)) return false;
  const Op op = static_cast<Op>(op_raw);
  if (nvalues > reader->remaining() / sizeof(Value)) return false;
  std::vector<Value> values(nvalues);
  for (Value& v : values) {
    if (!reader->I64(&v)) return false;
  }
  switch (op) {
    case Op::kBetween:
      if (v1 > v2 || !values.empty()) return false;
      out->emplace_back(attr, v1, v2);
      return true;
    case Op::kIn:
      if (values.empty()) return false;
      out->emplace_back(attr, std::move(values));
      return true;
    default:
      if (!values.empty()) return false;
      out->emplace_back(attr, op, v1);
      return true;
  }
}

void EncodePayload(const WalRecord& record, std::string* out) {
  ByteWriter writer(out);
  writer.U64(record.seq);
  writer.U8(static_cast<uint8_t>(record.kind));
  writer.U32(record.id);
  switch (record.kind) {
    case WalRecord::Kind::kAdd:
      EncodePredicates(record.disjuncts.at(0), &writer);
      break;
    case WalRecord::Kind::kRemove:
      break;
    case WalRecord::Kind::kPriority:
      writer.F64(record.priority);
      break;
    case WalRecord::Kind::kAddDnf:
      writer.U32(static_cast<uint32_t>(record.disjuncts.size()));
      for (const auto& disjunct : record.disjuncts) {
        EncodePredicates(disjunct, &writer);
      }
      break;
  }
}

bool DecodePayload(std::string_view payload, WalRecord* record) {
  ByteReader reader(payload);
  uint8_t kind_raw = 0;
  if (!reader.U64(&record->seq) || !reader.U8(&kind_raw) ||
      !reader.U32(&record->id)) {
    return false;
  }
  if (kind_raw < static_cast<uint8_t>(WalRecord::Kind::kAdd) ||
      kind_raw > static_cast<uint8_t>(WalRecord::Kind::kAddDnf)) {
    return false;
  }
  record->kind = static_cast<WalRecord::Kind>(kind_raw);
  record->priority = 0;
  record->disjuncts.clear();
  switch (record->kind) {
    case WalRecord::Kind::kAdd: {
      record->disjuncts.emplace_back();
      if (!DecodePredicates(&reader, &record->disjuncts.back())) return false;
      break;
    }
    case WalRecord::Kind::kRemove:
      break;
    case WalRecord::Kind::kPriority:
      if (!reader.F64(&record->priority)) return false;
      break;
    case WalRecord::Kind::kAddDnf: {
      uint32_t ndisjuncts = 0;
      if (!reader.U32(&ndisjuncts)) return false;
      // Each disjunct needs at least a predicate count word; also keep the
      // internal-id block id..id+n-1 inside SubscriptionId range.
      if (ndisjuncts == 0 || ndisjuncts > reader.remaining() / 4 ||
          ndisjuncts - 1 > std::numeric_limits<SubscriptionId>::max() -
                               record->id) {
        return false;
      }
      record->disjuncts.resize(ndisjuncts);
      for (auto& disjunct : record->disjuncts) {
        if (!DecodePredicates(&reader, &disjunct)) return false;
      }
      break;
    }
  }
  return reader.exhausted();  // trailing garbage means a corrupt frame
}

}  // namespace

void EncodePredicates(const std::vector<Predicate>& predicates,
                      ByteWriter* writer) {
  writer->U32(static_cast<uint32_t>(predicates.size()));
  for (const Predicate& p : predicates) {
    writer->U32(p.attribute());
    writer->U8(static_cast<uint8_t>(p.op()));
    writer->I64(p.v1());
    writer->I64(p.v2());
    writer->U32(static_cast<uint32_t>(p.values().size()));
    for (const Value v : p.values()) writer->I64(v);
  }
}

bool DecodePredicates(ByteReader* reader, std::vector<Predicate>* out) {
  uint32_t count = 0;
  if (!reader->U32(&count)) return false;
  if (count == 0 || count > reader->remaining() / kMinPredicateBytes) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodePredicate(reader, out)) return false;
  }
  return true;
}

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  std::string payload;
  EncodePayload(record, &payload);
  APCM_CHECK(payload.size() <= kMaxWalPayloadBytes);
  ByteWriter writer(out);
  writer.U32(static_cast<uint32_t>(payload.size()));
  writer.U32(MaskCrc32c(Crc32c(0, payload.data(), payload.size())));
  out->append(payload);
}

WalDecodeResult DecodeWalBuffer(std::string_view data) {
  WalDecodeResult result;
  size_t pos = 0;
  while (pos < data.size()) {
    ByteReader header(data.substr(pos));
    uint32_t len = 0;
    uint32_t masked_crc = 0;
    if (!header.U32(&len) || !header.U32(&masked_crc)) {
      result.tail_error = "partial frame header";
      break;
    }
    if (len > kMaxWalPayloadBytes) {
      result.tail_error = "implausible payload length";
      break;
    }
    if (data.size() - pos - kWalFrameHeaderBytes < len) {
      result.tail_error = "truncated payload";
      break;
    }
    const std::string_view payload =
        data.substr(pos + kWalFrameHeaderBytes, len);
    if (Crc32c(0, payload.data(), payload.size()) !=
        UnmaskCrc32c(masked_crc)) {
      result.tail_error = "checksum mismatch";
      break;
    }
    WalRecord record;
    if (!DecodePayload(payload, &record)) {
      result.tail_error = "invalid record body";
      break;
    }
    result.records.push_back(std::move(record));
    pos += kWalFrameHeaderBytes + len;
  }
  result.valid_bytes = pos;
  result.torn = pos < data.size();
  return result;
}

}  // namespace apcm::store
