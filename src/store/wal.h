#ifndef APCM_STORE_WAL_H_
#define APCM_STORE_WAL_H_

/// \file
/// Write-ahead-log record format: the durable twin of the engine's
/// seq-numbered subscription change log (DESIGN §3.4). Pure codec — framing,
/// encoding, and validation over in-memory buffers; file handling, fsync
/// policy, and crash seams live in store::DurableStore so this layer can be
/// fuzzed byte-by-byte in isolation.
///
/// Frame layout (little-endian):
///
///     u32 payload_len | u32 masked_crc32c(payload) | payload bytes
///
/// Payload layout:
///
///     u64 seq | u8 kind | body
///     kAdd:      u32 id | predicates
///     kRemove:   u32 id
///     kPriority: u32 id | f64 priority
///     kAddDnf:   u32 first_id | u32 num_disjuncts | per disjunct predicates
///     predicates: u32 count | per predicate:
///                 u32 attr | u8 op | i64 v1 | i64 v2 | u32 nvalues | i64...
///
/// A DNF subscription is one atomic record (its internal disjunct ids are
/// first_id..first_id+n-1), so replay can never observe half a group.
/// Decoding stops cleanly at the first torn or corrupt frame — the tail of
/// a crashed log — and reports how much of the buffer was valid.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/be/predicate.h"

namespace apcm::store {

/// Upper bound on one record's payload; a corrupted length prefix beyond
/// this is treated as a torn tail instead of a huge allocation.
inline constexpr uint32_t kMaxWalPayloadBytes = 16u << 20;

/// Bytes of framing per record (length prefix + checksum).
inline constexpr size_t kWalFrameHeaderBytes = 8;

/// One durable subscription mutation.
struct WalRecord {
  enum class Kind : uint8_t {
    kAdd = 1,       ///< register one conjunction under `id`
    kRemove = 2,    ///< unregister `id` (a DNF group's external id removes all)
    kPriority = 3,  ///< set delivery priority of `id`
    kAddDnf = 4,    ///< register disjuncts under ids id, id+1, ...
  };

  uint64_t seq = 0;  ///< strictly increasing, assigned by the store
  Kind kind = Kind::kAdd;
  SubscriptionId id = 0;  ///< subject id; for kAddDnf the first internal id
  double priority = 0;    ///< kPriority only
  /// kAdd: exactly one entry; kAddDnf: one entry per disjunct.
  std::vector<std::vector<Predicate>> disjuncts;

  /// Change-log slots this record occupies on replay (kAddDnf consumes one
  /// per disjunct; everything else one).
  uint64_t num_ops() const {
    return kind == Kind::kAddDnf ? disjuncts.size() : 1;
  }
};

/// Appends the framed encoding of `record` to `*out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

/// Outcome of decoding a WAL buffer: every record of the longest valid
/// prefix, plus how and where decoding stopped.
struct WalDecodeResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  ///< prefix length covered by intact frames
  /// True when trailing bytes exist past valid_bytes — a torn or corrupt
  /// tail (partial frame, bad checksum, nonsense length, invalid body).
  bool torn = false;
  std::string tail_error;  ///< empty when the buffer ended exactly clean
};

/// Decodes every intact record from `data`. Never fails hard: corruption
/// anywhere truncates the result at the last valid frame and sets `torn`.
/// Sequence monotonicity is NOT checked here (segments are validated for
/// continuity by the store, which sees all of them).
WalDecodeResult DecodeWalBuffer(std::string_view data);

/// Little-endian append-only byte writer shared by the WAL and checkpoint
/// codecs.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(std::string_view data) {
    U32(static_cast<uint32_t>(data.size()));
    out_->append(data);
  }

 private:
  void Raw(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

  std::string* out_;
};

/// Bounds-checked little-endian reader; every getter reports underflow
/// instead of reading past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Bytes(std::string_view* out) {
    uint32_t len = 0;
    if (!U32(&len) || len > remaining()) return false;
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* v, size_t len) {
    if (remaining() < len) return false;
    std::memcpy(v, data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Serializes one predicate list (the shared `predicates` production above).
void EncodePredicates(const std::vector<Predicate>& predicates,
                      ByteWriter* writer);

/// Parses a predicate list; false on underflow or structurally invalid
/// operands (unknown op, inverted between, empty in-set, oversized counts).
bool DecodePredicates(ByteReader* reader, std::vector<Predicate>* out);

}  // namespace apcm::store

#endif  // APCM_STORE_WAL_H_
