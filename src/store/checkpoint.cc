#include "src/store/checkpoint.h"

#include <utility>

#include "src/base/crc32c.h"
#include "src/base/macros.h"
#include "src/store/wal.h"

namespace apcm::store {
namespace {

constexpr std::string_view kMagic = "APCMCKP1";

Status Corrupt(const char* what) {
  return Status::IOError(std::string("corrupt checkpoint: ") + what);
}

}  // namespace

std::string EncodeCheckpoint(const CheckpointState& state) {
  std::string out;
  out.append(kMagic);
  ByteWriter writer(&out);
  writer.U64(state.wal_seq);
  writer.U32(state.next_sub_id);
  writer.U32(static_cast<uint32_t>(state.subscriptions.size()));
  for (const auto& [id, predicates] : state.subscriptions) {
    writer.U32(id);
    EncodePredicates(predicates, &writer);
  }
  writer.U32(static_cast<uint32_t>(state.priorities.size()));
  for (const auto& [id, priority] : state.priorities) {
    writer.U32(id);
    writer.F64(priority);
  }
  writer.U32(static_cast<uint32_t>(state.dnf_groups.size()));
  for (const auto& [external, internals] : state.dnf_groups) {
    writer.U32(external);
    writer.U32(static_cast<uint32_t>(internals.size()));
    for (const SubscriptionId internal : internals) writer.U32(internal);
  }
  if (!state.shard_images.empty()) {
    writer.U8(2);
    writer.Bytes(state.index_kind);
    writer.U32(static_cast<uint32_t>(state.shard_images.size()));
    for (const std::string& image : state.shard_images) writer.Bytes(image);
  } else if (!state.index_kind.empty()) {
    writer.U8(1);
    writer.Bytes(state.index_kind);
    writer.Bytes(state.index_image);
  } else {
    writer.U8(0);
  }
  writer.U32(MaskCrc32c(Crc32c(0, out.data(), out.size())));
  return out;
}

StatusOr<CheckpointState> DecodeCheckpoint(std::string_view data) {
  if (data.size() < kMagic.size() + sizeof(uint32_t)) {
    return Corrupt("too small");
  }
  if (data.substr(0, kMagic.size()) != kMagic) return Corrupt("bad magic");
  // Validate the trailing whole-file checksum before trusting any field.
  const size_t body_size = data.size() - sizeof(uint32_t);
  ByteReader crc_reader(data.substr(body_size));
  uint32_t masked_crc = 0;
  APCM_CHECK(crc_reader.U32(&masked_crc));
  if (Crc32c(0, data.data(), body_size) != UnmaskCrc32c(masked_crc)) {
    return Corrupt("checksum mismatch");
  }

  ByteReader reader(data.substr(kMagic.size(), body_size - kMagic.size()));
  CheckpointState state;
  uint32_t nsubs = 0;
  if (!reader.U64(&state.wal_seq) || !reader.U32(&state.next_sub_id) ||
      !reader.U32(&nsubs)) {
    return Corrupt("truncated header");
  }
  if (nsubs > reader.remaining() / 8) return Corrupt("implausible sub count");
  state.subscriptions.resize(nsubs);
  for (auto& [id, predicates] : state.subscriptions) {
    if (!reader.U32(&id) || !DecodePredicates(&reader, &predicates)) {
      return Corrupt("invalid subscription entry");
    }
  }
  uint32_t nprios = 0;
  if (!reader.U32(&nprios) || nprios > reader.remaining() / 12) {
    return Corrupt("implausible priority count");
  }
  state.priorities.resize(nprios);
  for (auto& [id, priority] : state.priorities) {
    if (!reader.U32(&id) || !reader.F64(&priority)) {
      return Corrupt("invalid priority entry");
    }
  }
  uint32_t ngroups = 0;
  if (!reader.U32(&ngroups) || ngroups > reader.remaining() / 8) {
    return Corrupt("implausible group count");
  }
  state.dnf_groups.resize(ngroups);
  for (auto& [external, internals] : state.dnf_groups) {
    uint32_t ninternals = 0;
    if (!reader.U32(&external) || !reader.U32(&ninternals) ||
        ninternals == 0 || ninternals > reader.remaining() / 4) {
      return Corrupt("invalid group entry");
    }
    internals.resize(ninternals);
    for (SubscriptionId& internal : internals) {
      if (!reader.U32(&internal)) return Corrupt("invalid group entry");
    }
  }
  uint8_t has_index = 0;
  if (!reader.U8(&has_index) || has_index > 2) {
    return Corrupt("invalid index flag");
  }
  if (has_index == 1) {
    std::string_view kind;
    std::string_view image;
    if (!reader.Bytes(&kind) || kind.empty() || !reader.Bytes(&image)) {
      return Corrupt("invalid index section");
    }
    state.index_kind.assign(kind);
    state.index_image.assign(image);
  } else if (has_index == 2) {
    std::string_view kind;
    uint32_t nshards = 0;
    if (!reader.Bytes(&kind) || kind.empty() || !reader.U32(&nshards) ||
        nshards == 0 || nshards > reader.remaining()) {
      return Corrupt("invalid shard index section");
    }
    state.index_kind.assign(kind);
    state.shard_images.resize(nshards);
    for (std::string& image : state.shard_images) {
      std::string_view bytes;
      if (!reader.Bytes(&bytes)) return Corrupt("invalid shard image");
      image.assign(bytes);
    }
  }
  if (!reader.exhausted()) return Corrupt("trailing bytes");
  return state;
}

}  // namespace apcm::store
