#ifndef APCM_STORE_CHECKPOINT_H_
#define APCM_STORE_CHECKPOINT_H_

/// \file
/// Matcher checkpoint image: a point-in-time capture of the engine's durable
/// subscription state, named by the WAL sequence it covers. Recovery loads
/// the newest intact checkpoint and replays only WAL records with
/// `seq > wal_seq`. Like the WAL codec this is pure bytes-in/bytes-out;
/// file placement and the atomic-rename protocol live in DurableStore.
///
/// Layout (little-endian):
///
///     "APCMCKP1" | u64 wal_seq | u32 next_sub_id
///     u32 nsubs     | per sub:   u32 id | predicates
///     u32 nprios    | per entry: u32 id | f64 priority
///     u32 ngroups   | per group: u32 external | u32 n | u32 internals...
///     u8 has_index  | index section (see below)
///     u32 masked_crc32c(everything above)
///
/// Index section by `has_index`:
///
///     0  none
///     1  index_kind bytes | index_image bytes
///     2  index_kind bytes | u32 nshards | per shard: image bytes
///
/// The optional index section embeds serialized matcher images (the
/// cluster_serialization v2 format via PcmMatcher::SaveIndex) so recovery
/// can skip the initial full rebuild when the engine runs a compatible
/// matcher kind. Form 2 is written by sharded engines (num_shards > 1): one
/// image per shard, in shard order, each loadable into the shard's inner
/// matcher (subscription→shard placement is the stable splitmix64 ShardOf,
/// so a checkpoint's shard images are only valid for the same shard count —
/// recovery falls back to a full rebuild when the counts differ).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/be/predicate.h"

namespace apcm::store {

struct CheckpointState {
  /// Every WAL record with seq <= wal_seq is reflected in this image.
  uint64_t wal_seq = 0;
  /// Engine id allocator watermark at capture time.
  SubscriptionId next_sub_id = 1;
  /// Live (non-tombstoned) subscriptions, ascending id.
  std::vector<std::pair<SubscriptionId, std::vector<Predicate>>> subscriptions;
  /// Non-default delivery priorities, ascending id.
  std::vector<std::pair<SubscriptionId, double>> priorities;
  /// DNF alias groups: external id -> internal disjunct ids, ascending.
  std::vector<std::pair<SubscriptionId, std::vector<SubscriptionId>>>
      dnf_groups;
  /// Matcher kind name the image was built for ("" = no image embedded).
  std::string index_kind;
  /// Serialized matcher index (PcmMatcher::SaveIndex stream bytes). Unused
  /// when `shard_images` is set.
  std::string index_image;
  /// Sharded engines: one SaveIndex image per shard, in shard order (their
  /// presence selects index form 2; `index_kind` names the inner kind).
  std::vector<std::string> shard_images;
};

/// Serializes `state` with magic and trailing checksum.
std::string EncodeCheckpoint(const CheckpointState& state);

/// Parses and fully validates a checkpoint image; any corruption — bad
/// magic, bad checksum, structural nonsense — is an IOError (the caller
/// falls back to an older checkpoint, never crashes).
StatusOr<CheckpointState> DecodeCheckpoint(std::string_view data);

}  // namespace apcm::store

#endif  // APCM_STORE_CHECKPOINT_H_
