#include "src/store/durable_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/logging.h"
#include "src/base/macros.h"

namespace apcm::store {
namespace {

constexpr std::string_view kWalPrefix = "wal-";
constexpr std::string_view kWalSuffix = ".log";
constexpr std::string_view kCheckpointPrefix = "checkpoint-";
constexpr std::string_view kCheckpointSuffix = ".ckpt";

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string SeqName(std::string_view prefix, uint64_t seq,
                    std::string_view suffix) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(seq));
  std::string name(prefix);
  name += hex;
  name += suffix;
  return name;
}

/// Matches `<prefix><16 hex digits><suffix>` exactly.
bool ParseSeqName(std::string_view name, std::string_view prefix,
                  std::string_view suffix, uint64_t* seq) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(prefix.size() + 16) != suffix) return false;
  uint64_t value = 0;
  for (const char c : name.substr(prefix.size(), 16)) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *seq = value;
  return true;
}

/// Clips a torn segment to its valid prefix so the next recovery can
/// continue past it into younger segments. Best effort: the bytes being
/// thrown away are by definition not durable state.
void ClipFile(const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return;
  if (::ftruncate(fd, static_cast<off_t>(size)) == 0) (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string WalSegmentName(uint64_t base_seq) {
  return SeqName(kWalPrefix, base_seq, kWalSuffix);
}

std::string CheckpointFileName(uint64_t wal_seq) {
  return SeqName(kCheckpointPrefix, wal_seq, kCheckpointSuffix);
}

DurableStore::DurableStore(StoreOptions options)
    : options_(std::move(options)) {}

DurableStore::~DurableStore() {
  std::lock_guard<std::mutex> lock(mu_);
  // Clean shutdown flushes the group-sync window; a store that already
  // "crashed" must not touch the files again.
  if (!dead_ && wal_.is_open() && unsynced_ > 0) {
    (void)FlushBatchLocked();
    (void)wal_.Sync();
  }
}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    StoreOptions options, RecoveryInfo* recovery) {
  const int64_t start_us = NowUs();
  *recovery = RecoveryInfo{};
  APCM_RETURN_NOT_OK(CreateDirIfMissing(options.dir));
  APCM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                        ListDir(options.dir));

  std::vector<std::pair<uint64_t, std::string>> checkpoints;  // seq, path
  std::vector<std::pair<uint64_t, std::string>> segments;     // base, path
  for (const std::string& name : names) {
    const std::string path = options.dir + "/" + name;
    uint64_t seq = 0;
    if (ParseSeqName(name, kCheckpointPrefix, kCheckpointSuffix, &seq)) {
      checkpoints.emplace_back(seq, path);
    } else if (ParseSeqName(name, kWalPrefix, kWalSuffix, &seq)) {
      segments.emplace_back(seq, path);
    } else if (name.size() >= 4 && name.ends_with(".tmp")) {
      (void)RemoveFileIfExists(path);  // abandoned atomic write
    }
  }
  std::sort(checkpoints.rbegin(), checkpoints.rend());  // newest first
  std::sort(segments.begin(), segments.end());

  // Newest intact checkpoint wins; corrupt ones fall back to older images.
  uint64_t checkpoint_seq = 0;
  for (const auto& [seq, path] : checkpoints) {
    StatusOr<std::string> data = ReadFileToString(path);
    if (data.ok()) {
      StatusOr<CheckpointState> state = DecodeCheckpoint(*data);
      if (state.ok() && state->wal_seq == seq) {
        recovery->had_checkpoint = true;
        recovery->checkpoint = *std::move(state);
        checkpoint_seq = seq;
        break;
      }
      if (state.ok()) {
        LogWarning("store: checkpoint name/seq mismatch, skipping",
                   {{"path", path}, {"claimed_seq", state->wal_seq}});
      } else {
        LogWarning("store: skipping checkpoint",
                   {{"path", path}, {"error", state.status().ToString()}});
      }
    } else {
      LogWarning("store: unreadable checkpoint",
                 {{"path", path}, {"error", data.status().ToString()}});
    }
    ++recovery->skipped_checkpoints;
  }

  // Replay the contiguous record run past the checkpoint. Segments are read
  // in base order; the first torn tail, unreadable file, or sequence gap
  // ends replay cleanly (never a crash) — everything before it is durable
  // state, everything after was never acknowledged.
  uint64_t expected = checkpoint_seq + 1;
  for (const auto& [base, path] : segments) {
    ++recovery->segments_scanned;
    StatusOr<std::string> data = ReadFileToString(path);
    if (!data.ok()) {
      LogWarning("store: unreadable segment; ending replay",
                 {{"path", path}, {"error", data.status().ToString()}});
      ++recovery->torn_tails;
      break;
    }
    WalDecodeResult decoded = DecodeWalBuffer(*data);
    bool gap = false;
    for (WalRecord& record : decoded.records) {
      if (record.seq <= checkpoint_seq) continue;  // covered by the image
      if (record.seq != expected) {
        LogWarning("store: sequence gap; ending replay",
                   {{"path", path},
                    {"expected", expected},
                    {"got", record.seq}});
        gap = true;
        break;
      }
      recovery->records.push_back(std::move(record));
      ++expected;
    }
    if (decoded.torn) {
      LogWarning("store: torn tail, clipping segment",
                 {{"path", path},
                  {"valid_bytes", decoded.valid_bytes},
                  {"reason", decoded.tail_error}});
      ++recovery->torn_tails;
      ClipFile(path, decoded.valid_bytes);
      break;
    }
    if (gap) break;
  }

  const uint64_t last_seq = expected - 1;
  std::unique_ptr<DurableStore> self(new DurableStore(std::move(options)));
  self->last_seq_ = last_seq;
  self->stats_.torn_tails = recovery->torn_tails;
  self->stats_.skipped_checkpoints = recovery->skipped_checkpoints;
  self->stats_.recovered_records = recovery->records.size();
  self->stats_.last_seq = last_seq;
  self->stats_.checkpoint_seq = checkpoint_seq;
  // A fresh active segment based at last_seq. If a file of that name exists
  // it contributed zero replayed records (its contents are past a clipped
  // or corrupt boundary), so truncating it discards nothing acknowledged.
  APCM_RETURN_NOT_OK(self->OpenSegmentLocked(last_seq));
  self->last_sync_us_ = NowUs();
  recovery->duration_us = NowUs() - start_us;
  self->stats_.recovery_us = recovery->duration_us;
  return self;
}

Status DurableStore::OpenSegmentLocked(uint64_t base_seq) {
  APCM_RETURN_NOT_OK(
      wal_.Open(options_.dir + "/" + WalSegmentName(base_seq)));
  // Make the new segment's directory entry durable: fsyncing the file later
  // is worthless if the name itself is lost with the dir page.
  return SyncDir(options_.dir);
}

Status DurableStore::Append(WalRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  APCM_RETURN_NOT_OK(DeadLocked());
  record->seq = last_seq_ + 1;
  std::string frame;
  EncodeWalRecord(*record, &frame);
  APCM_FAILPOINT_INJECT("store.wal.append", {
    DieLocked(/*power_loss=*/fp_arg == 1);
    return DeadLocked();
  });
#ifdef APCM_FAILPOINTS_ENABLED
  {
    // Torn-write crash: persist only a prefix of the frame, then die with
    // the written bytes intact (process-kill semantics). arg = prefix size.
    static failpoint::Failpoint* torn =
        failpoint::Registry::Instance().Register("store.wal.append.torn");
    uint64_t arg = 0;
    if (APCM_UNLIKELY(torn->armed()) && torn->Fire(&arg)) {
      const size_t keep = std::clamp<size_t>(arg, 1, frame.size() - 1);
      (void)FlushBatchLocked();  // a torn frame follows its predecessors
      (void)wal_.Append(std::string_view(frame).substr(0, keep));
      DieLocked(/*power_loss=*/false);
      return DeadLocked();
    }
  }
#endif
  if (options_.sync_every > 1) {
    // Group-commit batching: buffer the frame and let SyncLocked hand the
    // whole window to the kernel in one write before its fsync. The size
    // bound keeps memory flat when individual records are large — crossing
    // it writes early (no fsync), which only narrows the loss window.
    constexpr size_t kBatchFlushBytes = 1u << 20;
    batch_.append(frame);
    if (batch_.size() >= kBatchFlushBytes) {
      APCM_RETURN_NOT_OK(FlushBatchLocked());
    }
  } else {
    Status written = wal_.Append(frame);
    if (!written.ok()) {
      ++stats_.append_errors;
      return PoisonLocked(std::move(written));
    }
    ++stats_.wal_writes;
  }
  last_seq_ = record->seq;
  stats_.last_seq = last_seq_;
  ++stats_.appends;
  stats_.bytes += frame.size();
  ++unsynced_;
  APCM_FAILPOINT_INJECT("store.wal.fsync", {
    DieLocked(/*power_loss=*/fp_arg == 1);
    return DeadLocked();
  });
  if (ShouldSyncLocked()) return SyncLocked();
  return Status::OK();
}

Status DurableStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  APCM_RETURN_NOT_OK(DeadLocked());
  if (unsynced_ == 0) return Status::OK();
  return SyncLocked();
}

StatusOr<uint64_t> DurableStore::RotateWal() {
  std::lock_guard<std::mutex> lock(mu_);
  APCM_RETURN_NOT_OK(DeadLocked());
  APCM_FAILPOINT_INJECT("store.wal.rotate", {
    DieLocked(/*power_loss=*/fp_arg == 1);
    return DeadLocked();
  });
  // The retiring segment must be fully durable before the image that
  // supersedes it can exist.
  APCM_RETURN_NOT_OK(SyncLocked());
  wal_.Close();
  APCM_RETURN_NOT_OK(PoisonLocked(OpenSegmentLocked(last_seq_)));
  ++stats_.rotations;
  return last_seq_;
}

Status DurableStore::WriteCheckpoint(const CheckpointState& state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    APCM_RETURN_NOT_OK(DeadLocked());
    APCM_FAILPOINT_INJECT("store.checkpoint.write", {
      DieLocked(/*power_loss=*/fp_arg == 1);
      return DeadLocked();
    });
  }
  // Encode and write outside mu_ — checkpoint images can be large and must
  // not stall the append path; the atomic rename keeps readers safe.
  const std::string blob = EncodeCheckpoint(state);
  const Status written = AtomicWriteFile(
      options_.dir + "/" + CheckpointFileName(state.wal_seq), blob);

  std::lock_guard<std::mutex> lock(mu_);
  APCM_RETURN_NOT_OK(DeadLocked());
  if (!written.ok()) {
    // Non-fatal: the previous checkpoint (or the full log) still covers
    // every acknowledged op.
    ++stats_.checkpoint_errors;
    return written;
  }
  ++stats_.checkpoints;
  stats_.checkpoint_seq = state.wal_seq;
  stats_.checkpoint_bytes = blob.size();
  APCM_FAILPOINT_INJECT("store.checkpoint.truncate", {
    DieLocked(/*power_loss=*/fp_arg == 1);
    return DeadLocked();
  });
  TruncateObsoleteLocked(state.wal_seq);
  return Status::OK();
}

void DurableStore::TruncateObsoleteLocked(uint64_t covered_seq) {
  StatusOr<std::vector<std::string>> names = ListDir(options_.dir);
  if (!names.ok()) return;  // best effort; retried at the next checkpoint
  uint64_t removed = 0;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    const bool obsolete_checkpoint =
        ParseSeqName(name, kCheckpointPrefix, kCheckpointSuffix, &seq) &&
        seq < covered_seq;
    // Segments named by base seq hold only records <= the next base; after
    // the rotation that preceded this checkpoint, every segment based below
    // covered_seq is wholly reflected in the image.
    const bool obsolete_segment =
        ParseSeqName(name, kWalPrefix, kWalSuffix, &seq) &&
        seq < covered_seq;
    if (obsolete_checkpoint || obsolete_segment) {
      if (RemoveFileIfExists(options_.dir + "/" + name).ok()) ++removed;
    }
  }
  if (removed > 0) {
    stats_.truncated_files += removed;
    (void)SyncDir(options_.dir);
  }
}

void DurableStore::SimulateCrash(bool power_loss) {
  std::lock_guard<std::mutex> lock(mu_);
  DieLocked(power_loss);
}

void DurableStore::DieLocked(bool power_loss) {
  if (dead_) return;
  dead_ = true;
  // Userspace batch never reached the kernel: both crash kinds lose it
  // (within the group-sync window the caller already accepted).
  batch_.clear();
  if (wal_.is_open()) {
    // Power loss: everything past the last fsync never reached the platter.
    // Process kill: the page cache survives, so written bytes stay.
    if (power_loss) (void)wal_.Truncate(wal_.synced_size());
    wal_.Close();
  }
}

Status DurableStore::PoisonLocked(Status status) {
  if (!status.ok() && !dead_) {
    LogError("store: poisoned by I/O failure",
             {{"error", status.ToString()}});
    dead_ = true;
    wal_.Close();
  }
  return status;
}

Status DurableStore::DeadLocked() const {
  if (dead_) {
    return Status::IOError("durable store is dead (crashed or poisoned)");
  }
  return Status::OK();
}

bool DurableStore::ShouldSyncLocked() const {
  if (unsynced_ == 0) return false;
  if (options_.sync_every > 0 && unsynced_ >= options_.sync_every) {
    return true;
  }
  return options_.sync_interval_ms > 0 &&
         NowUs() - last_sync_us_ >= options_.sync_interval_ms * 1000;
}

Status DurableStore::FlushBatchLocked() {
  if (batch_.empty()) return Status::OK();
  Status written = wal_.Append(batch_);
  if (!written.ok()) {
    ++stats_.append_errors;
    return PoisonLocked(std::move(written));
  }
  ++stats_.wal_writes;
  batch_.clear();  // keeps capacity for the next window
  return Status::OK();
}

Status DurableStore::SyncLocked() {
  APCM_RETURN_NOT_OK(FlushBatchLocked());
  if (unsynced_ > 0 || wal_.size() > wal_.synced_size()) {
    Status status = wal_.Sync();
    if (!status.ok()) return PoisonLocked(std::move(status));
    ++stats_.fsyncs;
    unsynced_ = 0;
  }
  last_sync_us_ = NowUs();
  return Status::OK();
}

bool DurableStore::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t DurableStore::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

StoreStats DurableStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats stats = stats_;
  stats.unsynced_records = unsynced_;
  return stats;
}

}  // namespace apcm::store
