#ifndef APCM_STORE_DURABLE_STORE_H_
#define APCM_STORE_DURABLE_STORE_H_

/// \file
/// DurableStore — the persistence subsystem behind EngineOptions::data_dir
/// (DESIGN §3.12). It owns one directory containing:
///
///     wal-<base16>.log         WAL segments; records have seq > base, and
///                              segments partition the sequence space
///                              contiguously in base order
///     checkpoint-<seq16>.ckpt  checkpoint images, named by the WAL seq
///                              they cover
///     *.tmp                    in-flight atomic writes; ignored and
///                              deleted on recovery
///
/// Write protocol: every subscription mutation is appended (and, per the
/// sync policy, fsynced) BEFORE the in-memory engine applies it. Checkpoint
/// protocol: rotate the WAL under the engine state lock (so the new segment
/// base equals the captured seq), write the image off-lock via atomic
/// rename, then delete segments and checkpoints wholly covered by it.
/// Recovery: newest intact checkpoint + contiguous WAL tail replay; torn
/// tails are clipped, corrupt checkpoints skipped in favor of older ones.
///
/// Failure model: any WAL write or fsync error poisons the store (fail-stop
/// — later ops fail fast with IOError), because a half-written append leaves
/// the tail unparseable; a failed checkpoint is non-fatal (the previous one
/// still covers the log). Crash seams for the recovery test matrix, all
/// `return`-action failpoints whose arg selects the simulated crash kind
/// (0 = process kill: written bytes survive; 1 = power loss: the active
/// segment rolls back to its last-synced prefix):
///
///     store.wal.append          die before any byte of the frame is written
///     store.wal.append.torn     write only `arg` bytes of the frame, then
///                               die (keep-mode; arg clamped to [1, len-1])
///     store.wal.fsync           die after the write, before the fsync
///     store.wal.rotate          die before rotating to a fresh segment
///     store.checkpoint.write    die before the checkpoint file is written
///     store.checkpoint.truncate die after the rename, before deleting
///                               obsolete segments/checkpoints
///
/// Thread-safety: all public methods are safe from any thread; appends
/// serialize on an internal mutex (the engine additionally orders them
/// under its own state lock, which is what makes WAL order == apply order).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/file_io.h"
#include "src/base/status.h"
#include "src/store/checkpoint.h"
#include "src/store/wal.h"

namespace apcm::store {

struct StoreOptions {
  std::string dir;
  /// fsync after every N appended records; 1 = every record (full
  /// durability), 0 = never on the append path (interval/explicit only).
  /// Group sync (N > 1) also batches record frames in userspace and hands
  /// the whole group to the kernel in one write() right before the group
  /// fsync — the crash contract is unchanged (durability is only ever
  /// promised at the fsync boundary; power loss and process kill both lose
  /// at most the unsynced window) and the append path sheds a syscall per
  /// record.
  uint32_t sync_every = 1;
  /// Additionally fsync when this many milliseconds passed since the last
  /// sync, checked on append. 0 disables the timer.
  int64_t sync_interval_ms = 0;
};

/// What Open() reconstructed from disk; the engine replays this into its
/// in-memory state before serving.
struct RecoveryInfo {
  bool had_checkpoint = false;
  CheckpointState checkpoint;
  /// WAL records past the checkpoint, strictly contiguous seqs.
  std::vector<WalRecord> records;
  uint64_t torn_tails = 0;           ///< segments that ended mid-frame
  uint64_t skipped_checkpoints = 0;  ///< corrupt images skipped
  uint64_t segments_scanned = 0;
  int64_t duration_us = 0;
};

/// Monotonic operation counters plus current watermarks, bridged to
/// apcm_wal_* / apcm_checkpoint_* metrics by the engine.
struct StoreStats {
  uint64_t appends = 0;
  uint64_t append_errors = 0;
  uint64_t bytes = 0;
  uint64_t wal_writes = 0;  ///< physical write() calls (batching collapses
                            ///< a whole group-sync window into one)
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_errors = 0;
  uint64_t truncated_files = 0;  ///< obsolete files deleted after checkpoints
  uint64_t torn_tails = 0;       ///< from recovery
  uint64_t recovered_records = 0;
  uint64_t skipped_checkpoints = 0;
  uint64_t last_seq = 0;
  uint64_t checkpoint_seq = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t unsynced_records = 0;
  int64_t recovery_us = 0;
};

/// "wal-%016x.log" — segments sort lexicographically in base order.
std::string WalSegmentName(uint64_t base_seq);
/// "checkpoint-%016x.ckpt".
std::string CheckpointFileName(uint64_t wal_seq);

class DurableStore {
 public:
  /// Opens (creating if needed) the store directory, runs recovery, and
  /// positions a fresh active segment after the last durable record.
  /// `*recovery` receives the reconstructed state to replay.
  static StatusOr<std::unique_ptr<DurableStore>> Open(StoreOptions options,
                                                      RecoveryInfo* recovery);

  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Assigns the next sequence number to `record`, appends its frame to the
  /// active segment, and applies the sync policy. On any error the record
  /// was NOT made durable and the caller must not apply it.
  Status Append(WalRecord* record);

  /// Forces an fsync of the active segment (group-sync flush).
  Status Sync();

  /// Checkpoint step 1, called under the engine's state lock: fsync and
  /// retire the active segment, start a fresh one based at the current
  /// sequence. Returns that sequence — the `wal_seq` the image must cover.
  StatusOr<uint64_t> RotateWal();

  /// Checkpoint step 2, off-lock: atomically persist `state` and delete
  /// segments/checkpoints it makes obsolete. Failure is non-fatal.
  Status WriteCheckpoint(const CheckpointState& state);

  /// Test hook: drop the process (keep) or the power (additionally roll the
  /// active segment back to its synced prefix). All later ops fail fast.
  void SimulateCrash(bool power_loss);

  bool dead() const;
  uint64_t last_seq() const;
  const std::string& dir() const { return options_.dir; }
  const StoreOptions& options() const { return options_; }
  StoreStats stats() const;

 private:
  explicit DurableStore(StoreOptions options);

  Status OpenSegmentLocked(uint64_t base_seq);
  Status SyncLocked();
  bool ShouldSyncLocked() const;
  /// Marks the store dead, simulating the requested crash kind.
  void DieLocked(bool power_loss);
  /// Poisons the store when `status` is an I/O failure; passes it through.
  Status PoisonLocked(Status status);
  Status DeadLocked() const;
  void TruncateObsoleteLocked(uint64_t covered_seq);
  /// Writes the buffered group-commit batch (if any) to the active segment.
  Status FlushBatchLocked();

  const StoreOptions options_;

  mutable std::mutex mu_;
  bool dead_ = false;
  WritableFile wal_;
  /// Encoded frames buffered since the last write (group sync only, see
  /// StoreOptions::sync_every). Never durable: DieLocked drops it.
  std::string batch_;
  uint64_t last_seq_ = 0;
  uint64_t unsynced_ = 0;
  int64_t last_sync_us_ = 0;  ///< steady-clock stamp of the last fsync
  StoreStats stats_;
};

}  // namespace apcm::store

#endif  // APCM_STORE_DURABLE_STORE_H_
