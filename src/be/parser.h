#ifndef APCM_BE_PARSER_H_
#define APCM_BE_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/be/catalog.h"
#include "src/be/event.h"
#include "src/be/expression.h"
#include "src/be/string_dictionary.h"

namespace apcm {

/// Text front-end for subscriptions and events, used by the examples, the
/// trace format, and tests.
///
/// Expression grammar (one conjunction per line, predicates joined by "and"):
///   price <= 100 and category in {1, 2, 3} and age between [20, 30]
/// Operators: = != < <= > >=, "between [lo, hi]", "in {v1, v2, ...}".
///
/// Event grammar (comma-separated assignments):
///   price = 50, category = 2
///
/// Attribute names are identifiers ([A-Za-z_][A-Za-z0-9_]*); unknown names
/// are registered in the catalog with its default domain.
///
/// With a StringDictionary attached, operands may also be double-quoted
/// strings, dictionary-encoded on the fly:
///   country = "US" and tier in {"gold", "silver"}
class Parser {
 public:
  /// The parser registers new attribute names in `catalog`; the catalog must
  /// outlive the parser. `strings` (optional) enables quoted-string operands
  /// and must outlive the parser too.
  explicit Parser(Catalog* catalog, StringDictionary* strings = nullptr)
      : catalog_(catalog), strings_(strings) {}

  /// Parses one predicate, e.g. "price <= 100".
  StatusOr<Predicate> ParsePredicate(std::string_view text) const;

  /// Parses a conjunction into an expression with the given id.
  StatusOr<BooleanExpression> ParseExpression(SubscriptionId id,
                                              std::string_view text) const;

  /// Parses a disjunction of conjunctions ("a = 1 and b = 2 or c = 3"; "or"
  /// binds loosest). Returns one predicate list per disjunct, for
  /// StreamEngine::AddDisjunctiveSubscription. A plain conjunction yields a
  /// single disjunct.
  StatusOr<std::vector<std::vector<Predicate>>> ParseDisjunction(
      std::string_view text) const;

  /// Parses an event.
  StatusOr<Event> ParseEvent(std::string_view text) const;

 private:
  /// Parses an integer literal or (with a dictionary) a quoted string.
  StatusOr<Value> ParseOperand(std::string_view text) const;

  Catalog* catalog_;
  StringDictionary* strings_;
};

}  // namespace apcm

#endif  // APCM_BE_PARSER_H_
