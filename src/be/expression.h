#ifndef APCM_BE_EXPRESSION_H_
#define APCM_BE_EXPRESSION_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/be/event.h"
#include "src/be/predicate.h"
#include "src/be/value.h"

namespace apcm {

/// A subscription: a conjunction of predicates over distinct attributes,
/// stored sorted by attribute id. Semantics follow content-based pub/sub
/// (and BE-Tree): the expression matches an event iff every predicate's
/// attribute is present in the event AND the carried value satisfies the
/// predicate. An expression with zero predicates matches every event.
class BooleanExpression {
 public:
  BooleanExpression() = default;

  /// Builds an expression; predicates are sorted by attribute. Fails with
  /// InvalidArgument if two predicates constrain the same attribute (the
  /// conjunction would either be redundant or contradictory; BE-Tree's model
  /// — and our compressed masks — assume one predicate per attribute).
  static StatusOr<BooleanExpression> Create(SubscriptionId id,
                                            std::vector<Predicate> predicates);

  /// Unchecked fast path for the generator: predicates must already be
  /// sorted by attribute and attribute-distinct (checked in debug builds).
  static BooleanExpression FromSorted(SubscriptionId id,
                                      std::vector<Predicate> predicates);

  SubscriptionId id() const { return id_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  size_t size() const { return predicates_.size(); }

  /// Full evaluation with short-circuit: merge-joins the attribute-sorted
  /// predicate list against the attribute-sorted event entries.
  bool Matches(const Event& event) const;

  /// Like Matches but also counts evaluated predicates into `*evals`
  /// (instrumentation for the cost model and the benchmarks).
  bool MatchesCounting(const Event& event, uint64_t* evals) const;

  /// "id=7: a3 <= 42 and a9 between [1, 5]".
  std::string ToString(const Catalog* catalog = nullptr) const;

 private:
  SubscriptionId id_ = kInvalidSubscriptionId;
  std::vector<Predicate> predicates_;  // sorted by attribute, distinct attrs
};

}  // namespace apcm

#endif  // APCM_BE_EXPRESSION_H_
