#include "src/be/predicate.h"

#include <algorithm>
#include <limits>

#include "src/base/string_util.h"
#include "src/be/catalog.h"

namespace apcm {

std::string_view OpToString(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kBetween:
      return "between";
    case Op::kIn:
      return "in";
  }
  return "?";
}

Predicate::Predicate(AttributeId attr, Op op, Value v)
    : attr_(attr), op_(op), v1_(v) {
  APCM_CHECK(op != Op::kBetween && op != Op::kIn);
}

Predicate::Predicate(AttributeId attr, Value lo, Value hi)
    : attr_(attr), op_(Op::kBetween), v1_(lo), v2_(hi) {
  APCM_CHECK(lo <= hi);
}

Predicate::Predicate(AttributeId attr, std::vector<Value> values)
    : attr_(attr), op_(Op::kIn), values_(std::move(values)) {
  APCM_CHECK(!values_.empty());
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

bool Predicate::EvalIn(Value value) const {
  return std::binary_search(values_.begin(), values_.end(), value);
}

void Predicate::AppendIntervals(ValueInterval domain,
                                std::vector<ValueInterval>* out) const {
  // All ±1 adjustments below are guarded so operands at the int64 extremes
  // cannot overflow (UB).
  constexpr Value kValueMin = std::numeric_limits<Value>::min();
  constexpr Value kValueMax = std::numeric_limits<Value>::max();
  auto clip = [&](Value lo, Value hi) {
    lo = std::max(lo, domain.lo);
    hi = std::min(hi, domain.hi);
    if (lo <= hi) out->push_back(ValueInterval{lo, hi});
  };
  switch (op_) {
    case Op::kEq:
      clip(v1_, v1_);
      break;
    case Op::kNe:
      if (v1_ < domain.lo || v1_ > domain.hi) {
        clip(domain.lo, domain.hi);  // v1_ outside domain: always true
      } else {
        if (v1_ > kValueMin) clip(domain.lo, v1_ - 1);
        if (v1_ < kValueMax) clip(v1_ + 1, domain.hi);
      }
      break;
    case Op::kLt:
      if (v1_ > kValueMin) clip(domain.lo, v1_ - 1);
      break;
    case Op::kLe:
      clip(domain.lo, v1_);
      break;
    case Op::kGt:
      if (v1_ < kValueMax) clip(v1_ + 1, domain.hi);
      break;
    case Op::kGe:
      clip(v1_, domain.hi);
      break;
    case Op::kBetween:
      clip(v1_, v2_);
      break;
    case Op::kIn: {
      // Coalesce runs of consecutive values into single intervals.
      size_t i = 0;
      while (i < values_.size()) {
        size_t j = i;
        while (j + 1 < values_.size() && values_[j] < kValueMax &&
               values_[j + 1] == values_[j] + 1) {
          ++j;
        }
        clip(values_[i], values_[j]);
        i = j + 1;
      }
      break;
    }
  }
}

double Predicate::Selectivity(ValueInterval domain) const {
  if (domain.Empty()) return 0;
  std::vector<ValueInterval> intervals;
  AppendIntervals(domain, &intervals);
  double covered = 0;
  for (const auto& iv : intervals) {
    // A full-64-bit-span interval has Width() == 0 by wraparound.
    covered += iv.Width() == 0 ? 0x1.0p64 : static_cast<double>(iv.Width());
  }
  const double width = domain.Width() == 0
                           ? 0x1.0p64
                           : static_cast<double>(domain.Width());
  return covered / width;
}

std::string Predicate::ToString(const Catalog* catalog) const {
  std::string attr_name = catalog != nullptr
                              ? catalog->Name(attr_)
                              : "attr" + std::to_string(attr_);
  switch (op_) {
    case Op::kBetween:
      return StringPrintf("%s between [%lld, %lld]", attr_name.c_str(),
                          static_cast<long long>(v1_),
                          static_cast<long long>(v2_));
    case Op::kIn: {
      std::string s = attr_name + " in {";
      for (size_t i = 0; i < values_.size(); ++i) {
        if (i > 0) s += ", ";
        s += std::to_string(values_[i]);
      }
      return s + "}";
    }
    default:
      return StringPrintf("%s %s %lld", attr_name.c_str(),
                          std::string(OpToString(op_)).c_str(),
                          static_cast<long long>(v1_));
  }
}

size_t Predicate::Hash() const {
  // FNV-1a over the logical content.
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(attr_);
  mix(static_cast<uint64_t>(op_));
  mix(static_cast<uint64_t>(v1_));
  mix(static_cast<uint64_t>(v2_));
  for (Value v : values_) mix(static_cast<uint64_t>(v));
  return static_cast<size_t>(h);
}

}  // namespace apcm
