#ifndef APCM_BE_EVENT_H_
#define APCM_BE_EVENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/be/value.h"

namespace apcm {

class Catalog;

/// One published event: a sparse assignment of values to attributes, stored
/// sorted by attribute id for O(log n) lookup and merge-join evaluation
/// against expressions (whose predicates are also attribute-sorted).
class Event {
 public:
  /// (attribute, value) pair.
  struct Entry {
    AttributeId attr;
    Value value;
    friend bool operator==(const Entry& a, const Entry& b) = default;
  };

  Event() = default;

  /// Builds an event from possibly-unsorted pairs. Fails with
  /// InvalidArgument on duplicate attributes.
  static StatusOr<Event> Create(std::vector<Entry> entries);

  /// Builds from entries the caller guarantees to be sorted by attribute and
  /// duplicate-free (checked in debug builds). Hot path for the generator.
  static Event FromSorted(std::vector<Entry> entries);

  /// Value of `attr`, or nullptr if the event does not carry it.
  const Value* Find(AttributeId attr) const;

  /// True iff the event carries `attr`.
  bool Has(AttributeId attr) const { return Find(attr) != nullptr; }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// "attr1=5, attr7=19" (names resolved when a catalog is given).
  std::string ToString(const Catalog* catalog = nullptr) const;

  friend bool operator==(const Event& a, const Event& b) = default;

 private:
  std::vector<Entry> entries_;  // sorted by attr, unique attrs
};

}  // namespace apcm

#endif  // APCM_BE_EVENT_H_
