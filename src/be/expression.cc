#include "src/be/expression.h"

#include <algorithm>

#include "src/base/macros.h"

namespace apcm {

StatusOr<BooleanExpression> BooleanExpression::Create(
    SubscriptionId id, std::vector<Predicate> predicates) {
  std::stable_sort(predicates.begin(), predicates.end(),
                   [](const Predicate& a, const Predicate& b) {
                     return a.attribute() < b.attribute();
                   });
  for (size_t i = 1; i < predicates.size(); ++i) {
    if (predicates[i].attribute() == predicates[i - 1].attribute()) {
      return Status::InvalidArgument(
          "expression " + std::to_string(id) +
          ": multiple predicates on attribute " +
          std::to_string(predicates[i].attribute()));
    }
  }
  BooleanExpression expr;
  expr.id_ = id;
  expr.predicates_ = std::move(predicates);
  return expr;
}

BooleanExpression BooleanExpression::FromSorted(
    SubscriptionId id, std::vector<Predicate> predicates) {
#ifndef NDEBUG
  for (size_t i = 1; i < predicates.size(); ++i) {
    APCM_DCHECK(predicates[i - 1].attribute() < predicates[i].attribute());
  }
#endif
  BooleanExpression expr;
  expr.id_ = id;
  expr.predicates_ = std::move(predicates);
  return expr;
}

bool BooleanExpression::Matches(const Event& event) const {
  // Merge-join over the two attribute-sorted lists; every predicate must
  // find its attribute and be satisfied.
  const auto& entries = event.entries();
  size_t e = 0;
  for (const Predicate& pred : predicates_) {
    const AttributeId attr = pred.attribute();
    while (e < entries.size() && entries[e].attr < attr) ++e;
    if (e == entries.size() || entries[e].attr != attr) return false;
    if (!pred.Eval(entries[e].value)) return false;
  }
  return true;
}

bool BooleanExpression::MatchesCounting(const Event& event,
                                        uint64_t* evals) const {
  const auto& entries = event.entries();
  size_t e = 0;
  for (const Predicate& pred : predicates_) {
    const AttributeId attr = pred.attribute();
    while (e < entries.size() && entries[e].attr < attr) ++e;
    ++*evals;
    if (e == entries.size() || entries[e].attr != attr) return false;
    if (!pred.Eval(entries[e].value)) return false;
  }
  return true;
}

std::string BooleanExpression::ToString(const Catalog* catalog) const {
  std::string s = "id=" + std::to_string(id_) + ":";
  if (predicates_.empty()) return s + " <true>";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    s += i == 0 ? " " : " and ";
    s += predicates_[i].ToString(catalog);
  }
  return s;
}

}  // namespace apcm
