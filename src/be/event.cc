#include "src/be/event.h"

#include <algorithm>

#include "src/base/macros.h"
#include "src/be/catalog.h"

namespace apcm {

StatusOr<Event> Event::Create(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.attr < b.attr; });
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].attr == entries[i - 1].attr) {
      return Status::InvalidArgument(
          "duplicate attribute " + std::to_string(entries[i].attr) +
          " in event");
    }
  }
  Event event;
  event.entries_ = std::move(entries);
  return event;
}

Event Event::FromSorted(std::vector<Entry> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    APCM_DCHECK(entries[i - 1].attr < entries[i].attr);
  }
#endif
  Event event;
  event.entries_ = std::move(entries);
  return event;
}

const Value* Event::Find(AttributeId attr) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), attr,
      [](const Entry& e, AttributeId a) { return e.attr < a; });
  if (it == entries_.end() || it->attr != attr) return nullptr;
  return &it->value;
}

std::string Event::ToString(const Catalog* catalog) const {
  std::string s;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) s += ", ";
    s += catalog != nullptr ? catalog->Name(entries_[i].attr)
                            : "attr" + std::to_string(entries_[i].attr);
    s += "=";
    s += std::to_string(entries_[i].value);
  }
  return s;
}

}  // namespace apcm
