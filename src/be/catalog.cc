#include "src/be/catalog.h"

#include "src/base/macros.h"

namespace apcm {

StatusOr<AttributeId> Catalog::AddAttribute(std::string_view name,
                                            Value domain_min,
                                            Value domain_max) {
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (domain_min > domain_max) {
    return Status::InvalidArgument("attribute '" + std::string(name) +
                                   "': domain min > max");
  }
  std::string key(name);
  if (ids_.contains(key)) {
    return Status::AlreadyExists("attribute '" + key + "' already registered");
  }
  const AttributeId id = static_cast<AttributeId>(names_.size());
  ids_.emplace(key, id);
  names_.push_back(std::move(key));
  domains_.push_back(ValueInterval{domain_min, domain_max});
  return id;
}

AttributeId Catalog::GetOrAddAttribute(std::string_view name,
                                       ValueInterval default_domain) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  auto added = AddAttribute(name, default_domain.lo, default_domain.hi);
  APCM_CHECK(added.ok());
  return added.value();
}

StatusOr<AttributeId> Catalog::FindAttribute(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown attribute '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& Catalog::Name(AttributeId id) const {
  APCM_CHECK(id < names_.size());
  return names_[id];
}

ValueInterval Catalog::Domain(AttributeId id) const {
  APCM_CHECK(id < domains_.size());
  return domains_[id];
}

}  // namespace apcm
