#ifndef APCM_BE_CATALOG_H_
#define APCM_BE_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/be/value.h"

namespace apcm {

/// Registry of attributes: maps names to dense AttributeIds and records each
/// attribute's value domain. Matching itself is id-based; the catalog is used
/// by the parser, the workload generator, and the examples.
class Catalog {
 public:
  Catalog() = default;

  /// Registers `name` with domain [min, max]; returns the new id, or
  /// AlreadyExists if the name is taken, or InvalidArgument if min > max.
  StatusOr<AttributeId> AddAttribute(std::string_view name, Value domain_min,
                                     Value domain_max);

  /// Returns the id for `name`, registering it with `default_domain` if new.
  AttributeId GetOrAddAttribute(std::string_view name,
                                ValueInterval default_domain = {0, 1'000'000});

  /// Id for an existing name, or NotFound.
  StatusOr<AttributeId> FindAttribute(std::string_view name) const;

  /// Name of an existing id. Requires id < size().
  const std::string& Name(AttributeId id) const;

  /// Domain of an existing id. Requires id < size().
  ValueInterval Domain(AttributeId id) const;

  /// Number of registered attributes; ids are 0..size()-1.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<ValueInterval> domains_;
  std::unordered_map<std::string, AttributeId> ids_;
};

}  // namespace apcm

#endif  // APCM_BE_CATALOG_H_
