#ifndef APCM_BE_STRING_DICTIONARY_H_
#define APCM_BE_STRING_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/be/value.h"

namespace apcm {

/// Dictionary encoding for string-valued attributes. The matching model is
/// integer-ordinal (DESIGN.md §1); categorical/string attributes are encoded
/// upstream through this dictionary: every distinct string gets a dense
/// Value id, predicates compare ids. Equality/membership semantics are
/// preserved exactly; ordering over encoded strings is insertion order (so
/// range predicates over encoded strings are meaningless — use =, !=, in).
class StringDictionary {
 public:
  StringDictionary() = default;

  /// Returns the id of `text`, encoding it if new.
  Value Encode(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    const Value id = static_cast<Value>(strings_.size());
    ids_.emplace(std::string(text), id);
    strings_.emplace_back(text);
    return id;
  }

  /// Id of an already-encoded string, or NotFound.
  StatusOr<Value> Find(std::string_view text) const {
    auto it = ids_.find(std::string(text));
    if (it == ids_.end()) {
      return Status::NotFound("string '" + std::string(text) +
                              "' is not in the dictionary");
    }
    return it->second;
  }

  /// The string for id; OutOfRange for unknown ids.
  StatusOr<std::string> Decode(Value id) const {
    if (id < 0 || static_cast<size_t>(id) >= strings_.size()) {
      return Status::OutOfRange("no string with id " + std::to_string(id));
    }
    return strings_[static_cast<size_t>(id)];
  }

  /// Number of distinct strings encoded. Valid ids are [0, size()).
  size_t size() const { return strings_.size(); }

  /// The value domain to register for attributes encoded through this
  /// dictionary, reserving headroom for strings encoded later.
  ValueInterval Domain(Value headroom = 1'000'000) const {
    return ValueInterval{0, static_cast<Value>(strings_.size()) + headroom};
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Value> ids_;
};

}  // namespace apcm

#endif  // APCM_BE_STRING_DICTIONARY_H_
