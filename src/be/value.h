#ifndef APCM_BE_VALUE_H_
#define APCM_BE_VALUE_H_

#include <cstdint>

namespace apcm {

/// Attribute identifier. Dense small integers assigned by the Catalog.
using AttributeId = uint32_t;

/// Attribute value. The matching model follows BE-Tree: every attribute
/// ranges over a finite ordered integer domain (categorical attributes are
/// dictionary-encoded upstream).
using Value = int64_t;

/// Subscription (Boolean expression) identifier.
using SubscriptionId = uint32_t;

/// Sentinel for "no subscription".
inline constexpr SubscriptionId kInvalidSubscriptionId =
    static_cast<SubscriptionId>(-1);

/// Closed integer interval [lo, hi]; empty if lo > hi.
struct ValueInterval {
  Value lo;
  Value hi;

  bool Contains(Value v) const { return lo <= v && v <= hi; }
  bool Empty() const { return lo > hi; }
  /// Width as a count of integer points. 0 when empty — and, by uint64
  /// wraparound, also 0 for the one non-empty interval spanning the entire
  /// 64-bit space (2^64 points); callers treating 0 as "huge" must check
  /// Empty() first. The subtraction is done in uint64 so extreme bounds
  /// cannot overflow.
  uint64_t Width() const {
    if (Empty()) return 0;
    return static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  }

  friend bool operator==(const ValueInterval& a,
                         const ValueInterval& b) = default;
};

}  // namespace apcm

#endif  // APCM_BE_VALUE_H_
