#ifndef APCM_BE_PREDICATE_H_
#define APCM_BE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/macros.h"
#include "src/be/value.h"

namespace apcm {

class Catalog;

/// Comparison operator of a predicate.
enum class Op : uint8_t {
  kEq = 0,   ///< attr == v1
  kNe,       ///< attr != v1
  kLt,       ///< attr <  v1
  kLe,       ///< attr <= v1
  kGt,       ///< attr >  v1
  kGe,       ///< attr >= v1
  kBetween,  ///< v1 <= attr <= v2
  kIn,       ///< attr ∈ values (sorted set)
};

/// Canonical lower-case token for an operator ("=", "!=", "between", ...).
std::string_view OpToString(Op op);

/// One atomic constraint `attribute op operand(s)`. Immutable after
/// construction. Predicates are value types: equality and hashing consider
/// the full operand, which is what predicate-dictionary compression dedupes
/// on.
class Predicate {
 public:
  /// Single-operand constructor for kEq/kNe/kLt/kLe/kGt/kGe.
  Predicate(AttributeId attr, Op op, Value v);
  /// Range constructor for kBetween; requires lo <= hi.
  Predicate(AttributeId attr, Value lo, Value hi);
  /// Set constructor for kIn; `values` is deduplicated and sorted. Requires a
  /// non-empty set.
  Predicate(AttributeId attr, std::vector<Value> values);

  AttributeId attribute() const { return attr_; }
  Op op() const { return op_; }
  Value v1() const { return v1_; }
  Value v2() const { return v2_; }
  const std::vector<Value>& values() const { return values_; }

  /// True iff `value` satisfies this predicate.
  bool Eval(Value value) const {
    switch (op_) {
      case Op::kEq:
        return value == v1_;
      case Op::kNe:
        return value != v1_;
      case Op::kLt:
        return value < v1_;
      case Op::kLe:
        return value <= v1_;
      case Op::kGt:
        return value > v1_;
      case Op::kGe:
        return value >= v1_;
      case Op::kBetween:
        return v1_ <= value && value <= v2_;
      case Op::kIn:
        return EvalIn(value);
    }
    return false;
  }

  /// Appends the decomposition of this predicate into disjoint closed
  /// intervals, clipped to `domain`. kNe yields up to two intervals, kIn one
  /// per (run of) value(s); every other operator yields at most one. Interval
  /// indexes (counting, k-index) are built on this decomposition.
  void AppendIntervals(ValueInterval domain,
                       std::vector<ValueInterval>* out) const;

  /// Fraction of `domain` satisfying the predicate, in [0, 1].
  double Selectivity(ValueInterval domain) const;

  /// "attr3 <= 42" (id-based) or "price <= 42" when a catalog is given.
  std::string ToString(const Catalog* catalog = nullptr) const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.attr_ == b.attr_ && a.op_ == b.op_ && a.v1_ == b.v1_ &&
           a.v2_ == b.v2_ && a.values_ == b.values_;
  }

  /// Hash over (attribute, op, operands); consistent with operator==.
  size_t Hash() const;

 private:
  bool EvalIn(Value value) const;

  AttributeId attr_;
  Op op_;
  Value v1_ = 0;
  Value v2_ = 0;
  std::vector<Value> values_;  // sorted, only for kIn
};

/// std::hash adapter so predicates can key unordered containers.
struct PredicateHash {
  size_t operator()(const Predicate& p) const { return p.Hash(); }
};

}  // namespace apcm

#endif  // APCM_BE_PREDICATE_H_
