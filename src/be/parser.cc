#include "src/be/parser.h"

#include <cctype>

#include "src/base/string_util.h"

namespace apcm {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits on a standalone connective word (surrounded by whitespace), so
// attribute names containing it are unaffected.
std::vector<std::string_view> SplitOnWord(std::string_view text,
                                          std::string_view word) {
  const std::string needle = " " + std::string(word) + " ";
  std::vector<std::string_view> pieces;
  size_t start = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string_view::npos) {
    pieces.push_back(text.substr(start, pos - start));
    pos += needle.size();
    start = pos;
  }
  pieces.push_back(text.substr(start));
  return pieces;
}

std::vector<std::string_view> SplitOnAnd(std::string_view text) {
  return SplitOnWord(text, "and");
}

// Reads a leading identifier; advances *text past it.
StatusOr<std::string_view> TakeIdentifier(std::string_view* text) {
  *text = TrimWhitespace(*text);
  size_t len = 0;
  while (len < text->size() && IsIdentChar((*text)[len])) ++len;
  if (len == 0) {
    return Status::InvalidArgument("expected attribute name in '" +
                                   std::string(*text) + "'");
  }
  if (std::isdigit(static_cast<unsigned char>((*text)[0]))) {
    return Status::InvalidArgument("attribute name may not start with a digit: '" +
                                   std::string(text->substr(0, len)) + "'");
  }
  std::string_view ident = text->substr(0, len);
  *text = text->substr(len);
  return ident;
}

}  // namespace

// Parses an integer literal, or a double-quoted string when a dictionary is
// attached. Quoted operands may not contain commas or braces (the list
// splitter runs first).
StatusOr<Value> Parser::ParseOperand(std::string_view text) const {
  text = TrimWhitespace(text);
  if (!text.empty() && text.front() == '"') {
    if (strings_ == nullptr) {
      return Status::InvalidArgument(
          "string operand " + std::string(text) +
          " requires a StringDictionary attached to the parser");
    }
    if (text.size() < 2 || text.back() != '"') {
      return Status::InvalidArgument("unterminated string literal: " +
                                     std::string(text));
    }
    return strings_->Encode(text.substr(1, text.size() - 2));
  }
  return ParseInt64(text);
}

namespace {

// Parses a bracketed list "[lo, hi]" or "{v1, v2, ...}" with operands
// handled by `parse_operand`.
template <typename OperandFn>
StatusOr<std::vector<Value>> ParseBracketedValues(
    std::string_view text, char open, char close,
    const OperandFn& parse_operand) {
  text = TrimWhitespace(text);
  if (text.size() < 2 || text.front() != open || text.back() != close) {
    return Status::InvalidArgument("expected '" + std::string(1, open) +
                                   "...'" + std::string(1, close) +
                                   " in '" + std::string(text) + "'");
  }
  std::vector<Value> values;
  for (std::string_view piece :
       SplitAndTrim(text.substr(1, text.size() - 2), ',')) {
    APCM_ASSIGN_OR_RETURN(Value v, parse_operand(piece));
    values.push_back(v);
  }
  return values;
}

}  // namespace

StatusOr<Predicate> Parser::ParsePredicate(std::string_view text) const {
  APCM_ASSIGN_OR_RETURN(std::string_view name, TakeIdentifier(&text));
  const AttributeId attr = catalog_->GetOrAddAttribute(name);
  text = TrimWhitespace(text);

  // Keyword operators first.
  if (StartsWith(text, "between")) {
    APCM_ASSIGN_OR_RETURN(
        std::vector<Value> bounds,
        ParseBracketedValues(text.substr(7), '[', ']',
                             [this](std::string_view t) {
                               return ParseOperand(t);
                             }));
    if (bounds.size() != 2) {
      return Status::InvalidArgument("between expects [lo, hi]");
    }
    if (bounds[0] > bounds[1]) {
      return Status::InvalidArgument("between bounds out of order");
    }
    return Predicate(attr, bounds[0], bounds[1]);
  }
  if (StartsWith(text, "in")) {
    APCM_ASSIGN_OR_RETURN(
        std::vector<Value> values,
        ParseBracketedValues(text.substr(2), '{', '}',
                             [this](std::string_view t) {
                               return ParseOperand(t);
                             }));
    if (values.empty()) {
      return Status::InvalidArgument("in expects a non-empty value set");
    }
    return Predicate(attr, std::move(values));
  }

  // Symbolic operators; two-character forms before one-character prefixes.
  struct OpToken {
    std::string_view token;
    Op op;
  };
  static constexpr OpToken kOps[] = {
      {"!=", Op::kNe}, {"<=", Op::kLe}, {">=", Op::kGe},
      {"=", Op::kEq},  {"<", Op::kLt},  {">", Op::kGt},
  };
  for (const auto& [token, op] : kOps) {
    if (StartsWith(text, token)) {
      APCM_ASSIGN_OR_RETURN(Value v, ParseOperand(text.substr(token.size())));
      return Predicate(attr, op, v);
    }
  }
  return Status::InvalidArgument("unrecognized operator in '" +
                                 std::string(text) + "'");
}

StatusOr<BooleanExpression> Parser::ParseExpression(
    SubscriptionId id, std::string_view text) const {
  text = TrimWhitespace(text);
  std::vector<Predicate> predicates;
  if (!text.empty() && text != "<true>") {
    for (std::string_view piece : SplitOnAnd(text)) {
      APCM_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate(piece));
      predicates.push_back(std::move(pred));
    }
  }
  return BooleanExpression::Create(id, std::move(predicates));
}

StatusOr<std::vector<std::vector<Predicate>>> Parser::ParseDisjunction(
    std::string_view text) const {
  text = TrimWhitespace(text);
  std::vector<std::vector<Predicate>> disjuncts;
  for (std::string_view disjunct_text : SplitOnWord(text, "or")) {
    // Validate attribute-uniqueness per disjunct through ParseExpression.
    APCM_ASSIGN_OR_RETURN(BooleanExpression expr,
                          ParseExpression(0, disjunct_text));
    disjuncts.push_back(expr.predicates());
  }
  return disjuncts;
}

StatusOr<Event> Parser::ParseEvent(std::string_view text) const {
  std::vector<Event::Entry> entries;
  for (std::string_view piece : SplitAndTrim(text, ',')) {
    APCM_ASSIGN_OR_RETURN(std::string_view name, TakeIdentifier(&piece));
    piece = TrimWhitespace(piece);
    if (piece.empty() || piece.front() != '=') {
      return Status::InvalidArgument("expected '=' in event entry '" +
                                     std::string(piece) + "'");
    }
    APCM_ASSIGN_OR_RETURN(Value v, ParseOperand(piece.substr(1)));
    entries.push_back(
        Event::Entry{catalog_->GetOrAddAttribute(name), v});
  }
  return Event::Create(std::move(entries));
}

}  // namespace apcm
