#ifndef APCM_SIM_CORE_MODEL_H_
#define APCM_SIM_CORE_MODEL_H_

#include <vector>

#include "src/be/event.h"
#include "src/core/pcm.h"

namespace apcm::sim {

/// Deterministic multi-core performance model — the substitute for the
/// paper's multi-core evaluation server (DESIGN.md §4).
///
/// The real PcmMatcher::MatchBatch partitions clusters into contiguous
/// shards, one per thread, with a barrier and a per-event merge at the end.
/// Its wall time on N cores is therefore
///
///   T(N) = kappa * max_shard(sum of cluster work in shard)
///        + merge_per_match * total_matches
///        + barrier * N
///
/// where cluster work is measured in abstract work units (predicate
/// evaluations + weighted bitmap words — MatcherStats::WorkUnits) and kappa
/// (seconds per work unit) is calibrated from one *real* measured
/// single-thread run on the host. The model replays the exact partitioning
/// arithmetic of ThreadPool::ParallelFor, so its N=1 prediction reproduces
/// the measured run by construction and its N>1 predictions reflect the
/// algorithm's true work imbalance, merge volume, and synchronization —
/// everything except host-specific memory-bandwidth contention.
struct CoreModelOptions {
  /// Fixed synchronization cost charged per thread per batch.
  double barrier_seconds = 2e-6;
  /// Cost of funneling one match through the merge phase.
  double merge_seconds_per_match = 5e-9;
};

/// Measured inputs of one batch: per-cluster work and the match volume.
struct BatchProfile {
  std::vector<double> cluster_work;  ///< work units per cluster, batch total
  double total_matches = 0;          ///< (event, subscription) pairs emitted
};

/// Profiles `matcher`'s clusters against `events`: runs compressed
/// evaluation per cluster with local instrumentation and returns the
/// per-cluster work units. Does not disturb the matcher's own stats.
BatchProfile ProfileClusterWork(const core::PcmMatcher& matcher,
                                const std::vector<Event>& events);

/// One point of a scalability sweep.
struct SpeedupPoint {
  int threads;
  double seconds;  ///< predicted batch wall time
  double speedup;  ///< T(1) / T(N)
};

class MultiCoreModel {
 public:
  explicit MultiCoreModel(CoreModelOptions options = {})
      : options_(options) {}

  /// Installs the measured batch profile.
  void SetProfile(BatchProfile profile) { profile_ = std::move(profile); }

  /// Calibrates kappa from a real single-thread measurement of the same
  /// batch: `measured_seconds` of wall time for the profiled work.
  void Calibrate(double measured_seconds);

  /// Seconds per work unit after calibration.
  double kappa() const { return kappa_; }

  /// Predicted batch wall time on `threads` cores. Requires a profile and a
  /// calibration.
  double PredictSeconds(int threads) const;

  /// Predicted T(1)/T(N) for each entry of `thread_counts`.
  std::vector<SpeedupPoint> Sweep(const std::vector<int>& thread_counts) const;

 private:
  CoreModelOptions options_;
  BatchProfile profile_;
  double kappa_ = 0;
};

}  // namespace apcm::sim

#endif  // APCM_SIM_CORE_MODEL_H_
