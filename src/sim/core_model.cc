#include "src/sim/core_model.h"

#include <algorithm>

#include "src/base/macros.h"

namespace apcm::sim {

BatchProfile ProfileClusterWork(const core::PcmMatcher& matcher,
                                const std::vector<Event>& events) {
  BatchProfile profile;
  const auto& clusters = matcher.clusters();
  profile.cluster_work.reserve(clusters.size());
  std::vector<uint64_t> result;
  std::vector<SubscriptionId> matches;
  for (const core::CompressedCluster& cluster : clusters) {
    result.assign(cluster.words(), 0);
    MatcherStats stats;
    for (const Event& event : events) {
      if (cluster.MatchCompressed(event, result.data(), &stats)) {
        matches.clear();
        cluster.CollectMatches(result.data(), &matches);
        profile.total_matches += static_cast<double>(matches.size());
      }
    }
    profile.cluster_work.push_back(stats.WorkUnits());
  }
  return profile;
}

void MultiCoreModel::Calibrate(double measured_seconds) {
  double total_work = 0;
  for (double work : profile_.cluster_work) total_work += work;
  APCM_CHECK(total_work > 0);
  // Subtract the modeled non-work components of the measured single-thread
  // run so kappa reflects pure matching work; clamp for tiny batches.
  const double overhead = options_.barrier_seconds +
                          options_.merge_seconds_per_match *
                              profile_.total_matches;
  kappa_ = std::max(measured_seconds - overhead, measured_seconds * 0.1) /
           total_work;
}

double MultiCoreModel::PredictSeconds(int threads) const {
  APCM_CHECK(threads >= 1);
  APCM_CHECK(kappa_ > 0);
  const size_t n = profile_.cluster_work.size();
  // Replay PcmMatcher's strided cluster assignment: thread t owns clusters
  // {t, t+T, ...}.
  const auto stripes = static_cast<size_t>(threads);
  double max_stripe_work = 0;
  for (size_t stripe = 0; stripe < stripes; ++stripe) {
    double stripe_work = 0;
    for (size_t c = stripe; c < n; c += stripes) {
      stripe_work += profile_.cluster_work[c];
    }
    max_stripe_work = std::max(max_stripe_work, stripe_work);
  }
  return kappa_ * max_stripe_work +
         options_.merge_seconds_per_match * profile_.total_matches +
         options_.barrier_seconds * static_cast<double>(threads);
}

std::vector<SpeedupPoint> MultiCoreModel::Sweep(
    const std::vector<int>& thread_counts) const {
  std::vector<SpeedupPoint> points;
  points.reserve(thread_counts.size());
  const double t1 = PredictSeconds(1);
  for (int threads : thread_counts) {
    const double tn = PredictSeconds(threads);
    points.push_back(SpeedupPoint{threads, tn, t1 / tn});
  }
  return points;
}

}  // namespace apcm::sim
