#ifndef APCM_BITMAP_KERNELS_INTERNAL_H_
#define APCM_BITMAP_KERNELS_INTERNAL_H_

#include "src/bitmap/kernels.h"

/// Compile-time availability of the vector translation units. The x86
/// kernels use per-function target attributes (no special -m flags), so any
/// x86-64 GCC/Clang build carries every variant; non-x86 builds compile the
/// vector TUs to nothing and dispatch only ever sees the scalar table.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define APCM_BITMAP_HAVE_AVX2 1
#define APCM_BITMAP_HAVE_AVX512 1
#else
#define APCM_BITMAP_HAVE_AVX2 0
#define APCM_BITMAP_HAVE_AVX512 0
#endif

namespace apcm::bitmap {

#if APCM_BITMAP_HAVE_AVX2
/// True when CPUID reports AVX2 (and the OS saves the YMM state).
bool Avx2KernelsUsable();
const KernelTable& Avx2Kernels();
#endif

#if APCM_BITMAP_HAVE_AVX512
/// True when CPUID reports AVX-512 F+BW (the two extensions the kernels
/// use; no VPOPCNTDQ dependency so Skylake-SP-era parts qualify).
bool Avx512KernelsUsable();
const KernelTable& Avx512Kernels();
#endif

}  // namespace apcm::bitmap

#endif  // APCM_BITMAP_KERNELS_INTERNAL_H_
