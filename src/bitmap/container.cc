#include "src/bitmap/container.h"

#include <algorithm>

#include "src/base/macros.h"
#include "src/bitmap/bitmap.h"

namespace apcm::bitmap {

HybridBitmap::HybridBitmap(uint32_t universe_bits) : universe_(universe_bits) {}

void HybridBitmap::PromoteToBitset() {
  words_.assign(PaddedWords(universe_), 0);
  switch (kind_) {
    case Kind::kArray:
      for (uint32_t i : array_) words_[i / 64] |= 1ULL << (i % 64);
      array_.clear();
      array_.shrink_to_fit();
      break;
    case Kind::kRun:
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        SetBitRange(words_.data(), runs_[r], runs_[r + 1]);
      }
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    case Kind::kBitset:
      break;
  }
  kind_ = Kind::kBitset;
}

void HybridBitmap::DemoteToArray() {
  std::vector<uint32_t> members(count_);
  switch (kind_) {
    case Kind::kBitset: {
      const uint64_t n = ActiveKernels().collect_set_bits(
          words_.data(), words_.size(), 0, members.data());
      APCM_DCHECK(n == count_);
      (void)n;
      words_.clear();
      words_.shrink_to_fit();
      break;
    }
    case Kind::kRun: {
      size_t out = 0;
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        for (uint32_t i = 0; i < runs_[r + 1]; ++i) {
          members[out++] = runs_[r] + i;
        }
      }
      runs_.clear();
      runs_.shrink_to_fit();
      break;
    }
    case Kind::kArray:
      return;
  }
  array_ = std::move(members);
  kind_ = Kind::kArray;
}

uint32_t HybridBitmap::CountRuns() const {
  switch (kind_) {
    case Kind::kRun:
      return static_cast<uint32_t>(runs_.size() / 2);
    case Kind::kArray: {
      uint32_t runs = 0;
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i == 0 || array_[i] != array_[i - 1] + 1) ++runs;
      }
      return runs;
    }
    case Kind::kBitset: {
      uint32_t runs = 0;
      uint64_t last = 0;
      bool have_last = false;
      ForEachSetBit(words_.data(), words_.size(), [&](uint64_t i) {
        if (!have_last || i != last + 1) ++runs;
        last = i;
        have_last = true;
      });
      return runs;
    }
  }
  return 0;
}

void HybridBitmap::Add(uint32_t i) {
  APCM_DCHECK(i < universe_);
  switch (kind_) {
    case Kind::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), i);
      if (it != array_.end() && *it == i) return;
      array_.insert(it, i);
      ++count_;
      if (array_.size() > kArrayMax) PromoteToBitset();
      return;
    }
    case Kind::kBitset: {
      uint64_t& word = words_[i / 64];
      const uint64_t bit = 1ULL << (i % 64);
      if (word & bit) return;
      word |= bit;
      ++count_;
      return;
    }
    case Kind::kRun: {
      if (Test(i)) return;
      // Arbitrary point inserts fragment runs; fall back to the bitset and
      // let Optimize() re-pack when the caller is done mutating.
      PromoteToBitset();
      words_[i / 64] |= 1ULL << (i % 64);
      ++count_;
      return;
    }
  }
}

void HybridBitmap::Remove(uint32_t i) {
  APCM_DCHECK(i < universe_);
  switch (kind_) {
    case Kind::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), i);
      if (it == array_.end() || *it != i) return;
      array_.erase(it);
      --count_;
      return;
    }
    case Kind::kBitset: {
      uint64_t& word = words_[i / 64];
      const uint64_t bit = 1ULL << (i % 64);
      if (!(word & bit)) return;
      word &= ~bit;
      --count_;
      if (count_ < kArrayDemote) DemoteToArray();
      return;
    }
    case Kind::kRun: {
      if (!Test(i)) return;
      PromoteToBitset();
      words_[i / 64] &= ~(1ULL << (i % 64));
      --count_;
      if (count_ < kArrayDemote) DemoteToArray();
      return;
    }
  }
}

bool HybridBitmap::Test(uint32_t i) const {
  APCM_DCHECK(i < universe_);
  switch (kind_) {
    case Kind::kArray:
      return std::binary_search(array_.begin(), array_.end(), i);
    case Kind::kBitset:
      return (words_[i / 64] >> (i % 64)) & 1;
    case Kind::kRun: {
      // Last run with start <= i.
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        if (runs_[r] > i) break;
        if (i - runs_[r] < runs_[r + 1]) return true;
      }
      return false;
    }
  }
  return false;
}

void HybridBitmap::Optimize() {
  const uint32_t runs = CountRuns();
  const uint64_t array_bytes = static_cast<uint64_t>(count_) * 4;
  const uint64_t bitset_bytes = PaddedWords(universe_) * 8;
  const uint64_t run_bytes = static_cast<uint64_t>(runs) * 8;
  if (run_bytes < array_bytes && run_bytes < bitset_bytes) {
    std::vector<uint32_t> packed;
    packed.reserve(static_cast<size_t>(runs) * 2);
    uint32_t start = 0;
    uint32_t len = 0;
    for (uint32_t i : ToIndices()) {
      if (len != 0 && i == start + len) {
        ++len;
        continue;
      }
      if (len != 0) {
        packed.push_back(start);
        packed.push_back(len);
      }
      start = i;
      len = 1;
    }
    if (len != 0) {
      packed.push_back(start);
      packed.push_back(len);
    }
    array_.clear();
    array_.shrink_to_fit();
    words_.clear();
    words_.shrink_to_fit();
    runs_ = std::move(packed);
    kind_ = Kind::kRun;
  } else if (array_bytes <= bitset_bytes) {
    if (kind_ != Kind::kArray) DemoteToArray();
  } else {
    if (kind_ != Kind::kBitset) PromoteToBitset();
  }
}

void HybridBitmap::AndNotInto(uint64_t* words, uint64_t num_words) const {
  switch (kind_) {
    case Kind::kArray:
      for (uint32_t i : array_) words[i / 64] &= ~(1ULL << (i % 64));
      return;
    case Kind::kBitset:
      AndNotWords(words, words_.data(),
                  std::min<uint64_t>(num_words, words_.size()));
      return;
    case Kind::kRun:
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        ClearBitRange(words, runs_[r], runs_[r + 1]);
      }
      return;
  }
}

void HybridBitmap::AndInto(uint64_t* words, uint64_t num_words) const {
  switch (kind_) {
    case Kind::kBitset:
      AndWords(words, words_.data(),
               std::min<uint64_t>(num_words, words_.size()));
      if (num_words > words_.size()) {
        std::fill(words + words_.size(), words + num_words, 0);
      }
      return;
    case Kind::kArray:
    case Kind::kRun: {
      // AND against a sparse form = clear the complement, which is itself a
      // set of contiguous gaps between members/runs.
      uint64_t next = 0;  // first bit not yet resolved
      auto clear_gap_to = [&](uint64_t start) {
        if (start > next) {
          ClearBitRange(words, next, start - next);
        }
      };
      if (kind_ == Kind::kArray) {
        for (uint32_t i : array_) {
          clear_gap_to(i);
          next = static_cast<uint64_t>(i) + 1;
        }
      } else {
        for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
          clear_gap_to(runs_[r]);
          next = static_cast<uint64_t>(runs_[r]) + runs_[r + 1];
        }
      }
      const uint64_t total_bits = num_words * 64;
      if (total_bits > next) ClearBitRange(words, next, total_bits - next);
      return;
    }
  }
}

void HybridBitmap::OrInto(uint64_t* words, uint64_t num_words) const {
  switch (kind_) {
    case Kind::kArray:
      for (uint32_t i : array_) words[i / 64] |= 1ULL << (i % 64);
      return;
    case Kind::kBitset:
      OrWords(words, words_.data(),
              std::min<uint64_t>(num_words, words_.size()));
      return;
    case Kind::kRun:
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        SetBitRange(words, runs_[r], runs_[r + 1]);
      }
      return;
  }
}

void HybridBitmap::ToWords(uint64_t* words, uint64_t num_words) const {
  std::fill(words, words + num_words, 0);
  OrInto(words, num_words);
}

std::vector<uint32_t> HybridBitmap::ToIndices() const {
  std::vector<uint32_t> indices;
  indices.reserve(count_);
  switch (kind_) {
    case Kind::kArray:
      indices = array_;
      break;
    case Kind::kBitset:
      indices.resize(count_);
      indices.resize(ActiveKernels().collect_set_bits(
          words_.data(), words_.size(), 0, indices.data()));
      break;
    case Kind::kRun:
      for (size_t r = 0; r + 1 < runs_.size(); r += 2) {
        for (uint32_t i = 0; i < runs_[r + 1]; ++i) {
          indices.push_back(runs_[r] + i);
        }
      }
      break;
  }
  return indices;
}

uint64_t HybridBitmap::MemoryBytes() const {
  return array_.capacity() * sizeof(uint32_t) +
         words_.capacity() * sizeof(uint64_t) +
         runs_.capacity() * sizeof(uint32_t);
}

bool operator==(const HybridBitmap& a, const HybridBitmap& b) {
  return a.universe_ == b.universe_ && a.count_ == b.count_ &&
         a.ToIndices() == b.ToIndices();
}

}  // namespace apcm::bitmap
