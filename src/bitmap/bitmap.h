#ifndef APCM_BITMAP_BITMAP_H_
#define APCM_BITMAP_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bit_ops.h"
#include "src/base/macros.h"
#include "src/bitmap/kernels.h"

namespace apcm {

/// \file
/// Word-parallel bitmap kernel. Compressed cluster matching spends almost all
/// of its time in these loops, so the primitives are also exposed as free
/// functions over raw word spans: cluster masks live in flat arenas (one
/// allocation per cluster) rather than in individual Bitmap objects.
///
/// The span functions dispatch to the runtime-selected SIMD kernel table
/// (src/bitmap/kernels.h) above a small-span threshold; below it an inline
/// scalar loop avoids the indirect call. Either path computes identical
/// results — the kernel-oracle suite enforces bit-for-bit equivalence.

/// Number of 64-bit words needed to hold `bits` bits.
inline uint64_t WordsForBits(uint64_t bits) { return CeilDiv(bits, 64); }

/// Words for `bits` bits rounded up to a multiple of bitmap::kWordBlock, the
/// vector kernels' blocking granularity. Cluster bitmaps are allocated at
/// this width so the kernels stream whole blocks with no tail loop.
inline uint64_t PaddedWords(uint64_t bits) {
  const uint64_t words = WordsForBits(bits);
  return CeilDiv(words, bitmap::kWordBlock) * bitmap::kWordBlock;
}

/// Spans at or below this many words run an inline scalar loop instead of
/// dispatching through the kernel table: the indirect call costs more than
/// the work itself. Padded cluster spans (>= kWordBlock words) dispatch.
inline constexpr uint64_t kInlineSpanWords = 4;

/// dst[i] &= ~src[i] over `words` words. The core compressed-matching step:
/// clear the subscriptions that a failed predicate participates in.
inline void AndNotWords(uint64_t* dst, const uint64_t* src, uint64_t words) {
  if (words <= kInlineSpanWords) {
    for (uint64_t i = 0; i < words; ++i) dst[i] &= ~src[i];
    return;
  }
  bitmap::ActiveKernels().and_not_words(dst, src, words);
}

/// dst[i] &= src[i] over `words` words.
inline void AndWords(uint64_t* dst, const uint64_t* src, uint64_t words) {
  if (words <= kInlineSpanWords) {
    for (uint64_t i = 0; i < words; ++i) dst[i] &= src[i];
    return;
  }
  bitmap::ActiveKernels().and_words(dst, src, words);
}

/// dst[i] |= src[i] over `words` words.
inline void OrWords(uint64_t* dst, const uint64_t* src, uint64_t words) {
  if (words <= kInlineSpanWords) {
    for (uint64_t i = 0; i < words; ++i) dst[i] |= src[i];
    return;
  }
  bitmap::ActiveKernels().or_words(dst, src, words);
}

/// True iff all `words` words are zero.
inline bool IsZeroWords(const uint64_t* words_ptr, uint64_t words) {
  if (words <= kInlineSpanWords) {
    uint64_t acc = 0;
    for (uint64_t i = 0; i < words; ++i) acc |= words_ptr[i];
    return acc == 0;
  }
  return bitmap::ActiveKernels().is_zero_words(words_ptr, words);
}

/// Total set bits across `words` words.
inline uint64_t PopCountWords(const uint64_t* words_ptr, uint64_t words) {
  if (words <= kInlineSpanWords) {
    uint64_t total = 0;
    for (uint64_t i = 0; i < words; ++i) {
      total += static_cast<uint64_t>(PopCount(words_ptr[i]));
    }
    return total;
  }
  return bitmap::ActiveKernels().popcount_words(words_ptr, words);
}

/// Bit index of the lowest set bit across `words` words, or -1 if none.
inline int64_t FirstSetBit(const uint64_t* words_ptr, uint64_t words) {
  return bitmap::ActiveKernels().first_set_bit(words_ptr, words);
}

/// Sets bits [start, start + len) of the span to one. The span must be wide
/// enough; len == 0 is a no-op.
inline void SetBitRange(uint64_t* words, uint64_t start, uint64_t len) {
  if (len == 0) return;
  const uint64_t last = start + len - 1;
  const uint64_t w0 = start / 64;
  const uint64_t w1 = last / 64;
  const uint64_t first_mask = ~0ULL << (start % 64);
  const uint64_t last_mask = ~0ULL >> (63 - last % 64);
  if (w0 == w1) {
    words[w0] |= first_mask & last_mask;
    return;
  }
  words[w0] |= first_mask;
  for (uint64_t w = w0 + 1; w < w1; ++w) words[w] = ~0ULL;
  words[w1] |= last_mask;
}

/// Clears bits [start, start + len) of the span. The run-length slot-set
/// representation clears one contiguous range per run with this.
inline void ClearBitRange(uint64_t* words, uint64_t start, uint64_t len) {
  if (len == 0) return;
  const uint64_t last = start + len - 1;
  const uint64_t w0 = start / 64;
  const uint64_t w1 = last / 64;
  const uint64_t first_mask = ~0ULL << (start % 64);
  const uint64_t last_mask = ~0ULL >> (63 - last % 64);
  if (w0 == w1) {
    words[w0] &= ~(first_mask & last_mask);
    return;
  }
  words[w0] &= ~first_mask;
  for (uint64_t w = w0 + 1; w < w1; ++w) words[w] = 0;
  words[w1] &= ~last_mask;
}

/// Invokes fn(bit_index) for every set bit, in increasing order. bit_index is
/// relative to the start of the span.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words_ptr, uint64_t words, Fn fn) {
  for (uint64_t w = 0; w < words; ++w) {
    uint64_t word = words_ptr[w];
    while (word != 0) {
      const int bit = CountTrailingZeros(word);
      fn(w * 64 + static_cast<uint64_t>(bit));
      word &= word - 1;
    }
  }
}

/// Sets the first `bits` bits of the span to one and any tail bits of the
/// last word to zero (callers rely on tail bits staying clear).
inline void FillOnesWords(uint64_t* dst, uint64_t bits) {
  const uint64_t words = WordsForBits(bits);
  if (words == 0) return;
  for (uint64_t i = 0; i + 1 < words; ++i) dst[i] = ~0ULL;
  const uint64_t tail = bits % 64;
  dst[words - 1] = tail == 0 ? ~0ULL : (~0ULL >> (64 - tail));
}

/// Growable owning bitmap. Bits beyond size() in the last word are kept zero.
class Bitmap {
 public:
  /// Creates an all-zero bitmap with `bits` bits.
  explicit Bitmap(uint64_t bits = 0)
      : bits_(bits), words_(WordsForBits(bits), 0) {}

  uint64_t size() const { return bits_; }
  uint64_t num_words() const { return words_.size(); }
  const uint64_t* data() const { return words_.data(); }
  uint64_t* data() { return words_.data(); }

  /// Resizes to `bits` bits; new bits are zero.
  void Resize(uint64_t bits) {
    bits_ = bits;
    words_.assign(WordsForBits(bits), 0);
  }

  bool Test(uint64_t i) const {
    APCM_DCHECK(i < bits_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }
  void Set(uint64_t i) {
    APCM_DCHECK(i < bits_);
    words_[i / 64] |= 1ULL << (i % 64);
  }
  void Clear(uint64_t i) {
    APCM_DCHECK(i < bits_);
    words_[i / 64] &= ~(1ULL << (i % 64));
  }

  /// Sets all bits to one.
  void FillOnes() { FillOnesWords(words_.data(), bits_); }
  /// Sets all bits to zero.
  void FillZeros() { std::fill(words_.begin(), words_.end(), 0); }

  /// this &= ~other. Sizes must match.
  void AndNot(const Bitmap& other) {
    APCM_DCHECK(bits_ == other.bits_);
    AndNotWords(words_.data(), other.words_.data(), words_.size());
  }
  /// this &= other. Sizes must match.
  void And(const Bitmap& other) {
    APCM_DCHECK(bits_ == other.bits_);
    AndWords(words_.data(), other.words_.data(), words_.size());
  }
  /// this |= other. Sizes must match.
  void Or(const Bitmap& other) {
    APCM_DCHECK(bits_ == other.bits_);
    OrWords(words_.data(), other.words_.data(), words_.size());
  }

  bool IsZero() const { return IsZeroWords(words_.data(), words_.size()); }
  uint64_t Count() const { return PopCountWords(words_.data(), words_.size()); }

  /// Indices of set bits in increasing order.
  std::vector<uint64_t> ToIndices() const {
    std::vector<uint64_t> indices;
    indices.reserve(Count());
    ForEachSetBit(words_.data(), words_.size(),
                  [&](uint64_t i) { indices.push_back(i); });
    return indices;
  }

  /// "0101..." string, LSB first; for tests and debugging.
  std::string ToString() const {
    std::string s;
    s.reserve(bits_);
    for (uint64_t i = 0; i < bits_; ++i) s += Test(i) ? '1' : '0';
    return s;
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  uint64_t bits_;
  std::vector<uint64_t> words_;
};

}  // namespace apcm

#endif  // APCM_BITMAP_BITMAP_H_
