#include "src/bitmap/kernels_internal.h"

#if APCM_BITMAP_HAVE_AVX2

#include <immintrin.h>

#include "src/base/bit_ops.h"

// AVX2 bitmap kernels: 4 words (256 bits) per step, per-function target
// attributes so the rest of the binary stays baseline-ISA. All loads/stores
// are unaligned (penalty-free on every AVX2 part when the data happens to be
// aligned); spans padded to kWordBlock just skip the scalar tails.

namespace apcm::bitmap {
namespace {

#define APCM_TARGET_AVX2 __attribute__((target("avx2")))

APCM_TARGET_AVX2 void Avx2And(uint64_t* dst, const uint64_t* src,
                              uint64_t words) {
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < words; ++i) dst[i] &= src[i];
}

APCM_TARGET_AVX2 void Avx2AndNot(uint64_t* dst, const uint64_t* src,
                                 uint64_t words) {
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes ~a & b, so the mask goes in the first operand.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < words; ++i) dst[i] &= ~src[i];
}

APCM_TARGET_AVX2 void Avx2Or(uint64_t* dst, const uint64_t* src,
                             uint64_t words) {
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

/// Mula's nibble-LUT popcount: per-byte counts via two pshufb lookups, then
/// horizontal sums with psadbw into four 64-bit lanes.
APCM_TARGET_AVX2 uint64_t Avx2PopCount(const uint64_t* words_ptr,
                                       uint64_t words) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words_ptr + i));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(counts, _mm256_setzero_si256()));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < words; ++i) {
    total += static_cast<uint64_t>(PopCount(words_ptr[i]));
  }
  return total;
}

APCM_TARGET_AVX2 bool Avx2IsZero(const uint64_t* words_ptr, uint64_t words) {
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words_ptr + i));
    if (!_mm256_testz_si256(v, v)) return false;
  }
  uint64_t acc = 0;
  for (; i < words; ++i) acc |= words_ptr[i];
  return acc == 0;
}

APCM_TARGET_AVX2 int64_t Avx2FirstSet(const uint64_t* words_ptr,
                                      uint64_t words) {
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words_ptr + i));
    if (!_mm256_testz_si256(v, v)) {
      for (uint64_t w = i; w < i + 4; ++w) {
        if (words_ptr[w] != 0) {
          return static_cast<int64_t>(w * 64) +
                 CountTrailingZeros(words_ptr[w]);
        }
      }
    }
  }
  for (; i < words; ++i) {
    if (words_ptr[i] != 0) {
      return static_cast<int64_t>(i * 64) + CountTrailingZeros(words_ptr[i]);
    }
  }
  return -1;
}

/// Block-skipping collect: one vector zero test skips 256 bits of empty
/// space; nonzero blocks fall back to the scalar bit-extraction loop.
APCM_TARGET_AVX2 uint64_t Avx2Collect(const uint64_t* words_ptr,
                                      uint64_t words, uint32_t base,
                                      uint32_t* out) {
  uint64_t n = 0;
  auto extract = [&](uint64_t w) {
    uint64_t word = words_ptr[w];
    while (word != 0) {
      out[n++] = base + static_cast<uint32_t>(w * 64) +
                 static_cast<uint32_t>(CountTrailingZeros(word));
      word &= word - 1;
    }
  };
  uint64_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words_ptr + i));
    if (_mm256_testz_si256(v, v)) continue;
    for (uint64_t w = i; w < i + 4; ++w) extract(w);
  }
  for (; i < words; ++i) extract(i);
  return n;
}

#undef APCM_TARGET_AVX2

constexpr KernelTable kAvx2Table = {
    Avx2And,    Avx2AndNot,   Avx2Or,      Avx2PopCount,
    Avx2IsZero, Avx2FirstSet, Avx2Collect, SimdLevel::kAvx2,
};

}  // namespace

bool Avx2KernelsUsable() {
  // __builtin_cpu_supports folds in the OSXSAVE/YMM-state check.
  return __builtin_cpu_supports("avx2") != 0;
}

const KernelTable& Avx2Kernels() { return kAvx2Table; }

}  // namespace apcm::bitmap

#endif  // APCM_BITMAP_HAVE_AVX2
