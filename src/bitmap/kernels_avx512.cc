#include "src/bitmap/kernels_internal.h"

#if APCM_BITMAP_HAVE_AVX512

#include <immintrin.h>

#include "src/base/bit_ops.h"

// GCC implements the unmasked 512-bit logic intrinsics via their masked
// builtins seeded with _mm512_undefined_epi32(), which -Wmaybe-uninitialized
// flags under -Werror (GCC bug 105593). The intrinsic semantics are fine;
// silence the false positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

// AVX-512 bitmap kernels: 8 words (512 bits, one cache line) per step. Only
// the F and BW extensions are used — popcount is the nibble-LUT algorithm on
// 512-bit shuffles rather than VPOPCNTDQ, so Skylake-SP-era parts run these
// too. Padded spans (kWordBlock == 8) execute with no tail loop at all.

namespace apcm::bitmap {
namespace {

#define APCM_TARGET_AVX512 __attribute__((target("avx512f,avx512bw")))

APCM_TARGET_AVX512 void Avx512And(uint64_t* dst, const uint64_t* src,
                                  uint64_t words) {
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_epi64(d, s));
  }
  for (; i < words; ++i) dst[i] &= src[i];
}

APCM_TARGET_AVX512 void Avx512AndNot(uint64_t* dst, const uint64_t* src,
                                     uint64_t words) {
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_andnot_epi64(s, d));
  }
  for (; i < words; ++i) dst[i] &= ~src[i];
}

APCM_TARGET_AVX512 void Avx512Or(uint64_t* dst, const uint64_t* src,
                                 uint64_t words) {
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_epi64(d, s));
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

APCM_TARGET_AVX512 uint64_t Avx512PopCount(const uint64_t* words_ptr,
                                           uint64_t words) {
  const __m512i lut = _mm512_set4_epi32(0x04030302, 0x03020201, 0x03020201,
                                        0x02010100);
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  __m512i acc = _mm512_setzero_si512();
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i v = _mm512_loadu_si512(words_ptr + i);
    const __m512i lo = _mm512_and_si512(v, low_mask);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi32(v, 4), low_mask);
    const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                           _mm512_shuffle_epi8(lut, hi));
    acc = _mm512_add_epi64(acc,
                           _mm512_sad_epu8(counts, _mm512_setzero_si512()));
  }
  uint64_t total = _mm512_reduce_add_epi64(acc);
  for (; i < words; ++i) {
    total += static_cast<uint64_t>(PopCount(words_ptr[i]));
  }
  return total;
}

APCM_TARGET_AVX512 bool Avx512IsZero(const uint64_t* words_ptr,
                                     uint64_t words) {
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i v = _mm512_loadu_si512(words_ptr + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return false;
  }
  uint64_t acc = 0;
  for (; i < words; ++i) acc |= words_ptr[i];
  return acc == 0;
}

APCM_TARGET_AVX512 int64_t Avx512FirstSet(const uint64_t* words_ptr,
                                          uint64_t words) {
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i v = _mm512_loadu_si512(words_ptr + i);
    const __mmask8 nonzero = _mm512_test_epi64_mask(v, v);
    if (nonzero != 0) {
      const uint64_t w =
          i + static_cast<uint64_t>(
                  CountTrailingZeros(static_cast<uint64_t>(nonzero)));
      return static_cast<int64_t>(w * 64) + CountTrailingZeros(words_ptr[w]);
    }
  }
  for (; i < words; ++i) {
    if (words_ptr[i] != 0) {
      return static_cast<int64_t>(i * 64) + CountTrailingZeros(words_ptr[i]);
    }
  }
  return -1;
}

/// Block-skipping collect: the per-lane nonzero mask walks straight to the
/// populated words of each 512-bit block.
APCM_TARGET_AVX512 uint64_t Avx512Collect(const uint64_t* words_ptr,
                                          uint64_t words, uint32_t base,
                                          uint32_t* out) {
  uint64_t n = 0;
  auto extract = [&](uint64_t w) {
    uint64_t word = words_ptr[w];
    while (word != 0) {
      out[n++] = base + static_cast<uint32_t>(w * 64) +
                 static_cast<uint32_t>(CountTrailingZeros(word));
      word &= word - 1;
    }
  };
  uint64_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i v = _mm512_loadu_si512(words_ptr + i);
    uint64_t nonzero = _mm512_test_epi64_mask(v, v);
    while (nonzero != 0) {
      extract(i + static_cast<uint64_t>(CountTrailingZeros(nonzero)));
      nonzero &= nonzero - 1;
    }
  }
  for (; i < words; ++i) extract(i);
  return n;
}

#undef APCM_TARGET_AVX512

constexpr KernelTable kAvx512Table = {
    Avx512And,    Avx512AndNot,   Avx512Or,      Avx512PopCount,
    Avx512IsZero, Avx512FirstSet, Avx512Collect, SimdLevel::kAvx512,
};

}  // namespace

bool Avx512KernelsUsable() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
}

const KernelTable& Avx512Kernels() { return kAvx512Table; }

}  // namespace apcm::bitmap

#endif  // APCM_BITMAP_HAVE_AVX512
