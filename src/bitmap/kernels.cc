#include "src/bitmap/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/base/bit_ops.h"
#include "src/bitmap/kernels_internal.h"
#include "src/base/macros.h"

namespace apcm::bitmap {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Deliberately plain loops: this is the oracle the
// vector variants are differentially tested against, so clarity beats
// cleverness here (the compiler auto-vectorizes the easy ones anyway).

void ScalarAnd(uint64_t* dst, const uint64_t* src, uint64_t words) {
  for (uint64_t i = 0; i < words; ++i) dst[i] &= src[i];
}

void ScalarAndNot(uint64_t* dst, const uint64_t* src, uint64_t words) {
  for (uint64_t i = 0; i < words; ++i) dst[i] &= ~src[i];
}

void ScalarOr(uint64_t* dst, const uint64_t* src, uint64_t words) {
  for (uint64_t i = 0; i < words; ++i) dst[i] |= src[i];
}

uint64_t ScalarPopCount(const uint64_t* words_ptr, uint64_t words) {
  uint64_t total = 0;
  for (uint64_t i = 0; i < words; ++i) {
    total += static_cast<uint64_t>(PopCount(words_ptr[i]));
  }
  return total;
}

bool ScalarIsZero(const uint64_t* words_ptr, uint64_t words) {
  uint64_t acc = 0;
  for (uint64_t i = 0; i < words; ++i) acc |= words_ptr[i];
  return acc == 0;
}

int64_t ScalarFirstSet(const uint64_t* words_ptr, uint64_t words) {
  for (uint64_t i = 0; i < words; ++i) {
    if (words_ptr[i] != 0) {
      return static_cast<int64_t>(i * 64) + CountTrailingZeros(words_ptr[i]);
    }
  }
  return -1;
}

uint64_t ScalarCollect(const uint64_t* words_ptr, uint64_t words,
                       uint32_t base, uint32_t* out) {
  uint64_t n = 0;
  for (uint64_t w = 0; w < words; ++w) {
    uint64_t word = words_ptr[w];
    while (word != 0) {
      out[n++] = base + static_cast<uint32_t>(w * 64) +
                 static_cast<uint32_t>(CountTrailingZeros(word));
      word &= word - 1;
    }
  }
  return n;
}

constexpr KernelTable kScalarTable = {
    ScalarAnd,     ScalarAndNot,   ScalarOr,      ScalarPopCount,
    ScalarIsZero,  ScalarFirstSet, ScalarCollect, SimdLevel::kScalar,
};

SimdLevel g_startup_level = SimdLevel::kScalar;

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

StatusOr<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument("unknown SIMD level '" + name +
                                 "' (expected scalar, avx2, or avx512)");
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
#if APCM_BITMAP_HAVE_AVX2
  if (Avx2KernelsUsable()) levels.push_back(SimdLevel::kAvx2);
#endif
#if APCM_BITMAP_HAVE_AVX512
  if (Avx512KernelsUsable()) levels.push_back(SimdLevel::kAvx512);
#endif
  return levels;
}

SimdLevel BestSupportedSimdLevel() { return SupportedSimdLevels().back(); }

const KernelTable& KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return kScalarTable;
    case SimdLevel::kAvx2:
#if APCM_BITMAP_HAVE_AVX2
      APCM_CHECK(Avx2KernelsUsable());
      return Avx2Kernels();
#else
      break;
#endif
    case SimdLevel::kAvx512:
#if APCM_BITMAP_HAVE_AVX512
      APCM_CHECK(Avx512KernelsUsable());
      return Avx512Kernels();
#else
      break;
#endif
  }
  APCM_CHECK(false);  // level not compiled in — guard with SupportedSimdLevels
  return kScalarTable;
}

Status SetActiveSimdLevel(SimdLevel level) {
  for (SimdLevel supported : SupportedSimdLevels()) {
    if (supported == level) {
      ActiveKernels();  // ensure startup init happened first
      internal::active_table.store(&KernelsFor(level),
                                   std::memory_order_release);
      return Status::OK();
    }
  }
  return Status::InvalidArgument(std::string("SIMD level '") +
                                 SimdLevelName(level) +
                                 "' is not supported on this host");
}

SimdLevel StartupSimdLevel() {
  ActiveKernels();  // force init
  return g_startup_level;
}

namespace internal {

std::atomic<const KernelTable*> active_table{nullptr};

const KernelTable* InitActiveTable() {
  static std::once_flag once;
  std::call_once(once, [] {
    SimdLevel level = BestSupportedSimdLevel();
    if (const char* env = std::getenv("APCM_SIMD")) {
      const std::string requested = env;
      if (!requested.empty() && requested != "auto") {
        auto parsed = ParseSimdLevel(requested);
        bool usable = false;
        if (parsed.ok()) {
          for (SimdLevel supported : SupportedSimdLevels()) {
            if (supported == *parsed) usable = true;
          }
        }
        if (usable) {
          level = *parsed;
        } else {
          std::fprintf(stderr,
                       "APCM_SIMD=%s is not available on this host; using "
                       "%s kernels\n",
                       requested.c_str(), SimdLevelName(level));
        }
      }
    }
    g_startup_level = level;
    active_table.store(&KernelsFor(level), std::memory_order_release);
  });
  return active_table.load(std::memory_order_acquire);
}

}  // namespace internal
}  // namespace apcm::bitmap
