#ifndef APCM_BITMAP_KERNELS_H_
#define APCM_BITMAP_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace apcm::bitmap {

/// \file
/// Vectorized bitmap kernels with runtime dispatch.
///
/// The hot word-span operations of compressed matching (and, and-not, or,
/// popcount, zero test, first-set, iterate-set-bits) are implemented once per
/// instruction-set level and selected at runtime: the best level the CPU
/// supports wins, overridable with the APCM_SIMD environment variable
/// ("scalar", "avx2", "avx512", or "auto") for testing and benchmarking.
/// Every variant is bit-for-bit equivalent to the scalar reference — the
/// differential suite in tests/bitmap_kernel_test.cc enforces this across
/// alignments, tail lengths, and adversarial bit patterns.
///
/// Spans are raw uint64 word arrays (cluster masks live in flat arenas, not
/// Bitmap objects). Kernels accept any alignment and any length, including
/// zero; lengths that are a multiple of kWordBlock words hit the no-tail
/// fast path, which is why the cluster layout pads its bitmaps (see
/// PaddedWords in bitmap.h).

/// Instruction-set levels, in increasing order of capability. The numeric
/// values are stable (exposed as the apcm_simd_level metric).
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Printable name: "scalar" / "avx2" / "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" / "avx2" / "avx512". InvalidArgument on anything else
/// ("auto" is handled by the dispatch layer, not here).
StatusOr<SimdLevel> ParseSimdLevel(const std::string& name);

/// Word granularity the vector kernels are blocked on (8 words = 512 bits =
/// one cache line). Spans padded to a multiple of this never execute a
/// scalar tail loop.
inline constexpr uint64_t kWordBlock = 8;

/// One implementation of every kernel operation. All operate on `words`
/// 64-bit words; all tolerate words == 0 and arbitrary alignment.
struct KernelTable {
  /// dst[i] &= src[i].
  void (*and_words)(uint64_t* dst, const uint64_t* src, uint64_t words);
  /// dst[i] &= ~src[i].
  void (*and_not_words)(uint64_t* dst, const uint64_t* src, uint64_t words);
  /// dst[i] |= src[i].
  void (*or_words)(uint64_t* dst, const uint64_t* src, uint64_t words);
  /// Total set bits.
  uint64_t (*popcount_words)(const uint64_t* words_ptr, uint64_t words);
  /// True iff every word is zero.
  bool (*is_zero_words)(const uint64_t* words_ptr, uint64_t words);
  /// Bit index of the lowest set bit, or -1 if the span is zero.
  int64_t (*first_set_bit)(const uint64_t* words_ptr, uint64_t words);
  /// Writes the indices of set bits (offset by `base`) to `out` in
  /// ascending order and returns how many were written. `out` must have
  /// room for every set bit (popcount of the span).
  uint64_t (*collect_set_bits)(const uint64_t* words_ptr, uint64_t words,
                               uint32_t base, uint32_t* out);
  SimdLevel level;
};

/// The scalar reference implementation — the oracle every vector variant is
/// tested against.
const KernelTable& ScalarKernels();

/// Levels this binary can run on this host: the intersection of what was
/// compiled in and what CPUID reports. Always contains kScalar; ascending.
std::vector<SimdLevel> SupportedSimdLevels();

/// The highest entry of SupportedSimdLevels().
SimdLevel BestSupportedSimdLevel();

/// The table for `level`. CHECK-fails if the level is not supported on this
/// host (guard with SupportedSimdLevels).
const KernelTable& KernelsFor(SimdLevel level);

/// Switches the process-wide active kernel table. InvalidArgument if the
/// level is not supported. Not synchronized with in-flight matching — call
/// at startup or between test cases, not while batches are running (every
/// level computes identical results, so the race is benign for correctness
/// of individual calls, but perf counters would blend levels).
Status SetActiveSimdLevel(SimdLevel level);

/// The level selected at first use: APCM_SIMD if set (and supported — an
/// unsupported or unknown request warns on stderr and falls back), else the
/// best supported level. Unaffected by later SetActiveSimdLevel calls; lets
/// tests verify the environment override took effect.
SimdLevel StartupSimdLevel();

namespace internal {
extern std::atomic<const KernelTable*> active_table;
/// Slow path of ActiveKernels: applies APCM_SIMD, publishes the table.
const KernelTable* InitActiveTable();
}  // namespace internal

/// The process-wide active table. One relaxed load on the fast path.
inline const KernelTable& ActiveKernels() {
  const KernelTable* table =
      internal::active_table.load(std::memory_order_acquire);
  return table != nullptr ? *table : *internal::InitActiveTable();
}

/// Level of the active table.
inline SimdLevel ActiveSimdLevel() { return ActiveKernels().level; }

}  // namespace apcm::bitmap

#endif  // APCM_BITMAP_KERNELS_H_
