#ifndef APCM_BITMAP_CONTAINER_H_
#define APCM_BITMAP_CONTAINER_H_

#include <cstdint>
#include <vector>

namespace apcm::bitmap {

/// \file
/// Roaring-style hybrid bitmap container over a fixed universe of bits.
///
/// A set of slot indices can be stored three ways, each optimal in a
/// different regime:
///  * kArray  — a sorted vector of indices; smallest and fastest while the
///              set is sparse;
///  * kBitset — a padded word span; constant-time membership and streaming
///              kernel ops once the set is dense;
///  * kRun    — (start, length) pairs; wins when members cluster into few
///              contiguous ranges, as slot sets of range predicates do after
///              clustering sorts similar subscriptions together.
///
/// The container promotes and demotes automatically as it mutates, with
/// hysteresis so a membership count oscillating around a threshold does not
/// thrash representations. Optimize() additionally considers the run form,
/// which mutation paths never pick on their own (run maintenance under
/// arbitrary single-bit churn is not worth it — build the set, then pack it).
///
/// The word-span operations (AndInto/AndNotInto/OrInto/ToWords) apply the
/// container to a caller-provided span through the runtime-dispatched SIMD
/// kernels, so the dense form streams at the active vector width.
class HybridBitmap {
 public:
  enum class Kind : uint8_t { kArray = 0, kBitset = 1, kRun = 2 };

  /// Array-to-bitset promotion point: past this many members the sorted
  /// vector costs more memory than the words and loses its locality edge.
  static constexpr uint32_t kArrayMax = 64;
  /// Bitset-to-array demotion point; below kArrayMax for hysteresis.
  static constexpr uint32_t kArrayDemote = 48;

  /// An all-zero container over [0, universe_bits).
  explicit HybridBitmap(uint32_t universe_bits = 0);

  uint32_t universe() const { return universe_; }
  Kind kind() const { return kind_; }
  uint32_t Count() const { return count_; }
  bool Empty() const { return count_ == 0; }

  /// Inserts bit i (idempotent). Requires i < universe().
  void Add(uint32_t i);
  /// Erases bit i (idempotent). Requires i < universe().
  void Remove(uint32_t i);
  bool Test(uint32_t i) const;

  /// Repacks into the most compact of the three representations for the
  /// current contents (the only path that selects kRun).
  void Optimize();

  /// dst[i] &= ~self over PaddedWords(universe()) words.
  void AndNotInto(uint64_t* words, uint64_t num_words) const;
  /// dst[i] &= self.
  void AndInto(uint64_t* words, uint64_t num_words) const;
  /// dst[i] |= self.
  void OrInto(uint64_t* words, uint64_t num_words) const;
  /// Overwrites the span with the container's contents (tail words zero).
  void ToWords(uint64_t* words, uint64_t num_words) const;

  /// Member indices in ascending order.
  std::vector<uint32_t> ToIndices() const;

  /// Heap bytes of the active representation.
  uint64_t MemoryBytes() const;

  /// Semantic equality: same universe and same members, regardless of how
  /// either side happens to be represented.
  friend bool operator==(const HybridBitmap& a, const HybridBitmap& b);

 private:
  void PromoteToBitset();
  void DemoteToArray();
  /// Number of maximal contiguous runs in the current contents.
  uint32_t CountRuns() const;

  uint32_t universe_ = 0;
  uint32_t count_ = 0;
  Kind kind_ = Kind::kArray;
  std::vector<uint32_t> array_;  ///< kArray: sorted member indices
  std::vector<uint64_t> words_;  ///< kBitset: PaddedWords(universe_) words
  std::vector<uint32_t> runs_;   ///< kRun: (start, length) pairs, flattened
};

}  // namespace apcm::bitmap

#endif  // APCM_BITMAP_CONTAINER_H_
