#include "src/index/counting.h"

#include <algorithm>

#include "src/base/macros.h"

namespace apcm::index {

void CountingMatcher::Build(
    const std::vector<BooleanExpression>& subscriptions) {
  // Subscription ids index the counter arrays directly, so they must be
  // dense; the workload generator and engine guarantee this.
  SubscriptionId max_id = 0;
  AttributeId max_attr = 0;
  for (const auto& sub : subscriptions) {
    max_id = std::max(max_id, sub.id());
    for (const auto& pred : sub.predicates()) {
      max_attr = std::max(max_attr, pred.attribute());
    }
  }
  const size_t num_slots = subscriptions.empty() ? 0 : size_t{max_id} + 1;
  required_.assign(num_slots, 0);
  counters_.assign(num_slots, 0);
  counter_epoch_.assign(num_slots, 0);
  per_attribute_.clear();
  per_attribute_.resize(subscriptions.empty() ? 0 : size_t{max_attr} + 1);
  payload_owner_.clear();
  match_all_.clear();

  std::vector<ValueInterval> intervals;
  for (const auto& sub : subscriptions) {
    required_[sub.id()] = static_cast<uint32_t>(sub.size());
    if (sub.predicates().empty()) {
      match_all_.push_back(sub.id());
      continue;
    }
    for (const auto& pred : sub.predicates()) {
      // One payload per (subscription, predicate) instance. A predicate's
      // decomposition intervals are disjoint, so a stab hits at most one —
      // the counter is incremented at most once per predicate.
      const auto payload = static_cast<uint32_t>(payload_owner_.size());
      payload_owner_.push_back(sub.id());
      intervals.clear();
      pred.AppendIntervals(domain_, &intervals);
      for (const ValueInterval& interval : intervals) {
        per_attribute_[pred.attribute()].Add(interval, payload);
      }
    }
  }
  for (IntervalIndex& index : per_attribute_) index.Build();
  std::sort(match_all_.begin(), match_all_.end());
}

void CountingMatcher::Match(const Event& event,
                            std::vector<SubscriptionId>* matches) {
  matches->clear();
  ++epoch_;
  const uint32_t epoch = epoch_;
  uint64_t stabs = 0;
  for (const Event::Entry& entry : event.entries()) {
    if (entry.attr >= per_attribute_.size()) continue;
    per_attribute_[entry.attr].Stab(entry.value, [&](uint32_t payload) {
      ++stabs;
      const SubscriptionId owner = payload_owner_[payload];
      if (counter_epoch_[owner] != epoch) {
        counter_epoch_[owner] = epoch;
        counters_[owner] = 0;
      }
      if (++counters_[owner] == required_[owner]) {
        matches->push_back(owner);
      }
    });
  }
  matches->insert(matches->end(), match_all_.begin(), match_all_.end());
  std::sort(matches->begin(), matches->end());
  stats_.events_matched++;
  stats_.predicate_evals += stabs;  // each stab hit ≈ one predicate check
  stats_.candidates_checked += stabs;
  stats_.matches_emitted += matches->size();
}

uint64_t CountingMatcher::MemoryBytes() const {
  uint64_t bytes = payload_owner_.capacity() * sizeof(SubscriptionId) +
                   required_.capacity() * sizeof(uint32_t) +
                   counters_.capacity() * sizeof(uint32_t) +
                   counter_epoch_.capacity() * sizeof(uint32_t);
  for (const IntervalIndex& index : per_attribute_) {
    bytes += index.MemoryBytes();
  }
  return bytes;
}

}  // namespace apcm::index
