#include "src/index/betree.h"

#include <algorithm>
#include <unordered_map>

#include "src/base/macros.h"

namespace apcm::index {

// ---- node structures --------------------------------------------------

struct BETreeMatcher::CNode {
  /// Expressions held locally (not yet pushed into a partition).
  std::vector<const BooleanExpression*> exprs;
  /// Partitions created by space cuts, in creation order.
  std::vector<std::unique_ptr<PNode>> pnodes;
};

struct BETreeMatcher::Bucket {
  ValueInterval range;
  CNode content;
  std::unique_ptr<Bucket> left;   // lower half of range
  std::unique_ptr<Bucket> right;  // upper half of range
};

struct BETreeMatcher::PNode {
  AttributeId attr = 0;
  Bucket root;
};

namespace {

/// Hull of the values that can satisfy `pred`, clipped to `domain`; empty if
/// no in-domain value can satisfy it.
ValueInterval PlacementInterval(const Predicate& pred, ValueInterval domain) {
  std::vector<ValueInterval> intervals;
  pred.AppendIntervals(domain, &intervals);
  if (intervals.empty()) return ValueInterval{1, 0};  // empty
  return ValueInterval{intervals.front().lo, intervals.back().hi};
}

const Predicate* FindPredicate(const BooleanExpression& expr,
                               AttributeId attr) {
  // Predicates are attribute-sorted.
  auto it = std::lower_bound(
      expr.predicates().begin(), expr.predicates().end(), attr,
      [](const Predicate& p, AttributeId a) { return p.attribute() < a; });
  if (it == expr.predicates().end() || it->attribute() != attr) return nullptr;
  return &*it;
}

}  // namespace

BETreeMatcher::BETreeMatcher(BETreeOptions options) : options_(options) {}

BETreeMatcher::~BETreeMatcher() = default;

void BETreeMatcher::Build(const std::vector<BooleanExpression>& subscriptions) {
  // The clustering hierarchy needs a finite value domain; derive it from the
  // subscription set (the hull of all predicate operands). Events may carry
  // values outside this hull — descent clamps them, which is correct because
  // every placement interval is clipped to the hull (see Match).
  Value lo = 0;
  Value hi = 0;
  bool any = false;
  for (const auto& sub : subscriptions) {
    for (const auto& pred : sub.predicates()) {
      Value plo = pred.v1();
      Value phi = pred.op() == Op::kBetween ? pred.v2() : pred.v1();
      if (pred.op() == Op::kIn) {
        plo = pred.values().front();
        phi = pred.values().back();
      }
      if (!any) {
        lo = plo;
        hi = phi;
        any = true;
      } else {
        lo = std::min(lo, plo);
        hi = std::max(hi, phi);
      }
    }
  }
  domain_ = any ? ValueInterval{lo, hi} : ValueInterval{0, 0};

  root_ = std::make_unique<CNode>();
  std::vector<AttributeId> used_attrs;
  for (const auto& sub : subscriptions) {
    Insert(root_.get(), &sub, &used_attrs);
    APCM_DCHECK(used_attrs.empty());
  }
}

void BETreeMatcher::Insert(CNode* node, const BooleanExpression* expr,
                           std::vector<AttributeId>* used_attrs) {
  // Route into the first existing partition whose attribute the expression
  // constrains with a placeable (non-empty) interval.
  for (const auto& pnode : node->pnodes) {
    const Predicate* pred = FindPredicate(*expr, pnode->attr);
    if (pred == nullptr) continue;
    const ValueInterval placement = PlacementInterval(*pred, domain_);
    if (placement.Empty()) continue;  // unsatisfiable in-domain: stay local
    // Phase-2 clustering: descend to the deepest bucket fully containing
    // the placement interval, creating children lazily.
    Bucket* bucket = &pnode->root;
    for (int depth = 0; depth < options_.max_cluster_depth; ++depth) {
      const ValueInterval range = bucket->range;
      if (range.Width() <= 1) break;
      const Value mid = range.lo + static_cast<Value>((range.Width() - 1) / 2);
      if (placement.hi <= mid) {
        if (bucket->left == nullptr) {
          bucket->left = std::make_unique<Bucket>();
          bucket->left->range = ValueInterval{range.lo, mid};
        }
        bucket = bucket->left.get();
      } else if (placement.lo > mid) {
        if (bucket->right == nullptr) {
          bucket->right = std::make_unique<Bucket>();
          bucket->right->range = ValueInterval{mid + 1, range.hi};
        }
        bucket = bucket->right.get();
      } else {
        break;  // spans the midpoint: this bucket is the tightest fit
      }
    }
    used_attrs->push_back(pnode->attr);
    Insert(&bucket->content, expr, used_attrs);
    used_attrs->pop_back();
    return;
  }
  node->exprs.push_back(expr);
  MaybeSplit(node, used_attrs);
}

void BETreeMatcher::MaybeSplit(CNode* node,
                               std::vector<AttributeId>* used_attrs) {
  while (node->exprs.size() > options_.max_leaf_capacity) {
    // Phase-1 partitioning: score attributes by how many local expressions
    // constrain them; skip attributes already used on the path or already
    // partitioned at this node.
    std::unordered_map<AttributeId, uint32_t> scores;
    for (const BooleanExpression* expr : node->exprs) {
      for (const Predicate& pred : expr->predicates()) {
        scores[pred.attribute()]++;
      }
    }
    for (const auto& pnode : node->pnodes) scores.erase(pnode->attr);
    for (AttributeId attr : *used_attrs) scores.erase(attr);

    AttributeId best_attr = 0;
    uint32_t best_score = 0;
    for (const auto& [attr, score] : scores) {
      if (score > best_score ||
          (score == best_score && best_score > 0 && attr < best_attr)) {
        best_attr = attr;
        best_score = score;
      }
    }
    if (best_score < options_.min_partition_size) return;  // not worth a cut

    auto pnode = std::make_unique<PNode>();
    pnode->attr = best_attr;
    pnode->root.range = domain_;
    node->pnodes.push_back(std::move(pnode));

    // Redistribute: re-insert the local list through the routing logic so
    // expressions constraining best_attr move into the new partition.
    std::vector<const BooleanExpression*> local;
    local.swap(node->exprs);
    bool moved_any = false;
    for (const BooleanExpression* expr : local) {
      const Predicate* pred = FindPredicate(*expr, best_attr);
      if (pred != nullptr && !PlacementInterval(*pred, domain_).Empty()) {
        moved_any = true;
        Insert(node, expr, used_attrs);  // routes into the new partition
      } else {
        node->exprs.push_back(expr);
      }
    }
    if (!moved_any) return;  // defensive: nothing placeable, stop cutting
  }
}

void BETreeMatcher::MatchCNode(const CNode& node, const Event& event,
                               std::vector<SubscriptionId>* matches) {
  uint64_t evals = 0;
  for (const BooleanExpression* expr : node.exprs) {
    ++stats_.candidates_checked;
    if (expr->MatchesCounting(event, &evals)) {
      matches->push_back(expr->id());
    }
  }
  stats_.predicate_evals += evals;
  for (const auto& pnode : node.pnodes) {
    const Value* value = event.Find(pnode->attr);
    if (value == nullptr) continue;  // partition attr absent: cannot match
    const Value v = std::clamp(*value, domain_.lo, domain_.hi);
    const Bucket* bucket = &pnode->root;
    while (bucket != nullptr) {
      MatchCNode(bucket->content, event, matches);
      const ValueInterval range = bucket->range;
      if (range.Width() <= 1) break;
      const Value mid = range.lo + static_cast<Value>((range.Width() - 1) / 2);
      bucket = v <= mid ? bucket->left.get() : bucket->right.get();
    }
  }
}

void BETreeMatcher::Match(const Event& event,
                          std::vector<SubscriptionId>* matches) {
  APCM_CHECK(root_ != nullptr);
  matches->clear();
  MatchCNode(*root_, event, matches);
  std::sort(matches->begin(), matches->end());
  stats_.events_matched++;
  stats_.matches_emitted += matches->size();
}

// Single traversal computing both the byte footprint and the structural
// shape; the public accessors each project one of the two.
void BETreeMatcher::Walk(uint64_t* bytes, Shape* shape) const {
  auto walk_cnode = [&](auto&& self, const CNode& node,
                        uint64_t depth) -> void {
    shape->cluster_nodes++;
    shape->max_depth = std::max(shape->max_depth, depth);
    *bytes += sizeof(CNode) +
              node.exprs.capacity() * sizeof(const BooleanExpression*) +
              node.pnodes.capacity() * sizeof(std::unique_ptr<PNode>);
    for (const auto& pnode : node.pnodes) {
      shape->partition_nodes++;
      *bytes += sizeof(PNode);
      auto walk_bucket = [&](auto&& bself, const Bucket& bucket) -> void {
        shape->buckets++;
        *bytes += sizeof(Bucket);
        self(self, bucket.content, depth + 1);
        if (bucket.left) bself(bself, *bucket.left);
        if (bucket.right) bself(bself, *bucket.right);
      };
      walk_bucket(walk_bucket, pnode->root);
    }
  };
  if (root_ != nullptr) walk_cnode(walk_cnode, *root_, 0);
}

uint64_t BETreeMatcher::MemoryBytes() const {
  uint64_t bytes = 0;
  Shape shape;
  Walk(&bytes, &shape);
  return bytes;
}

BETreeMatcher::Shape BETreeMatcher::ComputeShape() const {
  uint64_t bytes = 0;
  Shape shape;
  Walk(&bytes, &shape);
  return shape;
}

}  // namespace apcm::index
