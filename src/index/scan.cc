#include "src/index/scan.h"

#include "src/base/macros.h"

namespace apcm::index {

void ScanMatcher::Match(const Event& event,
                        std::vector<SubscriptionId>* matches) {
  APCM_CHECK(subscriptions_ != nullptr);
  matches->clear();
  uint64_t evals = 0;
  for (const BooleanExpression& sub : *subscriptions_) {
    ++stats_.candidates_checked;
    if (sub.MatchesCounting(event, &evals)) {
      matches->push_back(sub.id());
    }
  }
  stats_.predicate_evals += evals;
  stats_.events_matched++;
  stats_.matches_emitted += matches->size();
}

}  // namespace apcm::index
