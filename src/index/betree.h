#ifndef APCM_INDEX_BETREE_H_
#define APCM_INDEX_BETREE_H_

#include <memory>
#include <vector>

#include "src/be/value.h"
#include "src/index/matcher.h"

namespace apcm::index {

/// Tuning knobs of the BE-Tree.
struct BETreeOptions {
  /// A cluster node is split (space-cut) when its local expression list
  /// exceeds this capacity.
  uint32_t max_leaf_capacity = 16;
  /// Minimum number of expressions sharing an attribute for that attribute
  /// to be worth a partition.
  uint32_t min_partition_size = 4;
  /// Maximum depth of a p-node's value-clustering hierarchy.
  int max_cluster_depth = 12;
};

/// Reconstruction of the BE-Tree (Sadoghi & Jacobsen, SIGMOD'11) — the prior
/// state-of-the-art sequential matcher that A-PCM compares against.
///
/// Two-phase space cutting, as in the paper:
///  * Phase 1 (partitioning): an overflowing cluster node picks the
///    attribute that appears in most of its expressions (and is unused on
///    the path) and creates a partition node (p-node) for it; expressions
///    constraining that attribute move into the p-node, the rest stay local.
///  * Phase 2 (clustering): inside a p-node, expressions are clustered by
///    their predicate's value interval on the partition attribute: a binary
///    hierarchy halves the domain recursively, and an expression lands at
///    the deepest bucket whose range fully contains its interval (so a
///    matching event's value is guaranteed to lie on the bucket's path).
///
/// Matching descends: at each cluster node it evaluates the local
/// expressions with short-circuit, then for every p-node whose attribute the
/// event carries, walks the single root-to-leaf bucket path containing the
/// event's value, recursing into each bucket's cluster node.
class BETreeMatcher : public Matcher {
 public:
  explicit BETreeMatcher(BETreeOptions options = {});
  ~BETreeMatcher() override;

  std::string Name() const override { return "be-tree"; }

  void Build(const std::vector<BooleanExpression>& subscriptions) override;

  void Match(const Event& event,
             std::vector<SubscriptionId>* matches) override;

  const MatcherStats& stats() const override { return stats_; }
  uint64_t MemoryBytes() const override;

  /// Structural counters for tests and the design ablation.
  struct Shape {
    uint64_t cluster_nodes = 0;
    uint64_t partition_nodes = 0;
    uint64_t buckets = 0;
    uint64_t max_depth = 0;
  };
  Shape ComputeShape() const;

 private:
  struct Bucket;
  struct PNode;
  struct CNode;

  void Insert(CNode* node, const BooleanExpression* expr,
              std::vector<AttributeId>* used_attrs);
  void MaybeSplit(CNode* node, std::vector<AttributeId>* used_attrs);
  void MatchCNode(const CNode& node, const Event& event,
                  std::vector<SubscriptionId>* matches);
  void Walk(uint64_t* bytes, Shape* shape) const;

  BETreeOptions options_;
  ValueInterval domain_{0, 0};
  std::unique_ptr<CNode> root_;
  MatcherStats stats_;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_BETREE_H_
