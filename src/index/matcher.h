#ifndef APCM_INDEX_MATCHER_H_
#define APCM_INDEX_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/be/event.h"
#include "src/be/expression.h"

namespace apcm {

/// Instrumentation counters every matcher maintains. These drive the
/// adaptive cost model, the multi-core work model (DESIGN.md §4), and the
/// benchmark reports. Counters are cumulative; callers snapshot/diff.
struct MatcherStats {
  uint64_t events_matched = 0;     ///< events processed
  uint64_t predicate_evals = 0;    ///< individual predicate evaluations
  uint64_t bitmap_words = 0;       ///< 64-bit bitmap words touched
  uint64_t candidates_checked = 0; ///< expressions examined (full or partial)
  uint64_t matches_emitted = 0;    ///< total (event, subscription) matches

  MatcherStats& operator+=(const MatcherStats& other) {
    events_matched += other.events_matched;
    predicate_evals += other.predicate_evals;
    bitmap_words += other.bitmap_words;
    candidates_checked += other.candidates_checked;
    matches_emitted += other.matches_emitted;
    return *this;
  }

  /// Abstract work units consumed, the currency of the cost model: one
  /// predicate evaluation ≈ one unit, one bitmap word ≈ 1/4 unit (a masked
  /// and-not is far cheaper than a predicate compare+branch).
  double WorkUnits() const {
    return static_cast<double>(predicate_evals) +
           0.25 * static_cast<double>(bitmap_words);
  }
};

/// One profiled cluster in a matcher hot-spot ranking (see
/// Matcher::CollectHotspots): where the matching budget went, attributable
/// to a concrete group of subscriptions. Counters cover *profiled* batches
/// only (the profiler samples 1 in N batches), so entries compare against
/// each other, not against wall time.
struct HotspotEntry {
  uint32_t shard = 0;              ///< owning shard (0 when unsharded)
  uint32_t cluster = 0;            ///< cluster index within its matcher
  uint32_t subscriptions = 0;      ///< expressions in the cluster
  SubscriptionId example_sub = 0;  ///< one member id, for operator lookup
  uint64_t batches = 0;            ///< profiled (cluster, batch) evaluations
  uint64_t ns = 0;                 ///< accumulated wall time, nanoseconds
  uint64_t predicate_evals = 0;
  uint64_t candidates_checked = 0;
};

/// Common interface of every matching algorithm in this repository — the
/// baselines (SCAN, Counting, k-index, BE-Tree) and the contributions
/// (PCM / A-PCM). A matcher is built once over a subscription set and then
/// serves read-only Match calls. Match results are subscription ids in
/// ascending order.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Algorithm name for reports, e.g. "scan", "be-tree", "a-pcm".
  virtual std::string Name() const = 0;

  /// Builds the index over `subscriptions`. Called exactly once, before any
  /// Match call. Implementations may keep references into the vector; the
  /// caller keeps it alive for the matcher's lifetime.
  virtual void Build(const std::vector<BooleanExpression>& subscriptions) = 0;

  /// Appends the ids of all subscriptions matching `event` to `*matches`
  /// in ascending order (matches is cleared first).
  virtual void Match(const Event& event,
                     std::vector<SubscriptionId>* matches) = 0;

  /// Matches a batch of events; result i corresponds to events[i]. The
  /// default loops over Match; batch-aware matchers (PCM/A-PCM) override to
  /// exploit cluster-major processing.
  virtual void MatchBatch(const std::vector<Event>& events,
                          std::vector<std::vector<SubscriptionId>>* results) {
    results->assign(events.size(), {});
    for (size_t i = 0; i < events.size(); ++i) {
      Match(events[i], &(*results)[i]);
    }
  }

  /// Cumulative instrumentation since Build.
  virtual const MatcherStats& stats() const = 0;

  /// Appends this matcher's per-cluster hot-spot profile to `*out`
  /// (unordered; callers rank). Only profiling matchers (the PCM family
  /// with PcmOptions::hotspot_every > 0) record anything — the default is
  /// a no-op. Counters are sampled relaxed atomics, safe to read while
  /// matching runs.
  virtual void CollectHotspots(std::vector<HotspotEntry>* out) const {
    (void)out;
  }

  /// Approximate heap footprint of the index structures in bytes
  /// (excluding the subscription vector owned by the caller).
  virtual uint64_t MemoryBytes() const = 0;
};

/// A matcher that additionally supports incremental subscription
/// maintenance: absorbing adds and removes as *delta state* without a full
/// Build, plus a measure of how much delta has accumulated so callers can
/// decide when to fold it back (the StreamEngine rebuilds above
/// `EngineOptions::incremental_rebuild_threshold`). Implemented by the PCM
/// family (delta clusters + tombstones) and by ShardedMatcher (which routes
/// each change to the owning shard).
class IncrementalMatcher : public Matcher {
 public:
  /// False when the object implements the interface but cannot actually
  /// absorb deltas — e.g. a ShardedMatcher whose inner matchers are
  /// non-incremental baselines. Callers must fall back to full rebuilds.
  virtual bool CanApplyDeltas() const { return true; }

  /// Registers `subscription` without a rebuild. The id must not collide
  /// with a live subscription; it matches from the next Match call.
  virtual void AddIncremental(BooleanExpression subscription) = 0;

  /// Unregisters `id` without a rebuild; it stops matching immediately.
  /// NotFound if the id is unknown or already removed.
  virtual Status RemoveIncremental(SubscriptionId id) = 0;

  /// Fraction of the index that is delta state (incremental adds +
  /// tombstones vs. total); callers rebuild above a threshold. Sharded
  /// implementations report their *worst* shard, so a single churn-heavy
  /// shard triggers (per-shard) compaction.
  virtual double DeltaFraction() const = 0;
};

}  // namespace apcm

#endif  // APCM_INDEX_MATCHER_H_
