#ifndef APCM_INDEX_COUNTING_H_
#define APCM_INDEX_COUNTING_H_

#include <vector>

#include "src/be/value.h"
#include "src/index/interval_index.h"
#include "src/index/matcher.h"

namespace apcm::index {

/// The classic counting algorithm (Yan & Garcia-Molina style): an inverted
/// index from attributes to predicate intervals; matching stabs each event
/// attribute's interval index and counts satisfied predicates per
/// subscription. A subscription matches when its counter reaches its
/// predicate count. Counters are epoch-stamped so no per-event reset of the
/// (potentially multi-million-entry) counter array is needed.
class CountingMatcher : public Matcher {
 public:
  /// `domain` is the value domain used to decompose kNe / open-ended
  /// predicates into closed intervals; it must cover every value that can
  /// appear in events and predicates (the workload catalog's domain).
  explicit CountingMatcher(ValueInterval domain) : domain_(domain) {}

  std::string Name() const override { return "counting"; }

  void Build(const std::vector<BooleanExpression>& subscriptions) override;

  void Match(const Event& event,
             std::vector<SubscriptionId>* matches) override;

  const MatcherStats& stats() const override { return stats_; }
  uint64_t MemoryBytes() const override;

 private:
  ValueInterval domain_;
  /// One interval index per attribute id (dense; empty for unused attrs).
  std::vector<IntervalIndex> per_attribute_;
  /// payload -> owning subscription; payloads are predicate-instance ids.
  std::vector<SubscriptionId> payload_owner_;
  /// Required hit count per subscription (its predicate count).
  std::vector<uint32_t> required_;
  /// Subscriptions with zero predicates match everything.
  std::vector<SubscriptionId> match_all_;
  /// Epoch-stamped hit counters, one per subscription.
  std::vector<uint32_t> counters_;
  std::vector<uint32_t> counter_epoch_;
  uint32_t epoch_ = 0;
  MatcherStats stats_;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_COUNTING_H_
