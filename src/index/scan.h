#ifndef APCM_INDEX_SCAN_H_
#define APCM_INDEX_SCAN_H_

#include "src/index/matcher.h"

namespace apcm::index {

/// The naive baseline: evaluates every subscription against every event with
/// per-expression short-circuit. This is the "state-of-the-art sequential"
/// floor of the paper's headline comparison (the abstract's ~36 events/s at
/// five million expressions) and the ground truth every other matcher is
/// cross-validated against in the test suite.
class ScanMatcher : public Matcher {
 public:
  std::string Name() const override { return "scan"; }

  void Build(const std::vector<BooleanExpression>& subscriptions) override {
    subscriptions_ = &subscriptions;
  }

  void Match(const Event& event,
             std::vector<SubscriptionId>* matches) override;

  const MatcherStats& stats() const override { return stats_; }
  uint64_t MemoryBytes() const override { return 0; }  // no index structures

 private:
  const std::vector<BooleanExpression>* subscriptions_ = nullptr;
  MatcherStats stats_;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_SCAN_H_
