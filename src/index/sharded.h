#ifndef APCM_INDEX_SHARDED_H_
#define APCM_INDEX_SHARDED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/thread_pool.h"
#include "src/index/matcher.h"

namespace apcm::index {

/// Construction parameters of a ShardedMatcher.
struct ShardedOptions {
  /// Number of partitions. 1 still goes through the sharded code path (one
  /// shard, inline execution) — useful as a differential-testing control.
  uint32_t num_shards = 1;
  /// Worker threads of the fan-out pool. 0 = min(num_shards, hardware
  /// concurrency); 1 = fully inline (zero synchronization overhead).
  int num_threads = 0;
  /// Optional sinks for per-(shard, dispatch) instrumentation: wall time in
  /// nanoseconds and matches emitted per shard dispatch. Both must outlive
  /// the matcher (the StreamEngine points them at its EngineStats).
  ShardedHistogram* shard_latency_ns = nullptr;
  ShardedHistogram* shard_matches = nullptr;
};

/// Partitions a subscription set across `num_shards` independent inner
/// matchers by stable hash of subscription id, and fans every Match /
/// MatchBatch out across the shards on a ThreadPool, merging the per-shard
/// sorted match lists into one ascending-id result. This is the engine's
/// intra-event parallelism backend (DESIGN.md §3.7): the inner matchers stay
/// single-threaded and cache-local while the shard axis scales across cores.
///
/// Partitioning is by `ShardOf(id) = splitmix64(id) % S`, so a subscription's
/// shard is a pure function of its id — stable across rebuilds, generations,
/// and processes. Because the shards partition the id space, per-shard match
/// lists are disjoint and individually sorted; the merge is a k-way merge,
/// never a dedup.
///
/// Incremental maintenance (IncrementalMatcher) routes each add/remove to
/// the owning shard when the inner matchers are incremental (the PCM
/// family); `DeltaFraction()` reports the *worst* shard so one churn-heavy
/// shard triggers compaction of just itself.
///
/// Generations: the StreamEngine rebuilds per-shard. `NewGeneration()`
/// returns a successor sharing every shard (matcher + backing subscription
/// storage + applied-seq watermark) with this matcher; the engine then calls
/// `RebuildShard` for the dirty shards only, so clean shards are never
/// re-indexed and keep their adaptive warmup. Shared shards are mutated only
/// under the engine's processing serialization (see DESIGN.md §3.7);
/// a never-published generation is touched only by its builder.
///
/// Thread-safety: Build / Match / MatchBatch / the incremental ops must be
/// externally serialized (same contract as every other Matcher); the fan-out
/// inside Match/MatchBatch is internal. stats() lazily aggregates the shard
/// counters and is safe wherever Match would be.
class ShardedMatcher : public IncrementalMatcher {
 public:
  /// Constructs one inner (unbuilt) matcher per shard.
  using Factory = std::function<std::unique_ptr<Matcher>()>;

  ShardedMatcher(ShardedOptions options, Factory factory);
  ~ShardedMatcher() override;

  /// The owning shard of `id` under `num_shards` partitions: a stable
  /// splitmix64-style mix of the id, so consecutive ids spread evenly.
  static uint32_t ShardOf(SubscriptionId id, uint32_t num_shards);

  /// "sharded-4(a-pcm)".
  std::string Name() const override;

  /// Partitions `subscriptions` by ShardOf and builds every shard, in
  /// parallel on the fan-out pool. Per-shard copies are owned internally, so
  /// (unlike other matchers) the caller's vector need not outlive the index.
  void Build(const std::vector<BooleanExpression>& subscriptions) override;

  void Match(const Event& event,
             std::vector<SubscriptionId>* matches) override;

  /// One inner MatchBatch dispatch per (shard, batch) — wakeups amortize
  /// over the whole batch — then a per-event k-way merge.
  void MatchBatch(const std::vector<Event>& events,
                  std::vector<std::vector<SubscriptionId>>* results) override;

  /// Aggregated over shards: work counters sum; `events_matched` is the
  /// maximum over shards (every shard sees every event, but a rebuilt shard
  /// restarts its count — see RebuildShard).
  const MatcherStats& stats() const override;

  /// Union of the inner matchers' hot-spot profiles, each entry tagged with
  /// its owning shard index. Safe wherever stats() is.
  void CollectHotspots(std::vector<HotspotEntry>* out) const override;

  uint64_t MemoryBytes() const override;

  // IncrementalMatcher ------------------------------------------------------

  /// True when the inner matchers are themselves IncrementalMatchers.
  bool CanApplyDeltas() const override;
  void AddIncremental(BooleanExpression subscription) override;
  Status RemoveIncremental(SubscriptionId id) override;
  /// Max over shards (see class comment).
  double DeltaFraction() const override;
  /// One shard's own delta fraction (0 for non-incremental inner matchers).
  double ShardDeltaFraction(uint32_t shard) const;

  // Generation support (engine per-shard rebuilds) --------------------------

  uint32_t num_shards() const { return options_.num_shards; }

  /// Subscriptions currently indexed by `shard`: built + incremental adds -
  /// removals. For balance reports and tests.
  size_t ShardSubscriptionCount(uint32_t shard) const;

  /// Engine change-sequence watermark of `shard`: the highest change applied
  /// to (or covered by the build of) the shard's matcher. Shared across
  /// generations with the shard itself, which makes re-application of a
  /// change through a successor generation detectable. Guarded by the
  /// engine's processing serialization.
  uint64_t shard_applied_seq(uint32_t shard) const;
  void set_shard_applied_seq(uint32_t shard, uint64_t seq);

  /// A successor matcher sharing every shard (and the fan-out pool sizing /
  /// sinks / factory) with this one. The caller replaces dirty shards via
  /// RebuildShard before publishing the successor; shared shards are not
  /// touched by construction.
  std::unique_ptr<ShardedMatcher> NewGeneration() const;

  /// Replaces `shard` with a freshly built inner matcher over `subs`
  /// (ownership of the backing storage is shared with the caller) and sets
  /// its applied-seq watermark to `applied_seq`. Only the ids hashing to
  /// `shard` may appear in `subs`.
  void RebuildShard(uint32_t shard,
                    std::shared_ptr<const std::vector<BooleanExpression>> subs,
                    uint64_t applied_seq);

  /// Replaces `shard` with a matcher already built (or index-loaded) over
  /// `subs` — the checkpoint-recovery path, where each shard's inner matcher
  /// is rehydrated from a serialized image instead of rebuilt. `subs` is the
  /// storage the loaded index points into and must obey the same
  /// ids-hash-to-shard invariant as RebuildShard.
  void InstallShard(uint32_t shard,
                    std::shared_ptr<const std::vector<BooleanExpression>> subs,
                    std::unique_ptr<Matcher> matcher, uint64_t applied_seq);

 private:
  /// One partition: the inner matcher, the subscription storage it
  /// references, and the engine watermark. Shared across generations via
  /// shared_ptr — see NewGeneration.
  struct Shard {
    std::shared_ptr<const std::vector<BooleanExpression>> subs;
    std::unique_ptr<Matcher> matcher;
    uint64_t applied_seq = 0;
    /// Net incremental adds minus removes since the shard's last build
    /// (ShardSubscriptionCount bookkeeping).
    int64_t delta_count = 0;
  };

  /// Runs fn(shard_index) for every shard on the fan-out pool.
  void ForEachShard(const std::function<void(uint32_t)>& fn);

  /// Merges the S sorted, disjoint per-shard lists in `lists` into `*out`
  /// (cleared first).
  static void MergeShardLists(
      const std::vector<std::vector<SubscriptionId>*>& lists,
      std::vector<SubscriptionId>* out);

  ShardedOptions options_;
  Factory factory_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;

  /// Fan-out scratch, reused across calls: per-shard single-event match
  /// lists and per-shard batch result matrices.
  std::vector<std::vector<SubscriptionId>> match_scratch_;
  std::vector<std::vector<std::vector<SubscriptionId>>> batch_scratch_;

  /// Lazily aggregated shard counters (see stats()).
  mutable MatcherStats agg_stats_;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_SHARDED_H_
