#ifndef APCM_INDEX_KINDEX_H_
#define APCM_INDEX_KINDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/be/value.h"
#include "src/index/matcher.h"

namespace apcm::index {

/// Reconstruction of the k-index of Whang et al. (VLDB'09), the standard
/// inverted-list matcher for computational advertising, adapted to ordinal
/// range predicates: predicates are posted under canonical segment-tree
/// nodes of their value interval (O(log W) postings per predicate), events
/// probe the O(log W) nodes on their value's root-to-leaf path, and each
/// posting hit is verified against the exact predicate before counting.
/// A subscription with k predicates matches when its verified-hit counter
/// reaches k (the "k" partitioning of the original: a subscription whose k
/// exceeds the event's attribute count can never accumulate k hits and is
/// skipped implicitly).
class KIndexMatcher : public Matcher {
 public:
  /// `domain` bounds the segment hierarchy; values outside are clamped.
  /// `max_depth` caps the hierarchy depth (leaves then cover multiple
  /// values; verification keeps results exact).
  explicit KIndexMatcher(ValueInterval domain, int max_depth = 16)
      : domain_(domain), max_depth_(max_depth) {}

  std::string Name() const override { return "k-index"; }

  void Build(const std::vector<BooleanExpression>& subscriptions) override;

  void Match(const Event& event,
             std::vector<SubscriptionId>* matches) override;

  const MatcherStats& stats() const override { return stats_; }
  uint64_t MemoryBytes() const override;

 private:
  /// Heap-ordered node id within the virtual segment tree of one attribute.
  using NodeId = uint64_t;

  /// Maps a value to its leaf cell in [0, 2^levels_).
  uint64_t CellFor(Value v) const;

  ValueInterval domain_;
  int max_depth_;
  int levels_ = 0;        ///< depth of the virtual tree (leaves = 2^levels_)
  int cell_shift_ = 0;    ///< log2 of values per leaf cell

  struct Posting {
    const Predicate* predicate;  ///< verified on hit; owned by caller's subs
    SubscriptionId owner;
  };
  /// Per attribute: node id -> postings.
  std::vector<std::unordered_map<NodeId, std::vector<Posting>>> per_attribute_;
  std::vector<uint32_t> required_;
  std::vector<SubscriptionId> match_all_;
  std::vector<uint32_t> counters_;
  std::vector<uint32_t> counter_epoch_;
  uint32_t epoch_ = 0;
  MatcherStats stats_;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_KINDEX_H_
