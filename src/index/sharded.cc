#include "src/index/sharded.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/base/macros.h"
#include "src/base/timer.h"

namespace apcm::index {

namespace {

int ResolveThreads(const ShardedOptions& options) {
  if (options.num_threads > 0) return options.num_threads;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(std::min(options.num_shards, hw));
}

}  // namespace

ShardedMatcher::ShardedMatcher(ShardedOptions options, Factory factory)
    : options_(options), factory_(std::move(factory)) {
  APCM_CHECK(options_.num_shards >= 1);
  APCM_CHECK(factory_ != nullptr);
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_));
  shards_.resize(options_.num_shards);
  for (auto& shard : shards_) {
    shard = std::make_shared<Shard>();
    shard->subs = std::make_shared<const std::vector<BooleanExpression>>();
    shard->matcher = factory_();
    APCM_CHECK(shard->matcher != nullptr);
    shard->matcher->Build(*shard->subs);
  }
  match_scratch_.resize(options_.num_shards);
  batch_scratch_.resize(options_.num_shards);
}

ShardedMatcher::~ShardedMatcher() = default;

uint32_t ShardedMatcher::ShardOf(SubscriptionId id, uint32_t num_shards) {
  // splitmix64 finalizer: a stable, well-mixed function of the id alone, so
  // a subscription's shard survives rebuilds, generations, and restarts.
  uint64_t x = static_cast<uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % num_shards);
}

std::string ShardedMatcher::Name() const {
  return "sharded-" + std::to_string(options_.num_shards) + "(" +
         shards_[0]->matcher->Name() + ")";
}

void ShardedMatcher::Build(
    const std::vector<BooleanExpression>& subscriptions) {
  std::vector<std::vector<BooleanExpression>> parts(options_.num_shards);
  for (const BooleanExpression& sub : subscriptions) {
    parts[ShardOf(sub.id(), options_.num_shards)].push_back(sub);
  }
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_shared<Shard>();
    shard->subs = std::make_shared<const std::vector<BooleanExpression>>(
        std::move(parts[s]));
    shard->matcher = factory_();
    APCM_CHECK(shard->matcher != nullptr);
    shards_[s] = std::move(shard);
  }
  // Shard builds are independent (each touches only its own partition), so
  // the initial index construction parallelizes across the fan-out pool too.
  ForEachShard([this](uint32_t s) { shards_[s]->matcher->Build(*shards_[s]->subs); });
}

void ShardedMatcher::ForEachShard(const std::function<void(uint32_t)>& fn) {
  pool_->ParallelFor(options_.num_shards,
                     [&fn](uint64_t begin, uint64_t end, int /*worker*/) {
                       for (uint64_t s = begin; s < end; ++s) {
                         fn(static_cast<uint32_t>(s));
                       }
                     });
}

void ShardedMatcher::MergeShardLists(
    const std::vector<std::vector<SubscriptionId>*>& lists,
    std::vector<SubscriptionId>* out) {
  out->clear();
  size_t total = 0;
  for (const auto* list : lists) total += list->size();
  if (total == 0) return;
  out->reserve(total);
  // Shards partition the id space, so the inputs are sorted AND disjoint: a
  // cursor-based k-way merge (linear min scan; S is small) with no dedup.
  std::vector<std::pair<const SubscriptionId*, const SubscriptionId*>> cursors;
  cursors.reserve(lists.size());
  for (const auto* list : lists) {
    if (!list->empty()) {
      cursors.emplace_back(list->data(), list->data() + list->size());
    }
  }
  if (cursors.size() == 1) {
    out->assign(cursors[0].first, cursors[0].second);
    return;
  }
  while (!cursors.empty()) {
    size_t min_i = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      if (*cursors[i].first < *cursors[min_i].first) min_i = i;
    }
    out->push_back(*cursors[min_i].first++);
    if (cursors[min_i].first == cursors[min_i].second) {
      cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(min_i));
      if (cursors.size() == 1) {
        out->insert(out->end(), cursors[0].first, cursors[0].second);
        break;
      }
    }
  }
}

void ShardedMatcher::Match(const Event& event,
                           std::vector<SubscriptionId>* matches) {
  ForEachShard([this, &event](uint32_t s) {
    WallTimer timer;
    shards_[s]->matcher->Match(event, &match_scratch_[s]);
    if (options_.shard_latency_ns != nullptr) {
      options_.shard_latency_ns->Record(timer.ElapsedNanos());
    }
    if (options_.shard_matches != nullptr) {
      options_.shard_matches->Record(
          static_cast<int64_t>(match_scratch_[s].size()));
    }
  });
  std::vector<std::vector<SubscriptionId>*> lists;
  lists.reserve(options_.num_shards);
  for (auto& scratch : match_scratch_) lists.push_back(&scratch);
  MergeShardLists(lists, matches);
}

void ShardedMatcher::MatchBatch(
    const std::vector<Event>& events,
    std::vector<std::vector<SubscriptionId>>* results) {
  results->assign(events.size(), {});
  if (events.empty()) return;
  // One inner MatchBatch dispatch per (shard, batch): the wakeup and the
  // cluster-state warmup amortize over the whole batch.
  ForEachShard([this, &events](uint32_t s) {
    WallTimer timer;
    shards_[s]->matcher->MatchBatch(events, &batch_scratch_[s]);
    if (options_.shard_latency_ns != nullptr) {
      options_.shard_latency_ns->Record(timer.ElapsedNanos());
    }
    if (options_.shard_matches != nullptr) {
      int64_t emitted = 0;
      for (const auto& list : batch_scratch_[s]) {
        emitted += static_cast<int64_t>(list.size());
      }
      options_.shard_matches->Record(emitted);
    }
  });
  // Per-event merges write disjoint result slots, so they parallelize too.
  pool_->ParallelFor(
      events.size(), [this, results](uint64_t begin, uint64_t end, int) {
        std::vector<std::vector<SubscriptionId>*> lists(options_.num_shards);
        for (uint64_t i = begin; i < end; ++i) {
          for (uint32_t s = 0; s < options_.num_shards; ++s) {
            lists[s] = &batch_scratch_[s][i];
          }
          MergeShardLists(lists, &(*results)[i]);
        }
      });
}

const MatcherStats& ShardedMatcher::stats() const {
  agg_stats_ = MatcherStats{};
  for (const auto& shard : shards_) {
    const MatcherStats& s = shard->matcher->stats();
    agg_stats_.predicate_evals += s.predicate_evals;
    agg_stats_.bitmap_words += s.bitmap_words;
    agg_stats_.candidates_checked += s.candidates_checked;
    agg_stats_.matches_emitted += s.matches_emitted;
    agg_stats_.events_matched =
        std::max(agg_stats_.events_matched, s.events_matched);
  }
  return agg_stats_;
}

void ShardedMatcher::CollectHotspots(std::vector<HotspotEntry>* out) const {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const size_t before = out->size();
    shards_[s]->matcher->CollectHotspots(out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i].shard = s;
    }
  }
}

uint64_t ShardedMatcher::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& shard : shards_) {
    bytes += shard->matcher->MemoryBytes() + sizeof(Shard);
    // Unlike other matchers, the shards own their subscription copies;
    // approximate that storage so memory reports stay honest.
    bytes += shard->subs->capacity() * sizeof(BooleanExpression);
    for (const BooleanExpression& sub : *shard->subs) {
      bytes += sub.predicates().capacity() * sizeof(Predicate);
    }
  }
  return bytes;
}

bool ShardedMatcher::CanApplyDeltas() const {
  auto* inc = dynamic_cast<IncrementalMatcher*>(shards_[0]->matcher.get());
  return inc != nullptr && inc->CanApplyDeltas();
}

void ShardedMatcher::AddIncremental(BooleanExpression subscription) {
  Shard& shard =
      *shards_[ShardOf(subscription.id(), options_.num_shards)];
  auto* inc = dynamic_cast<IncrementalMatcher*>(shard.matcher.get());
  APCM_CHECK(inc != nullptr);
  inc->AddIncremental(std::move(subscription));
  ++shard.delta_count;
}

Status ShardedMatcher::RemoveIncremental(SubscriptionId id) {
  Shard& shard = *shards_[ShardOf(id, options_.num_shards)];
  auto* inc = dynamic_cast<IncrementalMatcher*>(shard.matcher.get());
  APCM_CHECK(inc != nullptr);
  APCM_RETURN_NOT_OK(inc->RemoveIncremental(id));
  --shard.delta_count;
  return Status::OK();
}

double ShardedMatcher::DeltaFraction() const {
  double worst = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    worst = std::max(worst, ShardDeltaFraction(s));
  }
  return worst;
}

double ShardedMatcher::ShardDeltaFraction(uint32_t shard) const {
  auto* inc =
      dynamic_cast<IncrementalMatcher*>(shards_[shard]->matcher.get());
  return inc == nullptr ? 0.0 : inc->DeltaFraction();
}

size_t ShardedMatcher::ShardSubscriptionCount(uint32_t shard) const {
  return shards_[shard]->subs->size() +
         static_cast<size_t>(
             std::max<int64_t>(0, shards_[shard]->delta_count));
}

uint64_t ShardedMatcher::shard_applied_seq(uint32_t shard) const {
  return shards_[shard]->applied_seq;
}

void ShardedMatcher::set_shard_applied_seq(uint32_t shard, uint64_t seq) {
  shards_[shard]->applied_seq = seq;
}

std::unique_ptr<ShardedMatcher> ShardedMatcher::NewGeneration() const {
  auto next = std::make_unique<ShardedMatcher>(options_, factory_);
  next->shards_ = shards_;  // share every shard; RebuildShard replaces dirty ones
  return next;
}

void ShardedMatcher::RebuildShard(
    uint32_t shard,
    std::shared_ptr<const std::vector<BooleanExpression>> subs,
    uint64_t applied_seq) {
  for (const BooleanExpression& sub : *subs) {
    APCM_CHECK(ShardOf(sub.id(), options_.num_shards) == shard);
  }
  auto fresh = std::make_shared<Shard>();
  fresh->subs = std::move(subs);
  fresh->matcher = factory_();
  APCM_CHECK(fresh->matcher != nullptr);
  fresh->matcher->Build(*fresh->subs);
  fresh->applied_seq = applied_seq;
  shards_[shard] = std::move(fresh);
}

void ShardedMatcher::InstallShard(
    uint32_t shard,
    std::shared_ptr<const std::vector<BooleanExpression>> subs,
    std::unique_ptr<Matcher> matcher, uint64_t applied_seq) {
  for (const BooleanExpression& sub : *subs) {
    APCM_CHECK(ShardOf(sub.id(), options_.num_shards) == shard);
  }
  APCM_CHECK(matcher != nullptr);
  auto fresh = std::make_shared<Shard>();
  fresh->subs = std::move(subs);
  fresh->matcher = std::move(matcher);
  fresh->applied_seq = applied_seq;
  shards_[shard] = std::move(fresh);
}

}  // namespace apcm::index
