#ifndef APCM_INDEX_INTERVAL_INDEX_H_
#define APCM_INDEX_INTERVAL_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/macros.h"
#include "src/be/value.h"

namespace apcm::index {

/// Static point-stabbing index over closed integer intervals on a single
/// attribute: given a value v, report the payloads of all intervals
/// containing v. Hybrid layout:
///  * point intervals (lo == hi, i.e. equality predicates) go to a hash
///    table — O(1) per stab regardless of how many distinct constants exist;
///  * proper intervals go to a centered interval tree — O(log n + k) stabs.
///
/// Build protocol: Add(...) any number of entries, then Build() once, then
/// Stab(...) freely. Payloads are caller-defined 32-bit handles (the counting
/// matcher uses dense predicate-instance ids).
class IntervalIndex {
 public:
  /// Registers `interval` with `payload`. Empty intervals are ignored.
  void Add(ValueInterval interval, uint32_t payload) {
    APCM_DCHECK(!built_);
    if (interval.Empty()) return;
    ++size_;
    if (interval.lo == interval.hi) {
      points_[interval.lo].push_back(payload);
    } else {
      spans_.push_back(Entry{interval, payload});
    }
  }

  /// Finalizes the structure. Must be called exactly once before Stab.
  void Build() {
    APCM_DCHECK(!built_);
    built_ = true;
    if (!spans_.empty()) {
      root_ = BuildNode(spans_.begin(), spans_.end());
      spans_.clear();
      spans_.shrink_to_fit();
    }
  }

  /// Invokes fn(payload) for every interval containing `value`. Order is
  /// unspecified; each containing interval is reported exactly once.
  template <typename Fn>
  void Stab(Value value, Fn fn) const {
    APCM_DCHECK(built_);
    auto it = points_.find(value);
    if (it != points_.end()) {
      for (uint32_t payload : it->second) fn(payload);
    }
    int32_t node_index = root_;
    while (node_index >= 0) {
      const Node& node = nodes_[static_cast<size_t>(node_index)];
      if (value < node.center) {
        // Intervals at this node all contain center > value; those with
        // lo <= value contain value. by_lo is sorted ascending by lo.
        for (const Entry& entry : node.by_lo) {
          if (entry.interval.lo > value) break;
          fn(entry.payload);
        }
        node_index = node.left;
      } else if (value > node.center) {
        // by_hi is sorted descending by hi.
        for (const Entry& entry : node.by_hi) {
          if (entry.interval.hi < value) break;
          fn(entry.payload);
        }
        node_index = node.right;
      } else {
        for (const Entry& entry : node.by_lo) fn(entry.payload);
        break;  // no interval in either subtree contains the center
      }
    }
  }

  /// Number of indexed intervals (points + spans).
  size_t size() const { return size_; }

  /// Approximate heap bytes.
  uint64_t MemoryBytes() const {
    uint64_t bytes = nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) {
      bytes += (node.by_lo.capacity() + node.by_hi.capacity()) * sizeof(Entry);
    }
    bytes += points_.size() *
             (sizeof(Value) + sizeof(std::vector<uint32_t>) + 16);
    for (const auto& [value, payloads] : points_) {
      bytes += payloads.capacity() * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  struct Entry {
    ValueInterval interval;
    uint32_t payload;
  };

  struct Node {
    Value center = 0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<Entry> by_lo;  // intervals containing center, ascending lo
    std::vector<Entry> by_hi;  // same intervals, descending hi
  };

  using EntryIter = std::vector<Entry>::iterator;

  /// Recursively builds the subtree over [begin, end); returns node index or
  /// -1 when empty. Center = median of interval midpoints, which keeps the
  /// tree balanced for both clustered and spread-out workloads.
  int32_t BuildNode(EntryIter begin, EntryIter end) {
    if (begin == end) return -1;
    auto mid = begin + (end - begin) / 2;
    std::nth_element(begin, mid, end, [](const Entry& a, const Entry& b) {
      // Compare by midpoint without overflow.
      return a.interval.lo / 2 + a.interval.hi / 2 <
             b.interval.lo / 2 + b.interval.hi / 2;
    });
    const Value center = mid->interval.lo / 2 + mid->interval.hi / 2;

    auto left_end = std::partition(begin, end, [center](const Entry& e) {
      return e.interval.hi < center;
    });
    auto here_end = std::partition(left_end, end, [center](const Entry& e) {
      return e.interval.lo <= center;  // hi >= center already
    });

    const auto index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    {
      Node& node = nodes_[static_cast<size_t>(index)];
      node.center = center;
      node.by_lo.assign(left_end, here_end);
      std::sort(node.by_lo.begin(), node.by_lo.end(),
                [](const Entry& a, const Entry& b) {
                  return a.interval.lo < b.interval.lo;
                });
      node.by_hi.assign(left_end, here_end);
      std::sort(node.by_hi.begin(), node.by_hi.end(),
                [](const Entry& a, const Entry& b) {
                  return a.interval.hi > b.interval.hi;
                });
    }
    // Children are built after the node is placed; store indices afterwards
    // because nodes_ may reallocate during recursion.
    const int32_t left = BuildNode(begin, left_end);
    const int32_t right = BuildNode(here_end, end);
    nodes_[static_cast<size_t>(index)].left = left;
    nodes_[static_cast<size_t>(index)].right = right;
    return index;
  }

  std::unordered_map<Value, std::vector<uint32_t>> points_;
  std::vector<Entry> spans_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
  bool built_ = false;
};

}  // namespace apcm::index

#endif  // APCM_INDEX_INTERVAL_INDEX_H_
