#include "src/index/kindex.h"

#include <algorithm>
#include <bit>

#include "src/base/bit_ops.h"
#include "src/base/macros.h"

namespace apcm::index {

uint64_t KIndexMatcher::CellFor(Value v) const {
  v = std::clamp(v, domain_.lo, domain_.hi);
  // Subtract in uint64 so huge spans (hi - lo exceeding int64) cannot
  // overflow; two's-complement wraparound yields the correct offset.
  const uint64_t offset =
      static_cast<uint64_t>(v) - static_cast<uint64_t>(domain_.lo);
  return offset >> cell_shift_;
}

void KIndexMatcher::Build(const std::vector<BooleanExpression>& subscriptions) {
  APCM_CHECK(!domain_.Empty());
  // Width() wraps to 0 when the domain spans the full 64-bit space; that
  // means 2^64 values, i.e. 64 bits of cell address.
  const uint64_t width = domain_.Width();
  int bits;
  if (width == 0) {
    bits = 64;
  } else if (width == 1) {
    bits = 0;
  } else {
    bits = 64 - std::countl_zero(width - 1);  // ceil(log2(width))
  }
  levels_ = std::min({bits, max_depth_, 63});  // 1ULL << levels_ must be safe
  cell_shift_ = bits - levels_;

  SubscriptionId max_id = 0;
  AttributeId max_attr = 0;
  for (const auto& sub : subscriptions) {
    max_id = std::max(max_id, sub.id());
    for (const auto& pred : sub.predicates()) {
      max_attr = std::max(max_attr, pred.attribute());
    }
  }
  const size_t num_slots = subscriptions.empty() ? 0 : size_t{max_id} + 1;
  required_.assign(num_slots, 0);
  counters_.assign(num_slots, 0);
  counter_epoch_.assign(num_slots, 0);
  per_attribute_.clear();
  per_attribute_.resize(subscriptions.empty() ? 0 : size_t{max_attr} + 1);
  match_all_.clear();

  const uint64_t num_leaves = 1ULL << levels_;
  std::vector<ValueInterval> intervals;
  std::vector<std::pair<uint64_t, uint64_t>> cell_ranges;
  for (const auto& sub : subscriptions) {
    required_[sub.id()] = static_cast<uint32_t>(sub.size());
    if (sub.predicates().empty()) {
      match_all_.push_back(sub.id());
      continue;
    }
    for (const auto& pred : sub.predicates()) {
      intervals.clear();
      pred.AppendIntervals(domain_, &intervals);
      // Convert to cell granularity and coalesce: cell rounding can make
      // disjoint value intervals share a cell, and a predicate must be
      // posted at most once per cell so each event attribute produces at
      // most one (verified) hit per predicate.
      cell_ranges.clear();
      for (const ValueInterval& interval : intervals) {
        cell_ranges.emplace_back(CellFor(interval.lo), CellFor(interval.hi));
      }
      std::sort(cell_ranges.begin(), cell_ranges.end());
      size_t merged = 0;
      for (size_t i = 1; i < cell_ranges.size(); ++i) {
        if (cell_ranges[i].first <= cell_ranges[merged].second + 1) {
          cell_ranges[merged].second =
              std::max(cell_ranges[merged].second, cell_ranges[i].second);
        } else {
          cell_ranges[++merged] = cell_ranges[i];
        }
      }
      if (!cell_ranges.empty()) cell_ranges.resize(merged + 1);

      auto& attr_map = per_attribute_[pred.attribute()];
      const Posting posting{&pred, sub.id()};
      for (const auto& [lc, rc] : cell_ranges) {
        // Canonical segment-tree decomposition of cells [lc, rc].
        uint64_t lo = lc + num_leaves;
        uint64_t hi = rc + num_leaves + 1;
        while (lo < hi) {
          if (lo & 1) attr_map[lo++].push_back(posting);
          if (hi & 1) attr_map[--hi].push_back(posting);
          lo >>= 1;
          hi >>= 1;
        }
      }
    }
  }
  std::sort(match_all_.begin(), match_all_.end());
}

void KIndexMatcher::Match(const Event& event,
                          std::vector<SubscriptionId>* matches) {
  matches->clear();
  ++epoch_;
  const uint32_t epoch = epoch_;
  const uint64_t num_leaves = 1ULL << levels_;
  for (const Event::Entry& entry : event.entries()) {
    if (entry.attr >= per_attribute_.size()) continue;
    const auto& attr_map = per_attribute_[entry.attr];
    if (attr_map.empty()) continue;
    // Probe every node on the root-to-leaf path of the value's cell.
    for (NodeId node = CellFor(entry.value) + num_leaves; node >= 1;
         node >>= 1) {
      auto it = attr_map.find(node);
      if (it == attr_map.end()) continue;
      for (const Posting& posting : it->second) {
        stats_.predicate_evals++;
        if (!posting.predicate->Eval(entry.value)) continue;
        const SubscriptionId owner = posting.owner;
        if (counter_epoch_[owner] != epoch) {
          counter_epoch_[owner] = epoch;
          counters_[owner] = 0;
        }
        if (++counters_[owner] == required_[owner]) {
          matches->push_back(owner);
        }
      }
    }
  }
  matches->insert(matches->end(), match_all_.begin(), match_all_.end());
  std::sort(matches->begin(), matches->end());
  stats_.events_matched++;
  stats_.matches_emitted += matches->size();
}

uint64_t KIndexMatcher::MemoryBytes() const {
  uint64_t bytes = required_.capacity() * sizeof(uint32_t) +
                   counters_.capacity() * sizeof(uint32_t) +
                   counter_epoch_.capacity() * sizeof(uint32_t);
  for (const auto& attr_map : per_attribute_) {
    bytes += attr_map.size() * (sizeof(NodeId) + sizeof(std::vector<Posting>) +
                                16 /* hash bucket overhead */);
    for (const auto& [node, postings] : attr_map) {
      bytes += postings.capacity() * sizeof(Posting);
    }
  }
  return bytes;
}

}  // namespace apcm::index
