#include "src/engine/report.h"

#include "src/base/string_util.h"

namespace apcm::engine {

std::string RenderMatcherStats(const MatcherStats& stats) {
  return StringPrintf(
      "events=%s predicate_evals=%s bitmap_words=%s candidates=%s "
      "matches=%s",
      FormatWithCommas(stats.events_matched).c_str(),
      FormatWithCommas(stats.predicate_evals).c_str(),
      FormatWithCommas(stats.bitmap_words).c_str(),
      FormatWithCommas(stats.candidates_checked).c_str(),
      FormatWithCommas(stats.matches_emitted).c_str());
}

std::string RenderReport(const StreamEngine& engine) {
  const EngineStats& stats = engine.stats();
  std::string report;
  report += "subscriptions (live): " +
            FormatWithCommas(engine.num_subscriptions()) + "\n";
  report += "events published:     " +
            FormatWithCommas(stats.events_published) + "\n";
  report += "events processed:     " +
            FormatWithCommas(stats.events_processed) + "\n";
  report += "matches delivered:    " +
            FormatWithCommas(stats.matches_delivered) + "\n";
  report += "batches processed:    " +
            FormatWithCommas(stats.batches_processed) + "\n";
  report += "index rebuilds:       " + FormatWithCommas(stats.rebuilds) +
            "\n";
  report += "incremental updates:  " +
            FormatWithCommas(stats.incremental_updates) + "\n";
  report += "compactions:          " + FormatWithCommas(stats.compactions) +
            "\n";
  report += "publishes blocked:    " +
            FormatWithCommas(stats.publishes_blocked) + "\n";
  report += "publishes rejected:   " +
            FormatWithCommas(stats.publishes_rejected) + "\n";
  report +=
      "batch latency (ns):   " + stats.batch_latency_ns.Summary() + "\n";
  report += "queue depth:          " + stats.queue_depth.Summary() + "\n";
  report +=
      "rebuild latency (ns): " + stats.rebuild_latency_ns.Summary() + "\n";
  if (const MatcherStats* matcher_stats = engine.matcher_stats()) {
    report += "matcher counters:     " + RenderMatcherStats(*matcher_stats) +
              "\n";
  }
  return report;
}

}  // namespace apcm::engine
