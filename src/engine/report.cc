#include "src/engine/report.h"

#include "src/base/string_util.h"

namespace apcm::engine {

std::string RenderMatcherStats(const MatcherStats& stats) {
  return StringPrintf(
      "events=%s predicate_evals=%s bitmap_words=%s candidates=%s "
      "matches=%s",
      FormatWithCommas(stats.events_matched).c_str(),
      FormatWithCommas(stats.predicate_evals).c_str(),
      FormatWithCommas(stats.bitmap_words).c_str(),
      FormatWithCommas(stats.candidates_checked).c_str(),
      FormatWithCommas(stats.matches_emitted).c_str());
}

std::string RenderReport(const StreamEngine& engine) {
  // Everything below is pulled from the engine's metrics registry, which is
  // safe to collect while publishers, mutators, and background rebuilds are
  // live — the report needs no quiesce.
  std::string report;
  auto line = [&report](const std::string& key, const std::string& value) {
    report += StringPrintf("%-37s %s\n", (key + ":").c_str(), value.c_str());
  };
  line("subscriptions (live)",
       FormatWithCommas(engine.num_subscriptions()));
  for (const MetricSample& sample : engine.metrics_registry().Collect()) {
    // Labeled series keep their label body in the key so e.g. the seven
    // apcm_stage_latency_ns{stage=...} series stay distinguishable.
    const std::string key = sample.labels.empty()
                                ? sample.name
                                : sample.name + "{" + sample.labels + "}";
    switch (sample.type) {
      case MetricSample::Type::kCounter:
        line(key, FormatWithCommas(sample.counter_value));
        break;
      case MetricSample::Type::kGauge:
        line(key, StringPrintf("%lld", static_cast<long long>(
                                           sample.gauge_value)));
        break;
      case MetricSample::Type::kHistogram:
        line(key, sample.histogram.Summary());
        break;
    }
  }
  // Matcher hot spots: the top profiled clusters by accumulated wall time
  // (empty until the profiler has sampled a few batches).
  const std::vector<HotspotEntry> hotspots = engine.CollectHotspots(3);
  for (size_t i = 0; i < hotspots.size(); ++i) {
    const HotspotEntry& h = hotspots[i];
    line(StringPrintf("hotspot #%zu", i + 1),
         StringPrintf("shard=%u cluster=%u subs=%u example_sub=%llu "
                      "batches=%s ns=%s predicate_evals=%s candidates=%s",
                      h.shard, h.cluster, h.subscriptions,
                      static_cast<unsigned long long>(h.example_sub),
                      FormatWithCommas(h.batches).c_str(),
                      FormatWithCommas(h.ns).c_str(),
                      FormatWithCommas(h.predicate_evals).c_str(),
                      FormatWithCommas(h.candidates_checked).c_str()));
  }
  return report;
}

}  // namespace apcm::engine
