#include "src/engine/report.h"

#include "src/base/string_util.h"

namespace apcm::engine {

std::string RenderMatcherStats(const MatcherStats& stats) {
  return StringPrintf(
      "events=%s predicate_evals=%s bitmap_words=%s candidates=%s "
      "matches=%s",
      FormatWithCommas(stats.events_matched).c_str(),
      FormatWithCommas(stats.predicate_evals).c_str(),
      FormatWithCommas(stats.bitmap_words).c_str(),
      FormatWithCommas(stats.candidates_checked).c_str(),
      FormatWithCommas(stats.matches_emitted).c_str());
}

std::string RenderReport(const StreamEngine& engine) {
  // Everything below is pulled from the engine's metrics registry, which is
  // safe to collect while publishers, mutators, and background rebuilds are
  // live — the report needs no quiesce.
  std::string report;
  auto line = [&report](const std::string& key, const std::string& value) {
    report += StringPrintf("%-37s %s\n", (key + ":").c_str(), value.c_str());
  };
  line("subscriptions (live)",
       FormatWithCommas(engine.num_subscriptions()));
  for (const MetricSample& sample : engine.metrics_registry().Collect()) {
    switch (sample.type) {
      case MetricSample::Type::kCounter:
        line(sample.name, FormatWithCommas(sample.counter_value));
        break;
      case MetricSample::Type::kGauge:
        line(sample.name, StringPrintf("%lld", static_cast<long long>(
                                                   sample.gauge_value)));
        break;
      case MetricSample::Type::kHistogram:
        line(sample.name, sample.histogram.Summary());
        break;
    }
  }
  return report;
}

}  // namespace apcm::engine
