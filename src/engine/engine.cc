#include "src/engine/engine.h"

#include <algorithm>

#include "src/base/macros.h"
#include "src/base/timer.h"
#include "src/core/pcm.h"
#include "src/workload/trace.h"

namespace apcm::engine {

StreamEngine::StreamEngine(EngineOptions options, MatchCallback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {
  APCM_CHECK(options_.batch_size >= 1);
  APCM_CHECK(callback_ != nullptr);
  // A window must fit in the buffer or it could never fill.
  options_.buffer_capacity =
      std::max({options_.buffer_capacity, options_.osr.window_size,
                options_.batch_size});
  buffer_.reserve(options_.buffer_capacity);
  buffer_ids_.reserve(options_.buffer_capacity);
}

StatusOr<SubscriptionId> StreamEngine::AddSubscription(
    std::vector<Predicate> predicates) {
  const SubscriptionId id = next_sub_id_;
  APCM_ASSIGN_OR_RETURN(
      BooleanExpression expr,
      BooleanExpression::Create(id, std::move(predicates)));
  ++next_sub_id_;
  subscriptions_.push_back(std::move(expr));
  pending_adds_.push_back(id);
  return id;
}

StatusOr<SubscriptionId> StreamEngine::AddDisjunctiveSubscription(
    std::vector<std::vector<Predicate>> disjuncts) {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("a DNF subscription needs >= 1 disjunct");
  }
  // Validate every disjunct before registering any, so failure is atomic.
  for (const auto& disjunct : disjuncts) {
    APCM_RETURN_NOT_OK(
        BooleanExpression::Create(0, disjunct).status());
  }
  SubscriptionId external = kInvalidSubscriptionId;
  std::vector<SubscriptionId> internals;
  for (auto& disjunct : disjuncts) {
    APCM_ASSIGN_OR_RETURN(const SubscriptionId internal,
                          AddSubscription(std::move(disjunct)));
    internals.push_back(internal);
    if (external == kInvalidSubscriptionId) {
      external = internal;
    } else {
      dnf_alias_.emplace(internal, external);
    }
  }
  if (internals.size() > 1) {
    dnf_groups_.emplace(external, std::move(internals));
  }
  return external;
}

Status StreamEngine::RemoveSubscription(SubscriptionId id) {
  if (auto alias = dnf_alias_.find(id); alias != dnf_alias_.end()) {
    return Status::NotFound(
        "id " + std::to_string(id) +
        " is an internal disjunct; remove the subscription id " +
        std::to_string(alias->second));
  }
  if (auto group = dnf_groups_.find(id); group != dnf_groups_.end()) {
    // Remove every disjunct of the DNF group.
    const std::vector<SubscriptionId> internals = std::move(group->second);
    dnf_groups_.erase(group);
    for (SubscriptionId internal : internals) {
      dnf_alias_.erase(internal);
      tombstones_.insert(internal);
      pending_removes_.push_back(internal);
    }
    priorities_.erase(id);
    return Status::OK();
  }
  if (id >= next_sub_id_ || tombstones_.contains(id)) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " is not registered");
  }
  const bool exists = std::any_of(
      subscriptions_.begin(), subscriptions_.end(),
      [id](const BooleanExpression& sub) { return sub.id() == id; });
  if (!exists) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " was already removed");
  }
  tombstones_.insert(id);
  pending_removes_.push_back(id);
  priorities_.erase(id);
  return Status::OK();
}

Status StreamEngine::SaveSubscriptions(const std::string& path) const {
  workload::Workload snapshot;
  AttributeId max_attr = 0;
  bool any_attr = false;
  for (const BooleanExpression& sub : subscriptions_) {
    if (tombstones_.contains(sub.id())) continue;
    snapshot.subscriptions.push_back(sub);
    for (const Predicate& pred : sub.predicates()) {
      max_attr = std::max(max_attr, pred.attribute());
      any_attr = true;
    }
  }
  if (any_attr) {
    for (AttributeId a = 0; a <= max_attr; ++a) {
      APCM_RETURN_NOT_OK(snapshot.catalog
                             .AddAttribute("a" + std::to_string(a),
                                           options_.matcher.domain.lo,
                                           options_.matcher.domain.hi)
                             .status());
    }
  }
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".txt") == 0) {
    return workload::SaveText(snapshot, path);
  }
  return workload::SaveBinary(snapshot, path);
}

StatusOr<size_t> StreamEngine::LoadSubscriptions(const std::string& path) {
  auto loaded = path.size() > 4 &&
                        path.compare(path.size() - 4, 4, ".txt") == 0
                    ? workload::LoadText(path)
                    : workload::LoadBinary(path);
  APCM_RETURN_NOT_OK(loaded.status());
  // The trace loader already validated every expression; registration
  // cannot fail below, keeping the bulk load atomic.
  for (const BooleanExpression& sub : loaded->subscriptions) {
    auto added = AddSubscription(sub.predicates());
    APCM_CHECK(added.ok());
  }
  return loaded->subscriptions.size();
}

Status StreamEngine::SetPriority(SubscriptionId id, double priority) {
  if (id >= next_sub_id_ || tombstones_.contains(id)) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " is not registered");
  }
  if (priority == 0) {
    priorities_.erase(id);
  } else {
    priorities_[id] = priority;
  }
  return Status::OK();
}

uint64_t StreamEngine::Publish(Event event) {
  const uint64_t id = next_event_id_++;
  buffer_.push_back(std::move(event));
  buffer_ids_.push_back(id);
  stats_.events_published++;
  if (buffer_.size() >= options_.buffer_capacity) {
    ProcessBuffered();
  }
  return id;
}

void StreamEngine::Flush() { ProcessBuffered(); }

void StreamEngine::RebuildIfNeeded() {
  if (matcher_ != nullptr && pending_adds_.empty() &&
      pending_removes_.empty()) {
    return;
  }

  // Fast path for PCM-family matchers: absorb changes through the delta
  // structures, folding them into the main clusters (Compact) once the
  // delta fraction crosses the threshold. The index is only ever rebuilt
  // from scratch for other matcher kinds or when the threshold is 0.
  if (matcher_ != nullptr && options_.incremental_rebuild_threshold > 0) {
    auto* pcm = dynamic_cast<core::PcmMatcher*>(matcher_.get());
    if (pcm != nullptr) {
      for (SubscriptionId id : pending_adds_) {
        // subscriptions_ is id-sorted (ids are monotone and compaction
        // preserves order).
        auto it = std::lower_bound(
            subscriptions_.begin(), subscriptions_.end(), id,
            [](const BooleanExpression& sub, SubscriptionId target) {
              return sub.id() < target;
            });
        APCM_CHECK(it != subscriptions_.end() && it->id() == id);
        pcm->AddIncremental(*it);
        stats_.incremental_updates++;
      }
      for (SubscriptionId id : pending_removes_) {
        APCM_CHECK(pcm->RemoveIncremental(id).ok());
        stats_.incremental_updates++;
      }
      pending_adds_.clear();
      pending_removes_.clear();
      if (pcm->DeltaFraction() > options_.incremental_rebuild_threshold) {
        pcm->Compact();
        stats_.compactions++;
        // Mirror the matcher: drop tombstoned subscriptions from the
        // master list (built_subs_ stays untouched — surviving clusters
        // still reference it).
        std::erase_if(subscriptions_, [this](const BooleanExpression& sub) {
          return tombstones_.contains(sub.id());
        });
        tombstones_.clear();
      }
      return;
    }
  }

  // Full rebuild: compact the live subscriptions; ids are preserved (never
  // reused), so id-indexed matcher arrays simply keep gaps for removed
  // subscriptions.
  std::vector<BooleanExpression> live;
  live.reserve(subscriptions_.size() - tombstones_.size());
  for (const BooleanExpression& sub : subscriptions_) {
    if (!tombstones_.contains(sub.id())) live.push_back(sub);
  }
  subscriptions_ = std::move(live);
  tombstones_.clear();
  pending_adds_.clear();
  pending_removes_.clear();
  built_subs_ = subscriptions_;  // stable storage the matcher may reference
  matcher_ = CreateMatcher(options_.kind, options_.matcher);
  APCM_CHECK(matcher_ != nullptr);
  matcher_->Build(built_subs_);
  stats_.rebuilds++;
}

void StreamEngine::ProcessBuffered() {
  if (buffer_.empty()) return;
  RebuildIfNeeded();

  const std::vector<uint32_t> order = core::ReorderStream(buffer_, options_.osr);
  std::vector<std::vector<SubscriptionId>> results_by_buffer_index(
      buffer_.size());

  std::vector<Event> batch;
  std::vector<std::vector<SubscriptionId>> batch_results;
  for (size_t pos = 0; pos < order.size(); pos += options_.batch_size) {
    const size_t end =
        std::min(order.size(), pos + size_t{options_.batch_size});
    batch.clear();
    for (size_t i = pos; i < end; ++i) batch.push_back(buffer_[order[i]]);
    WallTimer timer;
    matcher_->MatchBatch(batch, &batch_results);
    stats_.batch_latency_ns.Record(timer.ElapsedNanos());
    stats_.batches_processed++;
    for (size_t i = pos; i < end; ++i) {
      results_by_buffer_index[order[i]] = std::move(batch_results[i - pos]);
    }
  }

  // Deliver in ascending event-id order (== buffer order). DNF disjunct ids
  // are translated to their external subscription id and deduplicated.
  for (size_t i = 0; i < buffer_.size(); ++i) {
    auto& matches = results_by_buffer_index[i];
    if (!dnf_alias_.empty() && !matches.empty()) {
      for (SubscriptionId& id : matches) {
        auto it = dnf_alias_.find(id);
        if (it != dnf_alias_.end()) id = it->second;
      }
      std::sort(matches.begin(), matches.end());
      matches.erase(std::unique(matches.begin(), matches.end()),
                    matches.end());
    }
    if (options_.top_k > 0 && matches.size() > options_.top_k) {
      // Keep the top_k highest-priority matches; within the prefix, restore
      // ascending-id order so the delivery contract stays uniform.
      auto priority_of = [this](SubscriptionId id) {
        auto it = priorities_.find(id);
        return it == priorities_.end() ? 0.0 : it->second;
      };
      std::partial_sort(
          matches.begin(), matches.begin() + options_.top_k, matches.end(),
          [&](SubscriptionId a, SubscriptionId b) {
            const double pa = priority_of(a);
            const double pb = priority_of(b);
            if (pa != pb) return pa > pb;
            return a < b;
          });
      matches.resize(options_.top_k);
      std::sort(matches.begin(), matches.end());
    }
    stats_.events_processed++;
    stats_.matches_delivered += matches.size();
    callback_(buffer_ids_[i], matches);
  }
  buffer_.clear();
  buffer_ids_.clear();
}

}  // namespace apcm::engine
