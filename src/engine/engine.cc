#include "src/engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/logging.h"
#include "src/base/macros.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/bitmap/kernels.h"
#include "src/core/pcm.h"
#include "src/engine/exposition.h"
#include "src/engine/report.h"
#include "src/workload/trace.h"

// Injected by the build (src/engine/CMakeLists.txt) for apcm_build_info.
#ifndef APCM_VERSION
#define APCM_VERSION "unknown"
#endif

namespace apcm::engine {

namespace {

EngineOptions NormalizeOptions(EngineOptions options) {
  const Status valid = ValidateEngineOptions(options);
  if (!valid.ok()) {
    LogError("invalid EngineOptions", {{"error", valid.ToString()}});
  }
  APCM_CHECK(valid.ok());
  options.num_shards = std::max(1u, options.num_shards);
  // A window must fit in the buffer or it could never fill.
  options.buffer_capacity = std::max(
      {options.buffer_capacity, options.osr.window_size, options.batch_size});
  if (options.queue_capacity == 0) {
    options.queue_capacity = 2 * options.buffer_capacity;
  }
  return options;
}

}  // namespace

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.num_shards == 0 && options.shard_threads != 0) {
    return Status::InvalidArgument(
        "num_shards == 0 with shard_threads configured: sharding was "
        "requested over zero shards");
  }
  if (options.shard_threads < 0) {
    return Status::InvalidArgument("shard_threads must be >= 0");
  }
  if (!options.simd.empty() && options.simd != "auto") {
    auto level = bitmap::ParseSimdLevel(options.simd);
    if (!level.ok()) return level.status();
    const auto supported = bitmap::SupportedSimdLevels();
    if (std::find(supported.begin(), supported.end(), *level) ==
        supported.end()) {
      return Status::InvalidArgument("simd level '" + options.simd +
                                     "' is not supported on this host");
    }
  }
  // Mirror NormalizeOptions: the working buffer grows to hold a full OSR
  // window and at least one batch.
  const uint32_t effective_buffer = std::max(
      {options.buffer_capacity, options.osr.window_size, options.batch_size});
  if (options.queue_capacity != 0 &&
      options.queue_capacity < effective_buffer) {
    return Status::InvalidArgument(
        "queue_capacity (" + std::to_string(options.queue_capacity) +
        ") is smaller than the effective buffer_capacity (" +
        std::to_string(effective_buffer) +
        "); the buffer could never fill, so rounds would only run on Flush");
  }
  return Status::OK();
}

StreamEngine::StreamEngine(EngineOptions options, MatchCallback callback)
    : options_(NormalizeOptions(std::move(options))),
      callback_(std::move(callback)),
      queue_(options_.queue_capacity),
      trace_(options_.trace_capacity),
      tracer_(EventTracer::Options{options_.trace_sample_every,
                                   options_.trace_slo_ns},
              &trace_) {
  APCM_CHECK(callback_ != nullptr);
  if (!options_.simd.empty() && options_.simd != "auto") {
    // Validated above; the set can only fail if support changed since, which
    // it cannot within one process.
    APCM_CHECK(bitmap::SetActiveSimdLevel(
                   *bitmap::ParseSimdLevel(options_.simd))
                   .ok());
  }
  round_events_.reserve(options_.buffer_capacity);
  round_ids_.reserve(options_.buffer_capacity);
  RegisterMetrics();
  StartAdminServer();
}

StreamEngine::~StreamEngine() {
  // The admin server stops first (declared last): its handlers read every
  // other member. Then rebuild_pool_ drains any queued build, which still
  // touches snapshot_/state/stats_ — all alive at that point.
  if (admin_ != nullptr) admin_->Stop();
}

void StreamEngine::RegisterMetrics() {
  auto counter = [this](const char* name, const char* help,
                        const std::atomic<uint64_t>& value) {
    metrics_.AddCounterFn(name, help, [&value] {
      return value.load(std::memory_order_relaxed);
    });
  };
  counter("apcm_events_published_total",
          "Events accepted by Publish/TryPublish.",
          stats_.events_published);
  counter("apcm_events_processed_total",
          "Events matched and delivered through the callback.",
          stats_.events_processed);
  counter("apcm_matches_delivered_total",
          "Total (event, subscription) matches delivered.",
          stats_.matches_delivered);
  counter("apcm_batches_processed_total",
          "Matcher batches executed.", stats_.batches_processed);
  counter("apcm_rebuilds_total",
          "Full background snapshot rebuilds published.", stats_.rebuilds);
  counter("apcm_incremental_updates_total",
          "Subscription changes absorbed via the PCM delta path.",
          stats_.incremental_updates);
  counter("apcm_compactions_total",
          "Delta-threshold-triggered snapshot compactions published.",
          stats_.compactions);
  counter("apcm_shard_rebuilds_total",
          "Individual shard (re)builds executed by snapshot builds.",
          stats_.shard_rebuilds);
  counter("apcm_shard_rebuilds_skipped_total",
          "Clean shards carried into a new generation without re-indexing.",
          stats_.shard_rebuilds_skipped);
  counter("apcm_publishes_blocked_total",
          "Publishes that hit a full queue and helped drain a round.",
          stats_.publishes_blocked);
  counter("apcm_publishes_rejected_total",
          "Publishes rejected with ResourceExhausted (kReject policy).",
          stats_.publishes_rejected);
  counter("apcm_matcher_predicate_evals_total",
          "Individual predicate evaluations (per-round matcher deltas).",
          stats_.matcher_predicate_evals);
  counter("apcm_matcher_bitmap_words_total",
          "64-bit bitmap words touched (per-round matcher deltas).",
          stats_.matcher_bitmap_words);
  counter("apcm_matcher_candidates_checked_total",
          "Candidate expressions examined (per-round matcher deltas).",
          stats_.matcher_candidates_checked);
  counter("apcm_matcher_matches_emitted_total",
          "Matches emitted by the matcher (per-round deltas).",
          stats_.matcher_matches_emitted);
  if (failpoint::kEnabled) {
    metrics_.AddCounterFn(
        "apcm_failpoint_hits_total",
        "Failpoint actions fired, process-wide (APCM_FAILPOINTS builds).",
        [] { return failpoint::TotalHits(); });
  }
  metrics_.AddCounterFn("apcm_trace_spans_total",
                        "Spans appended to the round trace ring.",
                        [this] { return trace_.total_recorded(); });
  metrics_.AddGaugeFn(
      "apcm_subscriptions_live", "Live (non-removed) subscriptions.",
      [this] { return static_cast<int64_t>(num_subscriptions()); });
  metrics_.AddGaugeFn(
      "apcm_queue_depth", "Events buffered in the publish queue.",
      [this] { return static_cast<int64_t>(queue_.depth()); });
  metrics_.AddGaugeFn(
      "apcm_shards", "Configured matcher shards (1 = unsharded).",
      [this] { return static_cast<int64_t>(options_.num_shards); });
  metrics_.AddGaugeFn(
      "apcm_simd_level",
      "Active bitmap kernel ISA (0 = scalar, 1 = AVX2, 2 = AVX-512).",
      [] { return static_cast<int64_t>(bitmap::ActiveSimdLevel()); });
  metrics_.AddGaugeFn(
      "apcm_rebuild_inflight",
      "1 while a background snapshot build is in flight.",
      [this] { return static_cast<int64_t>(rebuild_inflight() ? 1 : 0); });
  auto histogram = [this](const char* name, const char* help,
                          const ShardedHistogram& value) {
    metrics_.AddHistogramFn(name, help,
                            [&value] { return value.Snapshot(); });
  };
  histogram("apcm_batch_latency_ns",
            "Wall time per processed batch, nanoseconds.",
            stats_.batch_latency_ns);
  histogram("apcm_round_queue_depth",
            "Publish-queue depth drained at the start of each round.",
            stats_.queue_depth);
  histogram("apcm_rebuild_latency_ns",
            "Background snapshot build wall time, nanoseconds.",
            stats_.rebuild_latency_ns);
  histogram("apcm_shard_batch_latency_ns",
            "Wall time per (shard, dispatch) matcher call, nanoseconds.",
            stats_.shard_batch_latency_ns);
  histogram("apcm_shard_batch_matches",
            "Matches emitted per (shard, dispatch).",
            stats_.shard_batch_matches);
  // End-to-end event tracing: one labeled latency series per pipeline stage
  // plus the end-to-end "total". Registered even with tracing disabled so
  // the scrape schema is stable (the series just stay empty).
  for (uint32_t s = 0; s <= EventTracer::kNumStages; ++s) {
    ShardedHistogram* stage_histogram = metrics_.AddHistogramWithLabels(
        "apcm_stage_latency_ns",
        "stage=\"" + std::string(EventTracer::StageName(s)) + "\"",
        "Per-stage latency of sampled events, nanoseconds (stage=\"total\" "
        "is end to end; see EventTracer).");
    tracer_.set_stage_histogram(s, stage_histogram);
  }
  metrics_.AddCounterFn(
      "apcm_trace_spans_dropped_total",
      "Trace-ring spans overwritten by newer spans before being read.",
      [this] { return trace_.dropped(); });
  metrics_.AddCounterFn(
      "apcm_traces_completed_total",
      "Sampled event traces finalized with their full stage breakdown.",
      [this] { return tracer_.completed(); });
  metrics_.AddCounterFn(
      "apcm_trace_slots_stolen_total",
      "Sampled admissions that reclaimed the slot of an unfinished trace.",
      [this] { return tracer_.slots_stolen(); });
  metrics_
      .AddGaugeWithLabels(
          "apcm_build_info",
          std::string("version=\"") + APCM_VERSION + "\",simd=\"" +
              bitmap::SimdLevelName(bitmap::ActiveSimdLevel()) +
              "\",failpoints=\"" + (failpoint::kEnabled ? "on" : "off") +
              "\"",
          "Always 1; build and runtime identity ride in the labels.")
      ->Set(1);
}

void StreamEngine::StartAdminServer() {
  if (options_.admin_port == 0) return;
  admin_ = std::make_unique<AdminServer>();
  admin_->Handle("/metrics", [this](std::string_view) {
    return AdminResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                         RenderPrometheus(metrics_)};
  });
  admin_->Handle("/metrics.json", [this](std::string_view) {
    return AdminResponse{200, "application/json",
                         RenderMetricsJson(metrics_)};
  });
  admin_->Handle("/report", [this](std::string_view) {
    return AdminResponse{200, "text/plain; charset=utf-8",
                         RenderReport(*this)};
  });
  admin_->Handle("/trace", [this](std::string_view) {
    return AdminResponse{200, "application/json", trace_.ToJson()};
  });
  admin_->Handle("/subscriptions", [this](std::string_view) {
    const std::vector<size_t> shards = SubscriptionShardCounts();
    size_t conjunctions = 0;
    for (size_t count : shards) conjunctions += count;
    std::string body = "{\"total\":" + std::to_string(num_subscriptions()) +
                       ",\"conjunctions\":" + std::to_string(conjunctions) +
                       ",\"num_shards\":" + std::to_string(shards.size()) +
                       ",\"per_shard\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
      if (i > 0) body += ',';
      body += std::to_string(shards[i]);
    }
    body += "]}\n";
    return AdminResponse{200, "application/json", std::move(body)};
  });
  admin_->Handle("/healthz", [this](std::string_view) {
    return AdminResponse{
        200, "text/plain; charset=utf-8",
        StringPrintf("ok\nuptime_seconds=%.3f\n", uptime_.ElapsedSeconds())};
  });
  // Matcher hot spots: where the matching budget goes, by cluster, most
  // expensive first. `?k=N` truncates the ranking (default 10, k=0 = all).
  admin_->Handle("/hotspots", [this](std::string_view query) {
    size_t k = 10;
    if (query.substr(0, 2) == "k=") {
      k = static_cast<size_t>(
          std::strtoull(std::string(query.substr(2)).c_str(), nullptr, 10));
    }
    const std::vector<HotspotEntry> hotspots = CollectHotspots(k);
    std::string body = "{\"hotspots\":[";
    bool first = true;
    for (const HotspotEntry& h : hotspots) {
      if (!first) body += ',';
      first = false;
      body += StringPrintf(
          "{\"shard\":%u,\"cluster\":%u,\"subscriptions\":%u,"
          "\"example_sub\":%llu,\"batches\":%llu,\"ns\":%llu,"
          "\"predicate_evals\":%llu,\"candidates_checked\":%llu}",
          h.shard, h.cluster, h.subscriptions,
          static_cast<unsigned long long>(h.example_sub),
          static_cast<unsigned long long>(h.batches),
          static_cast<unsigned long long>(h.ns),
          static_cast<unsigned long long>(h.predicate_evals),
          static_cast<unsigned long long>(h.candidates_checked));
    }
    body += "]}\n";
    return AdminResponse{200, "application/json", std::move(body)};
  });
  // Lists registered failpoints with hit counts; arms/disarms them via
  // `?arm=name=spec` / `?disarm=name` / `?disarm=all` (the raw query string
  // is the spec — it is not URL-decoded). Compiled-out builds always answer
  // with enabled:false and reject arming.
  admin_->Handle("/failpoints", [](std::string_view query) {
    if (!query.empty()) {
      if (!failpoint::kEnabled) {
        return AdminResponse{
            400, "text/plain; charset=utf-8",
            "failpoints compiled out; rebuild with -DAPCM_FAILPOINTS=ON\n"};
      }
      Status applied = Status::OK();
      if (query.substr(0, 4) == "arm=") {
        applied = failpoint::ConfigureFromSpec(query.substr(4));
      } else if (query.substr(0, 7) == "disarm=") {
        const std::string_view target = query.substr(7);
        if (target == "all") {
          failpoint::DisarmAll();
        } else {
          applied = failpoint::Configure(target, "off");
        }
      } else {
        applied = Status::InvalidArgument(
            "unknown query '" + std::string(query) +
            "'; use arm=name=spec, disarm=name, or disarm=all");
      }
      if (!applied.ok()) {
        return AdminResponse{400, "text/plain; charset=utf-8",
                             applied.ToString() + "\n"};
      }
    }
    std::string body = std::string("{\"enabled\":") +
                       (failpoint::kEnabled ? "true" : "false") +
                       ",\"failpoints\":[";
    bool first = true;
    for (const failpoint::PointInfo& point : failpoint::List()) {
      if (!first) body += ',';
      first = false;
      body += "{\"name\":\"" + point.name + "\",\"spec\":\"" + point.spec +
              "\",\"hits\":" + std::to_string(point.hits) + "}";
    }
    body += "]}\n";
    return AdminResponse{200, "application/json", std::move(body)};
  });
  const Status started =
      admin_->Start(options_.admin_port < 0 ? 0 : options_.admin_port);
  if (!started.ok()) {
    LogWarning("admin server failed to start; continuing without it",
               {{"error", started.ToString()}});
    admin_.reset();
  }
}

bool StreamEngine::rebuild_inflight() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return rebuild_inflight_;
}

int StreamEngine::admin_port() const {
  return admin_ == nullptr ? 0 : admin_->port();
}

StatusOr<SubscriptionId> StreamEngine::AddSubscription(
    std::vector<Predicate> predicates) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return AddSubscriptionLocked(std::move(predicates));
}

StatusOr<SubscriptionId> StreamEngine::AddSubscriptionLocked(
    std::vector<Predicate> predicates) {
  const SubscriptionId id = next_sub_id_;
  APCM_ASSIGN_OR_RETURN(
      BooleanExpression expr,
      BooleanExpression::Create(id, std::move(predicates)));
  ++next_sub_id_;
  subscriptions_.push_back(std::move(expr));
  change_log_.push_back({++change_seq_, SubChange::kAdd, id});
  return id;
}

StatusOr<SubscriptionId> StreamEngine::AddDisjunctiveSubscription(
    std::vector<std::vector<Predicate>> disjuncts) {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("a DNF subscription needs >= 1 disjunct");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  // Validate every disjunct before registering any, so failure is atomic.
  for (const auto& disjunct : disjuncts) {
    APCM_RETURN_NOT_OK(
        BooleanExpression::Create(0, disjunct).status());
  }
  SubscriptionId external = kInvalidSubscriptionId;
  std::vector<SubscriptionId> internals;
  for (auto& disjunct : disjuncts) {
    APCM_ASSIGN_OR_RETURN(const SubscriptionId internal,
                          AddSubscriptionLocked(std::move(disjunct)));
    internals.push_back(internal);
    if (external == kInvalidSubscriptionId) {
      external = internal;
    } else {
      dnf_alias_.emplace(internal, external);
    }
  }
  if (internals.size() > 1) {
    dnf_groups_.emplace(external, std::move(internals));
  }
  return external;
}

Status StreamEngine::RemoveSubscription(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (auto alias = dnf_alias_.find(id); alias != dnf_alias_.end()) {
    return Status::NotFound(
        "id " + std::to_string(id) +
        " is an internal disjunct; remove the subscription id " +
        std::to_string(alias->second));
  }
  if (auto group = dnf_groups_.find(id); group != dnf_groups_.end()) {
    // Remove every disjunct of the DNF group.
    const std::vector<SubscriptionId> internals = std::move(group->second);
    dnf_groups_.erase(group);
    for (SubscriptionId internal : internals) {
      dnf_alias_.erase(internal);
      tombstones_.emplace(internal, ++change_seq_);
      change_log_.push_back({change_seq_, SubChange::kRemove, internal});
    }
    priorities_.erase(id);
    return Status::OK();
  }
  if (id >= next_sub_id_ || tombstones_.contains(id)) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " is not registered");
  }
  if (FindSubscriptionLocked(id) == nullptr) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " was already removed");
  }
  tombstones_.emplace(id, ++change_seq_);
  change_log_.push_back({change_seq_, SubChange::kRemove, id});
  priorities_.erase(id);
  return Status::OK();
}

const BooleanExpression* StreamEngine::FindSubscriptionLocked(
    SubscriptionId id) const {
  // subscriptions_ is id-sorted (ids are monotone and pruning preserves
  // order).
  auto it = std::lower_bound(
      subscriptions_.begin(), subscriptions_.end(), id,
      [](const BooleanExpression& sub, SubscriptionId target) {
        return sub.id() < target;
      });
  if (it == subscriptions_.end() || it->id() != id) return nullptr;
  return &*it;
}

Status StreamEngine::SaveSubscriptions(const std::string& path) const {
  workload::Workload snapshot;
  AttributeId max_attr = 0;
  bool any_attr = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const BooleanExpression& sub : subscriptions_) {
      if (tombstones_.contains(sub.id())) continue;
      snapshot.subscriptions.push_back(sub);
      for (const Predicate& pred : sub.predicates()) {
        max_attr = std::max(max_attr, pred.attribute());
        any_attr = true;
      }
    }
  }
  if (any_attr) {
    for (AttributeId a = 0; a <= max_attr; ++a) {
      APCM_RETURN_NOT_OK(snapshot.catalog
                             .AddAttribute("a" + std::to_string(a),
                                           options_.matcher.domain.lo,
                                           options_.matcher.domain.hi)
                             .status());
    }
  }
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".txt") == 0) {
    return workload::SaveText(snapshot, path);
  }
  return workload::SaveBinary(snapshot, path);
}

StatusOr<size_t> StreamEngine::LoadSubscriptions(const std::string& path) {
  auto loaded = path.size() > 4 &&
                        path.compare(path.size() - 4, 4, ".txt") == 0
                    ? workload::LoadText(path)
                    : workload::LoadBinary(path);
  APCM_RETURN_NOT_OK(loaded.status());
  // The trace loader already validated every expression; registration
  // cannot fail below, keeping the bulk load atomic.
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const BooleanExpression& sub : loaded->subscriptions) {
    auto added = AddSubscriptionLocked(sub.predicates());
    APCM_CHECK(added.ok());
  }
  return loaded->subscriptions.size();
}

Status StreamEngine::SetPriority(SubscriptionId id, double priority) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (id >= next_sub_id_ || tombstones_.contains(id)) {
    return Status::NotFound("subscription " + std::to_string(id) +
                            " is not registered");
  }
  if (priority == 0) {
    priorities_.erase(id);
  } else {
    priorities_[id] = priority;
  }
  return Status::OK();
}

size_t StreamEngine::num_subscriptions() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  // Every tombstone still occupies a master slot until a covering snapshot
  // publishes and prunes both together, so the difference is exact.
  return subscriptions_.size() - tombstones_.size();
}

std::vector<size_t> StreamEngine::SubscriptionShardCounts() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<size_t> counts(std::max(1u, options_.num_shards), 0);
  for (const BooleanExpression& sub : subscriptions_) {
    if (tombstones_.contains(sub.id())) continue;
    ++counts[index::ShardedMatcher::ShardOf(
        sub.id(), static_cast<uint32_t>(counts.size()))];
  }
  return counts;
}

const MatcherStats* StreamEngine::matcher_stats() const {
  std::shared_ptr<EngineSnapshot> snap = snapshot_.Load();
  return snap == nullptr ? nullptr : &snap->matcher->stats();
}

std::vector<HotspotEntry> StreamEngine::CollectHotspots(size_t k) const {
  std::vector<HotspotEntry> entries;
  std::shared_ptr<EngineSnapshot> snap = snapshot_.Load();
  if (snap == nullptr) return entries;
  snap->matcher->CollectHotspots(&entries);
  std::sort(entries.begin(), entries.end(),
            [](const HotspotEntry& a, const HotspotEntry& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              return a.predicate_evals > b.predicate_evals;
            });
  if (k != 0 && entries.size() > k) entries.resize(k);
  return entries;
}

uint64_t StreamEngine::Publish(Event event) {
  StatusOr<uint64_t> id = TryPublish(std::move(event));
  APCM_CHECK(id.ok());  // kReject callers must use TryPublish
  return *id;
}

StatusOr<uint64_t> StreamEngine::TryPublish(Event event) {
  return TryPublish(std::move(event), IngressTrace{});
}

StatusOr<uint64_t> StreamEngine::TryPublish(Event event,
                                            const IngressTrace& ingress) {
  // Chaos seam: simulate a full queue at admission. Under kReject this
  // mirrors the real rejection path (counter, trace span, ResourceExhausted)
  // so callers exercise their retry/park logic; under kBlock it only counts
  // the hit — blocking on a fake rejection could deadlock a helper-less
  // caller.
  APCM_FAILPOINT_INJECT("engine.publish.admit", {
    if (options_.backpressure == BackpressurePolicy::kReject) {
      stats_.publishes_rejected.fetch_add(1, std::memory_order_relaxed);
      trace_.Record(TraceRing::Kind::kBackpressureReject, queue_.depth());
      return Status::ResourceExhausted(
          "publish queue is full (injected failpoint); Flush or retry later");
    }
  });
  for (;;) {
    if (std::optional<BoundedEventQueue::PushResult> pushed =
            queue_.TryPush(std::move(event))) {
      stats_.events_published.fetch_add(1, std::memory_order_relaxed);
      // Claim the trace slot before any processing trigger below: the round
      // that drains this event may run (and finalize-race) immediately.
      tracer_.Admit(pushed->id, ingress, tracer_.NowNs());
      if (pushed->depth >= options_.buffer_capacity) {
        // This publish filled the buffer: become the processor, unless a
        // round is already running (the backlog stays bounded by the queue
        // capacity and the next trigger picks it up).
        if (process_mu_.try_lock()) {
          ProcessLocked();
          process_mu_.unlock();
        }
      }
      return pushed->id;
    }
    // Queue full. TryPush left `event` untouched, so it survives the retry
    // loop.
    if (options_.backpressure == BackpressurePolicy::kReject) {
      stats_.publishes_rejected.fetch_add(1, std::memory_order_relaxed);
      trace_.Record(TraceRing::Kind::kBackpressureReject, queue_.depth());
      return Status::ResourceExhausted(
          "publish queue is full (" + std::to_string(queue_.capacity()) +
          " events); Flush or retry later");
    }
    stats_.publishes_blocked.fetch_add(1, std::memory_order_relaxed);
    trace_.Record(TraceRing::Kind::kBackpressureBlock, queue_.depth());
    // Block by helping: wait for the in-flight round (if any) and then
    // drain the queue ourselves. Each loop iteration frees a full queue's
    // worth of space, so progress is guaranteed.
    {
      std::lock_guard<std::mutex> lock(process_mu_);
      ProcessLocked();
    }
  }
}

void StreamEngine::Flush() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(process_mu_);
      ProcessLocked();
    }
    // Quiesce background maintenance so post-Flush state (stats, snapshot)
    // is deterministic for single-caller flows.
    std::shared_future<void> pending;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (rebuild_inflight_) pending = rebuild_done_;
    }
    if (pending.valid()) {
      pending.wait();
      continue;  // the publish may have raced a concurrent round; re-check
    }
    if (queue_.depth() == 0) break;
  }
  // Flush is the natural quiesce point: at debug level, dump the flight
  // recorder so post-mortems of a drained engine need no admin endpoint.
  if (LogEnabled(LogLevel::kDebug)) {
    LogDebug("engine trace at flush: " + trace_.ToJson());
  }
}

std::unique_ptr<Matcher> StreamEngine::CreateEngineMatcher() {
  if (options_.num_shards <= 1) {
    return CreateMatcher(options_.kind, options_.matcher);
  }
  index::ShardedOptions sharded;
  sharded.num_shards = options_.num_shards;
  sharded.num_threads = options_.shard_threads;
  // The sink histograms live in stats_, which outlives every snapshot
  // build (rebuild_pool_ is declared after stats_ and drains first).
  sharded.shard_latency_ns = &stats_.shard_batch_latency_ns;
  sharded.shard_matches = &stats_.shard_batch_matches;
  return CreateShardedMatcher(options_.kind, options_.matcher, sharded);
}

void StreamEngine::ScheduleRebuildLocked(bool compaction) {
  if (rebuild_inflight_) return;
  if (options_.num_shards > 1) {
    // With a published sharded generation, rebuild per-shard: only dirty
    // shards are re-indexed. The first build (no snapshot yet) falls
    // through to the full path below.
    std::shared_ptr<EngineSnapshot> prev = snapshot_.Load();
    auto* prev_sharded =
        prev == nullptr
            ? nullptr
            : dynamic_cast<index::ShardedMatcher*>(prev->matcher.get());
    if (prev_sharded != nullptr &&
        prev_sharded->num_shards() == options_.num_shards) {
      ScheduleShardRebuildLocked(std::move(prev), prev_sharded, compaction);
      return;
    }
  }
  rebuild_inflight_ = true;
  // Copy the live subscription set now, under state_mu_: the build runs on
  // the maintenance worker against this immutable copy while writers keep
  // mutating the master list.
  auto built = std::make_shared<std::vector<BooleanExpression>>();
  built->reserve(subscriptions_.size() - tombstones_.size());
  for (const BooleanExpression& sub : subscriptions_) {
    if (!tombstones_.contains(sub.id())) built->push_back(sub);
  }
  const uint64_t version = change_seq_;
  trace_.Record(TraceRing::Kind::kRebuildSchedule, built->size(),
                compaction ? 1 : 0);
  if (LogEnabled(LogLevel::kDebug)) {
    LogDebug("snapshot build scheduled", {{"live_subs", built->size()},
                                          {"compaction", compaction},
                                          {"covers_seq", version}});
  }
  rebuild_done_ =
      rebuild_pool_
          .SubmitWithFuture([this, built, version, compaction] {
            // Chaos seam: stall the full build while writers keep mutating
            // the master list it was captured from.
            APCM_FAILPOINT("engine.rebuild.start");
            WallTimer timer;
            auto next = std::make_shared<EngineSnapshot>();
            next->matcher = CreateEngineMatcher();
            APCM_CHECK(next->matcher != nullptr);
            next->matcher->Build(*built);
            if (auto* sharded = dynamic_cast<index::ShardedMatcher*>(
                    next->matcher.get())) {
              // Shards own their subscription copies, so the snapshot-level
              // storage is not needed; stamp every shard's watermark at the
              // build version so later generations can tell applied deltas
              // apart.
              for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
                sharded->set_shard_applied_seq(s, version);
              }
              stats_.shard_rebuilds.fetch_add(sharded->num_shards(),
                                              std::memory_order_relaxed);
            } else {
              next->built_subs = built;
            }
            next->covered_seq = version;
            next->applied_seq = version;
            PublishSnapshot(std::move(next), compaction,
                            timer.ElapsedNanos());
          })
          .share();
}

void StreamEngine::ScheduleShardRebuildLocked(
    std::shared_ptr<EngineSnapshot> prev,
    index::ShardedMatcher* prev_sharded, bool compaction) {
  rebuild_inflight_ = true;
  const uint32_t num_shards = options_.num_shards;
  // A shard is dirty when it has change-log entries its watermark has not
  // absorbed (non-incremental matchers, threshold 0, or a lost race), or
  // when its own delta fraction crossed the compaction threshold. Reading
  // the live matcher here is safe: the caller holds process_mu_.
  std::vector<char> dirty(num_shards, 0);
  for (const SubChange& change : change_log_) {
    const uint32_t s = index::ShardedMatcher::ShardOf(change.id, num_shards);
    if (change.seq > prev_sharded->shard_applied_seq(s)) dirty[s] = 1;
  }
  if (options_.incremental_rebuild_threshold > 0) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (prev_sharded->ShardDeltaFraction(s) >
          options_.incremental_rebuild_threshold) {
        dirty[s] = 1;
      }
    }
  }
  // Capture the dirty shards' live subscriptions under state_mu_; clean
  // shards are carried over by reference and never copied or re-indexed.
  std::vector<std::shared_ptr<std::vector<BooleanExpression>>> shard_subs(
      num_shards);
  uint32_t num_dirty = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (dirty[s]) {
      shard_subs[s] = std::make_shared<std::vector<BooleanExpression>>();
      ++num_dirty;
    }
  }
  size_t captured = 0;
  for (const BooleanExpression& sub : subscriptions_) {
    if (tombstones_.contains(sub.id())) continue;
    const uint32_t s = index::ShardedMatcher::ShardOf(sub.id(), num_shards);
    if (dirty[s]) {
      shard_subs[s]->push_back(sub);
      ++captured;
    }
  }
  const uint64_t version = change_seq_;
  trace_.Record(TraceRing::Kind::kRebuildSchedule, captured,
                compaction ? 1 : 0);
  if (LogEnabled(LogLevel::kDebug)) {
    LogDebug("per-shard snapshot build scheduled",
             {{"dirty_shards", num_dirty},
              {"captured_subs", captured},
              {"compaction", compaction},
              {"covers_seq", version}});
  }
  rebuild_done_ =
      rebuild_pool_
          .SubmitWithFuture([this, prev = std::move(prev), prev_sharded,
                             shard_subs = std::move(shard_subs), num_dirty,
                             num_shards, version, compaction] {
            APCM_FAILPOINT("engine.rebuild.start");
            WallTimer timer;
            // The successor generation shares every clean shard with `prev`
            // (alive via the captured shared_ptr) — those keep absorbing
            // deltas through the live snapshot while this build runs, and
            // their watermarks travel with them. Only dirty shards are
            // re-indexed, from the captured master copies.
            std::unique_ptr<index::ShardedMatcher> gen =
                prev_sharded->NewGeneration();
            for (uint32_t s = 0; s < num_shards; ++s) {
              if (shard_subs[s] != nullptr) {
                // Chaos seam: per-shard rebuild boundary — stalls here widen
                // the window in which clean shards absorb deltas through the
                // previous generation.
                APCM_FAILPOINT("engine.rebuild.shard");
                gen->RebuildShard(s, shard_subs[s], version);
              }
            }
            stats_.shard_rebuilds.fetch_add(num_dirty,
                                            std::memory_order_relaxed);
            stats_.shard_rebuilds_skipped.fetch_add(num_shards - num_dirty,
                                                    std::memory_order_relaxed);
            auto next = std::make_shared<EngineSnapshot>();
            next->matcher = std::move(gen);
            next->covered_seq = version;
            next->applied_seq = version;
            PublishSnapshot(std::move(next), compaction,
                            timer.ElapsedNanos());
          })
          .share();
}

void StreamEngine::PublishSnapshot(std::shared_ptr<EngineSnapshot> next,
                                   bool compaction, int64_t build_ns) {
  // Chaos seam: hold a finished build just before it becomes visible;
  // rounds keep matching against the previous snapshot plus deltas.
  APCM_FAILPOINT("engine.rebuild.publish");
  const uint64_t version = next->covered_seq;
  snapshot_.Store(std::move(next));
  std::lock_guard<std::mutex> lock(state_mu_);
  // Prune everything the published build covered: log entries, tombstoned
  // master slots, and the tombstone records themselves. Later entries stay
  // until a future snapshot covers them.
  while (!change_log_.empty() && change_log_.front().seq <= version) {
    change_log_.pop_front();
  }
  std::erase_if(subscriptions_, [&](const BooleanExpression& sub) {
    auto it = tombstones_.find(sub.id());
    return it != tombstones_.end() && it->second <= version;
  });
  std::erase_if(tombstones_,
                [&](const auto& entry) { return entry.second <= version; });
  rebuild_inflight_ = false;
  if (compaction) {
    stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.rebuild_latency_ns.Record(build_ns);
  trace_.Record(TraceRing::Kind::kRebuildPublish,
                static_cast<uint64_t>(build_ns), compaction ? 1 : 0);
  if (LogEnabled(LogLevel::kDebug)) {
    LogDebug("snapshot published", {{"build_ns", build_ns},
                                    {"compaction", compaction},
                                    {"covered_seq", version}});
  }
}

std::shared_ptr<EngineSnapshot> StreamEngine::SyncSnapshotLocked() {
  for (;;) {
    std::shared_ptr<EngineSnapshot> snap = snapshot_.Load();
    std::vector<SubChange> changes;
    std::vector<BooleanExpression> add_exprs;
    std::shared_future<void> build_done;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      const uint64_t base = snap == nullptr ? 0 : snap->applied_seq;
      if (snap != nullptr && base == change_seq_) return snap;
      auto* delta_matcher =
          snap == nullptr
              ? nullptr
              : dynamic_cast<IncrementalMatcher*>(snap->matcher.get());
      const bool incremental = delta_matcher != nullptr &&
                               delta_matcher->CanApplyDeltas() &&
                               options_.incremental_rebuild_threshold > 0;
      if (!incremental) {
        // First build, non-incremental matcher, or threshold 0: the round
        // needs a full (or, sharded, per-dirty-shard) rebuild covering
        // every change up to now. Schedule (if not already in flight) and
        // wait outside the lock.
        ScheduleRebuildLocked(/*compaction=*/false);
        build_done = rebuild_done_;
      } else {
        // Delta handoff: collect the changes this snapshot has not seen,
        // in change order, with copies of the added expressions.
        for (const SubChange& change : change_log_) {
          if (change.seq <= base) continue;
          changes.push_back(change);
          if (change.kind == SubChange::kAdd) {
            const BooleanExpression* sub = FindSubscriptionLocked(change.id);
            APCM_CHECK(sub != nullptr);
            add_exprs.push_back(*sub);
          }
        }
      }
    }
    if (build_done.valid()) {
      build_done.wait();
      continue;  // reload; more changes may have landed during the build
    }
    // Chaos seam: change-log apply boundary — a stall here lets background
    // compactions race the delta application they will supersede.
    APCM_FAILPOINT("engine.apply_delta");
    // Apply the deltas to the snapshot matcher. Serialized by process_mu_;
    // the background builder never touches a published snapshot's shards.
    auto* inc = static_cast<IncrementalMatcher*>(snap->matcher.get());
    auto* sharded = dynamic_cast<index::ShardedMatcher*>(snap->matcher.get());
    size_t next_add = 0;
    uint64_t applied = 0;
    for (const SubChange& change : changes) {
      BooleanExpression* add_expr = change.kind == SubChange::kAdd
                                        ? &add_exprs[next_add++]
                                        : nullptr;
      if (sharded != nullptr) {
        // Shards are shared across generations: a change may already have
        // reached this shard through the previous generation while the
        // per-shard rebuild that produced this snapshot was in flight. The
        // shard's watermark travels with it, making the double-apply
        // detectable.
        const uint32_t s = index::ShardedMatcher::ShardOf(
            change.id, sharded->num_shards());
        if (sharded->shard_applied_seq(s) >= change.seq) {
          snap->applied_seq = change.seq;
          continue;
        }
        if (add_expr != nullptr) {
          inc->AddIncremental(std::move(*add_expr));
        } else {
          APCM_CHECK(inc->RemoveIncremental(change.id).ok());
        }
        sharded->set_shard_applied_seq(s, change.seq);
      } else if (add_expr != nullptr) {
        inc->AddIncremental(std::move(*add_expr));
      } else {
        APCM_CHECK(inc->RemoveIncremental(change.id).ok());
      }
      snap->applied_seq = change.seq;
      ++applied;
    }
    stats_.incremental_updates.fetch_add(applied,
                                         std::memory_order_relaxed);
    if (!changes.empty() &&
        inc->DeltaFraction() > options_.incremental_rebuild_threshold) {
      // Too much delta state: fold it into a fresh snapshot off the hot
      // path. Rounds keep matching against the delta-laden snapshot until
      // the compacted one publishes.
      std::lock_guard<std::mutex> lock(state_mu_);
      ScheduleRebuildLocked(/*compaction=*/true);
    }
    return snap;
  }
}

void StreamEngine::ProcessLocked() {
  queue_.DrainAll(&round_events_, &round_ids_);
  if (round_events_.empty()) return;
  stats_.queue_depth.Record(static_cast<int64_t>(round_events_.size()));
  trace_.Record(TraceRing::Kind::kRoundStart, round_events_.size());
  if (tracer_.enabled()) {
    // All events of this round left the queue at the same drain; one clock
    // read covers every sampled id.
    const int64_t t_queue = tracer_.NowNs();
    for (uint64_t id : round_ids_) {
      if (tracer_.Sampled(id)) {
        tracer_.RecordStage(id, EventTracer::kQueue, t_queue);
      }
    }
  }
  std::shared_ptr<EngineSnapshot> snap = SyncSnapshotLocked();
  // Matcher counters mutate throughout the round; the per-round delta is
  // folded into stats_ afterwards so scrapers never touch the live object.
  const MatcherStats matcher_before = snap->matcher->stats();

  // Copy the delivery-time maps once per round so mutator threads can keep
  // churning aliases/priorities while this round delivers.
  std::unordered_map<SubscriptionId, SubscriptionId> alias;
  std::unordered_map<SubscriptionId, double> priorities;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    alias = dnf_alias_;
    if (options_.top_k > 0) priorities = priorities_;
  }

  const std::vector<uint32_t> order =
      core::ReorderStream(round_events_, options_.osr);
  std::vector<std::vector<SubscriptionId>> results_by_buffer_index(
      round_events_.size());

  std::vector<Event> batch;
  std::vector<std::vector<SubscriptionId>> batch_results;
  for (size_t pos = 0; pos < order.size(); pos += options_.batch_size) {
    const size_t end =
        std::min(order.size(), pos + size_t{options_.batch_size});
    batch.clear();
    for (size_t i = pos; i < end; ++i) batch.push_back(round_events_[order[i]]);
    WallTimer timer;
    snap->matcher->MatchBatch(batch, &batch_results);
    stats_.batch_latency_ns.Record(timer.ElapsedNanos());
    stats_.batches_processed.fetch_add(1, std::memory_order_relaxed);
    if (tracer_.enabled()) {
      const int64_t t_match = tracer_.NowNs();
      for (size_t i = pos; i < end; ++i) {
        const uint64_t id = round_ids_[order[i]];
        if (tracer_.Sampled(id)) {
          tracer_.RecordStage(id, EventTracer::kMatch, t_match);
        }
      }
    }
    for (size_t i = pos; i < end; ++i) {
      results_by_buffer_index[order[i]] = std::move(batch_results[i - pos]);
    }
  }

  // Deliver in ascending event-id order (== drain order). DNF disjunct ids
  // are translated to their external subscription id and deduplicated.
  uint64_t round_matches = 0;
  for (size_t i = 0; i < round_events_.size(); ++i) {
    auto& matches = results_by_buffer_index[i];
    if (!alias.empty() && !matches.empty()) {
      for (SubscriptionId& id : matches) {
        auto it = alias.find(id);
        if (it != alias.end()) id = it->second;
      }
      std::sort(matches.begin(), matches.end());
      matches.erase(std::unique(matches.begin(), matches.end()),
                    matches.end());
    }
    if (options_.top_k > 0 && matches.size() > options_.top_k) {
      // Keep the top_k highest-priority matches; within the prefix, restore
      // ascending-id order so the delivery contract stays uniform.
      auto priority_of = [&priorities](SubscriptionId id) {
        auto it = priorities.find(id);
        return it == priorities.end() ? 0.0 : it->second;
      };
      std::partial_sort(
          matches.begin(), matches.begin() + options_.top_k, matches.end(),
          [&](SubscriptionId a, SubscriptionId b) {
            const double pa = priority_of(a);
            const double pb = priority_of(b);
            if (pa != pb) return pa > pb;
            return a < b;
          });
      matches.resize(options_.top_k);
      std::sort(matches.begin(), matches.end());
    }
    stats_.events_processed.fetch_add(1, std::memory_order_relaxed);
    stats_.matches_delivered.fetch_add(matches.size(),
                                       std::memory_order_relaxed);
    round_matches += matches.size();
    callback_(round_ids_[i], matches);
    if (tracer_.Sampled(round_ids_[i])) {
      // Releases the delivery reference Admit created. A transport that owes
      // socket writes added its own references inside the callback, so the
      // trace finalizes only after the last flush (or right here when the
      // event is engine-local / nobody subscribed its matches).
      tracer_.CompleteStage(round_ids_[i], EventTracer::kDeliver,
                            tracer_.NowNs());
    }
  }

  const MatcherStats& matcher_after = snap->matcher->stats();
  stats_.matcher_predicate_evals.fetch_add(
      matcher_after.predicate_evals - matcher_before.predicate_evals,
      std::memory_order_relaxed);
  stats_.matcher_bitmap_words.fetch_add(
      matcher_after.bitmap_words - matcher_before.bitmap_words,
      std::memory_order_relaxed);
  stats_.matcher_candidates_checked.fetch_add(
      matcher_after.candidates_checked - matcher_before.candidates_checked,
      std::memory_order_relaxed);
  stats_.matcher_matches_emitted.fetch_add(
      matcher_after.matches_emitted - matcher_before.matches_emitted,
      std::memory_order_relaxed);

  trace_.Record(TraceRing::Kind::kRoundEnd, round_events_.size(),
                round_matches);
  if (LogEnabled(LogLevel::kDebug)) {
    LogDebug("round delivered", {{"events", round_events_.size()},
                                 {"matches", round_matches}});
  }
  round_events_.clear();
  round_ids_.clear();
}

}  // namespace apcm::engine
